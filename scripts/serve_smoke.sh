#!/usr/bin/env bash
# CI smoke test for the serving layer: start a server on loopback, hammer
# it with the network load generator — one singleton pass and one batched
# high-connection pass (256 conns, --batch 16) — require zero protocol
# errors on both, and verify the Shutdown opcode drains the server
# cleanly (exit 0, every accepted connection closed, trace summarizable).
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${PORT:-$((42000 + RANDOM % 20000))}"
OPS="${OPS:-20000}"
CONNS="${CONNS:-8}"
BATCH_CONNS="${BATCH_CONNS:-256}"
BATCH_OPS="${BATCH_OPS:-40000}"
TRACE_DIR="$(mktemp -d)"
trap 'rm -rf "$TRACE_DIR"' EXIT

cargo build -p adcache-cli

./target/debug/adcache serve \
    --addr "127.0.0.1:$PORT" --fill 5000 --trace "$TRACE_DIR" \
    --max-conns $((BATCH_CONNS + 16)) \
    > "$TRACE_DIR/serve.log" 2>&1 &
SERVER_PID=$!

# Wait for the listener to come up.
for _ in $(seq 1 50); do
    if ./target/debug/adcache loadgen --addr "127.0.0.1:$PORT" --ops 0 \
        > /dev/null 2>&1; then
        break
    fi
    sleep 0.2
done

# Singleton pass: loadgen exits nonzero on any lost / misordered /
# undecodable reply.
./target/debug/adcache loadgen \
    --addr "127.0.0.1:$PORT" --ops "$OPS" --connections "$CONNS" \
    --keys 5000 --mix mixed

# Batched high-connection pass: every frame carries 16 sub-requests and
# the reply verification covers per-sub count, opcode echoes, and FIFO
# order. --shutdown then drives the graceful drain over the wire, which
# must still be clean after the connection spike.
./target/debug/adcache loadgen \
    --addr "127.0.0.1:$PORT" --ops "$BATCH_OPS" --connections "$BATCH_CONNS" \
    --batch 16 --keys 5000 --mix mixed --shutdown

# The server must now drain and exit 0 on its own.
SERVER_STATUS=0
wait "$SERVER_PID" || SERVER_STATUS=$?
echo "---- server log ----"
cat "$TRACE_DIR/serve.log"
if [ "$SERVER_STATUS" -ne 0 ]; then
    echo "FAIL: server exited with status $SERVER_STATUS" >&2
    exit 1
fi
if ! grep -q "drained: .* (0 protocol errors)" "$TRACE_DIR/serve.log"; then
    echo "FAIL: server reported protocol errors or no drain line" >&2
    exit 1
fi
# Clean drain: the accepted and closed connection counts must agree
# ("N/N connections closed").
if ! grep -qE "drained: .* ([0-9]+)/\1 connections closed" "$TRACE_DIR/serve.log"; then
    echo "FAIL: not every accepted connection was closed on drain" >&2
    exit 1
fi

# The recorded trace must summarize, including the serving section.
./target/debug/adcache trace "$TRACE_DIR" | tee "$TRACE_DIR/summary.txt"
grep -q "serving: " "$TRACE_DIR/summary.txt"

echo "serve-smoke OK: $OPS ops over $CONNS connections + $BATCH_OPS batched ops over $BATCH_CONNS connections, zero protocol errors, clean drain"
