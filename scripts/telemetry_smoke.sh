#!/usr/bin/env bash
# CI smoke test for the telemetry plane: serve with stage tracing, lock
# accounting, and periodic snapshots on; drive load; then validate every
# export surface against its golden shape —
#
#   - METRICS opcode, Prometheus format: every line must match the text
#     exposition grammar, and the stage/requests series must be present;
#   - `adcache metrics --summary`: greppable stage breakdown plus the
#     engine lock-wait share;
#   - `adcache top`: two polled frames render over the wire;
#   - timeseries.jsonl: at least two snapshot lines, zero malformed
#     (each line must match the snapshot schema exactly);
#   - `adcache trace`: renders the stage-breakdown, lock-accounting, and
#     timeseries sections.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${PORT:-$((42000 + RANDOM % 20000))}"
OPS="${OPS:-20000}"
CONNS="${CONNS:-8}"
TRACE_DIR="$(mktemp -d)"
trap 'rm -rf "$TRACE_DIR"' EXIT

cargo build -p adcache-cli

./target/debug/adcache serve \
    --addr "127.0.0.1:$PORT" --fill 5000 --trace "$TRACE_DIR" \
    --snapshot-ms 200 --slow-us 5000 \
    > "$TRACE_DIR/serve.log" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 50); do
    if ./target/debug/adcache loadgen --addr "127.0.0.1:$PORT" --ops 0 \
        > /dev/null 2>&1; then
        break
    fi
    sleep 0.2
done

./target/debug/adcache loadgen \
    --addr "127.0.0.1:$PORT" --ops "$OPS" --connections "$CONNS" \
    --keys 5000 --mix mixed

# --- METRICS opcode: Prometheus text exposition -------------------------
./target/debug/adcache metrics --addr "127.0.0.1:$PORT" --format prom \
    > "$TRACE_DIR/metrics.prom"
# Golden grammar: only `# TYPE` comments and `name value` samples, all
# under the adcache_ prefix (summaries may carry a quantile label).
if grep -vqE '^(# TYPE adcache_[a-zA-Z0-9_]+ (counter|gauge|summary)|adcache_[a-zA-Z0-9_]+(\{quantile="0\.[0-9]+"\})? [0-9]+(\.[0-9]+)?)$' \
    "$TRACE_DIR/metrics.prom"; then
    echo "FAIL: malformed Prometheus exposition lines:" >&2
    grep -vE '^(# TYPE adcache_[a-zA-Z0-9_]+ (counter|gauge|summary)|adcache_[a-zA-Z0-9_]+(\{quantile="0\.[0-9]+"\})? [0-9]+(\.[0-9]+)?)$' \
        "$TRACE_DIR/metrics.prom" | head >&2
    exit 1
fi
grep -q '^adcache_server_requests ' "$TRACE_DIR/metrics.prom"
grep -q '^# TYPE adcache_server_stage_total summary$' "$TRACE_DIR/metrics.prom"
grep -q '^# TYPE adcache_engine_lock_write_wait_ns counter$' "$TRACE_DIR/metrics.prom"

# --- stage summary over the wire ----------------------------------------
./target/debug/adcache metrics --addr "127.0.0.1:$PORT" --summary \
    | tee "$TRACE_DIR/summary_live.txt"
grep -qE '^stage engine_exec count [0-9]+ mean_us' "$TRACE_DIR/summary_live.txt"
grep -qE '^lock_wait_share_pct [0-9.]+$' "$TRACE_DIR/summary_live.txt"

# --- adcache top: two polled frames -------------------------------------
./target/debug/adcache top --addr "127.0.0.1:$PORT" \
    --interval-ms 300 --iterations 2 | tee "$TRACE_DIR/top.txt"
grep -q 'stage breakdown (interval)' "$TRACE_DIR/top.txt"
grep -qE 'tick 2' "$TRACE_DIR/top.txt"

./target/debug/adcache loadgen --addr "127.0.0.1:$PORT" --ops 0 --shutdown
SERVER_STATUS=0
wait "$SERVER_PID" || SERVER_STATUS=$?
echo "---- server log ----"
cat "$TRACE_DIR/serve.log"
if [ "$SERVER_STATUS" -ne 0 ]; then
    echo "FAIL: server exited with status $SERVER_STATUS" >&2
    exit 1
fi

# --- timeseries.jsonl: golden snapshot schema, zero malformed lines -----
TS="$TRACE_DIR/timeseries.jsonl"
LINES=$(wc -l < "$TS")
if [ "$LINES" -lt 2 ]; then
    echo "FAIL: expected >= 2 timeseries snapshots, got $LINES" >&2
    exit 1
fi
if grep -vqE '^\{"seq":[0-9]+,"uptime_ms":[0-9]+,"interval_ms":[0-9]+,"counters":\{.*\},"gauges":\{.*\},"histograms":\{.*\}\}$' "$TS"; then
    echo "FAIL: malformed timeseries lines:" >&2
    grep -vE '^\{"seq":[0-9]+,"uptime_ms":[0-9]+,"interval_ms":[0-9]+,"counters":\{.*\},"gauges":\{.*\},"histograms":\{.*\}\}$' "$TS" | head >&2
    exit 1
fi

# --- trace rendering ----------------------------------------------------
./target/debug/adcache trace "$TRACE_DIR" | tee "$TRACE_DIR/trace.txt"
grep -q 'stage breakdown (' "$TRACE_DIR/trace.txt"
grep -q 'engine lock accounting:' "$TRACE_DIR/trace.txt"
grep -q "timeseries: $LINES snapshots" "$TRACE_DIR/trace.txt"

echo "telemetry-smoke OK: $LINES snapshots, Prometheus grammar clean, top/summary/trace render"
