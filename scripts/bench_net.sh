#!/usr/bin/env bash
# Records the standing network baseline in BENCH_net.json: closed-loop
# throughput and tail latency over loopback at 1, 8, 32, and 128
# connections (release build, in-memory store, mixed zipfian workload).
# The serve default is the striped engine (16 stripes, background
# flush/compaction, WAL group commit); each point also runs once with
# `--stripes 1` (the legacy inline engine) for comparison.
#
# Each point is measured twice: once with `--no-telemetry` (the raw
# serving path) and once with the default telemetry plane on (stage
# timers, lock accounting, registry). The telemetry run also captures the
# per-request stage breakdown and the engine lock-wait share via
# `adcache metrics --summary`, and the delta between the two runs is the
# telemetry overhead.
#
# Two further sections ride along:
#   - a batch A/B: the same closed-loop point with `--batch 16` (one wire
#     frame per 16 sub-requests) vs singleton frames, at equal
#     connections, telemetry off — the win is syscall and framing
#     amortization;
#   - an offered-load curve: open-loop runs at increasing `--qps` targets
#     over many connections, recording achieved throughput and
#     p50/p99/p999 (which include queueing delay) per step. The knee of
#     the curve is the serving capacity.
#
# Loopback numbers measure the serving path — framing, worker scheduling,
# the engine under concurrency — not a real network. Compare shapes
# across commits, not absolute values.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${PORT:-$((42000 + RANDOM % 20000))}"
OPS="${OPS:-100000}"
KEYS="${KEYS:-50000}"
OUT="${OUT:-BENCH_net.json}"

cargo build --release -p adcache-cli

# Starts a server (extra serve flags in $2...), runs one load, and
# leaves the loadgen report in the named log. Shuts the server down
# through the wire. Extra loadgen flags (e.g. `--batch 16`, `--qps Q`)
# go through $LOADGEN_EXTRA; $RUN_OPS overrides the op count.
LOADGEN_EXTRA=""
RUN_OPS=""
run_point() {
    local conns=$1 log=$2
    shift 2
    ./target/release/adcache serve \
        --addr "127.0.0.1:$PORT" --fill "$KEYS" "$@" > /tmp/bench_net_serve.log 2>&1 &
    local server_pid=$!
    for _ in $(seq 1 50); do
        if ./target/release/adcache loadgen --addr "127.0.0.1:$PORT" --ops 0 \
            > /dev/null 2>&1; then
            break
        fi
        sleep 0.2
    done
    # shellcheck disable=SC2086
    ./target/release/adcache loadgen \
        --addr "127.0.0.1:$PORT" --ops "${RUN_OPS:-$OPS}" --connections "$conns" \
        --keys "$KEYS" --mix mixed $LOADGEN_EXTRA | tee "$log"
    # Telemetry runs export the stage/lock summary before draining.
    ./target/release/adcache metrics --addr "127.0.0.1:$PORT" --summary \
        > "${log%.log}.summary" 2>/dev/null || true
    ./target/release/adcache loadgen --addr "127.0.0.1:$PORT" --ops 0 --shutdown \
        > /dev/null
    wait "$server_pid"
}

# Pulls "p50 589.8 us" style fields out of a loadgen report.
extract() {
    local file=$1 field=$2
    grep -oE "$field [0-9.]+" "$file" | head -1 | awk '{print $2}'
}

# Pulls "stage engine_exec ... share_pct 35.9" style fields out of a
# `metrics --summary` export; 0 when the summary is absent.
stage_share() {
    local file=$1 stage=$2
    { grep -E "^stage $stage " "$file" 2>/dev/null || echo "share_pct 0"; } \
        | grep -oE 'share_pct [0-9.]+' | awk '{print $2}'
}

# Pulls one "name value" field out of the group_commit summary line.
gc_field() {
    local file=$1 field=$2
    { grep -E "^group_commit " "$file" 2>/dev/null || echo "$field 0"; } \
        | grep -oE "$field [0-9.]+" | awk '{print $2}'
}

points=""
for conns in 1 8 32 128; do
    echo "=== $conns connection(s), telemetry off ==="
    off_log="/tmp/bench_net_${conns}_off.log"
    run_point "$conns" "$off_log" --no-telemetry
    qps_off=$(grep -oE 'throughput [0-9.]+' "$off_log" | awk '{print $2}')

    echo "=== $conns connection(s), stripes off (legacy inline engine) ==="
    legacy_log="/tmp/bench_net_${conns}_legacy.log"
    run_point "$conns" "$legacy_log" --stripes 1
    qps_legacy=$(grep -oE 'throughput [0-9.]+' "$legacy_log" | awk '{print $2}')
    p99_legacy=$(extract "$legacy_log" p99)

    echo "=== $conns connection(s), telemetry on ==="
    on_log="/tmp/bench_net_${conns}_on.log"
    run_point "$conns" "$on_log"
    sum="${on_log%.log}.summary"
    qps=$(grep -oE 'throughput [0-9.]+' "$on_log" | awk '{print $2}')
    p50=$(extract "$on_log" p50)
    p95=$(extract "$on_log" p95)
    p99=$(extract "$on_log" p99)
    p999=$(extract "$on_log" p999)
    overhead=$(awk -v off="$qps_off" -v on="$qps" \
        'BEGIN { printf "%.2f", (off > 0) ? ((off - on) * 100.0 / off) : 0 }')
    speedup=$(awk -v legacy="$qps_legacy" -v on="$qps" \
        'BEGIN { printf "%.2f", (legacy > 0) ? on / legacy : 0 }')
    lock_share=$(grep -oE 'lock_wait_share_pct [0-9.]+' "$sum" | awk '{print $2}')
    point=$(printf '    {"connections": %s, "ops": %s, "qps": %s, "qps_telemetry_off": %s, "qps_stripes_off": %s, "p99_us_stripes_off": %s, "stripe_speedup": %s, "overhead_pct": %s, "p50_us": %s, "p95_us": %s, "p99_us": %s, "p999_us": %s, "lock_wait_share_pct": %s, "group_commit": {"rounds": %s, "batches": %s, "mean_batch": %s, "seals": %s, "write_stalls": %s}, "stage_share_pct": {"parse": %s, "queue_wait": %s, "lock_wait": %s, "engine_exec": %s, "cache_layer": %s, "reply_flush": %s}}' \
        "$conns" "$OPS" "$qps" "$qps_off" "$qps_legacy" "${p99_legacy:-0}" "$speedup" \
        "$overhead" "$p50" "$p95" "$p99" "$p999" \
        "${lock_share:-0}" \
        "$(gc_field "$sum" rounds)" "$(gc_field "$sum" batches)" \
        "$(gc_field "$sum" mean_batch)" "$(gc_field "$sum" seals)" \
        "$(gc_field "$sum" write_stalls)" \
        "$(stage_share "$sum" parse)" "$(stage_share "$sum" queue_wait)" \
        "$(stage_share "$sum" lock_wait)" "$(stage_share "$sum" engine_exec)" \
        "$(stage_share "$sum" cache_layer)" "$(stage_share "$sum" reply_flush)")
    points="$points$point,\n"
done

# --- Batch A/B: same connections, 16 sub-requests per frame vs one ---
AB_CONNS="${AB_CONNS:-32}"
AB_BATCH="${AB_BATCH:-16}"
echo "=== batch A/B: $AB_CONNS connections, --batch $AB_BATCH vs singleton (telemetry off) ==="
ab_log="/tmp/bench_net_batch_on.log"
LOADGEN_EXTRA="--batch $AB_BATCH"
run_point "$AB_CONNS" "$ab_log" --no-telemetry
LOADGEN_EXTRA=""
qps_batch=$(grep -oE 'throughput [0-9.]+' "$ab_log" | awk '{print $2}')
# The unbatched side at the same connection count is the telemetry-off
# point from the sweep above.
qps_nobatch=$(grep -oE 'throughput [0-9.]+' "/tmp/bench_net_${AB_CONNS}_off.log" | awk '{print $2}')
batch_speedup=$(awk -v on="$qps_batch" -v off="$qps_nobatch" \
    'BEGIN { printf "%.2f", (off > 0) ? on / off : 0 }')
echo "batch A/B: $qps_nobatch ops/s singleton -> $qps_batch ops/s batched (${batch_speedup}x)"

# --- Offered-load curve: open loop, latency vs target rate ---
CURVE_CONNS="${CURVE_CONNS:-1024}"
CURVE_STEPS="${CURVE_STEPS:-25000 50000 100000 200000 400000}"
curve=""
for q in $CURVE_STEPS; do
    echo "=== offered load: $q ops/s over $CURVE_CONNS open-loop connections ==="
    step_log="/tmp/bench_net_curve_${q}.log"
    LOADGEN_EXTRA="--qps $q"
    RUN_OPS=$((q * 2))
    run_point "$CURVE_CONNS" "$step_log" --no-telemetry --max-conns $((CURVE_CONNS + 64))
    LOADGEN_EXTRA=""
    RUN_OPS=""
    step=$(printf '      {"offered_qps": %s, "achieved_qps": %s, "p50_us": %s, "p99_us": %s, "p999_us": %s}' \
        "$q" \
        "$(grep -oE 'throughput [0-9.]+' "$step_log" | awk '{print $2}')" \
        "$(extract "$step_log" p50)" \
        "$(extract "$step_log" p99)" \
        "$(extract "$step_log" p999)")
    curve="$curve$step,\n"
done

{
    echo '{'
    echo '  "bench": "network serving baseline (closed loop, loopback, mixed zipfian; striped engine, telemetry on vs off, stripes on vs off; batch A/B; open-loop offered-load curve)",'
    echo '  "command": "scripts/bench_net.sh",'
    echo "  \"keys\": $KEYS,"
    echo '  "points": ['
    printf '%b' "$points" | sed '$ s/,$//'
    echo '  ],'
    echo '  "batch_ab": {'
    echo "    \"connections\": $AB_CONNS,"
    echo "    \"batch\": $AB_BATCH,"
    echo "    \"qps_singleton\": $qps_nobatch,"
    echo "    \"qps_batched\": $qps_batch,"
    echo "    \"speedup\": $batch_speedup,"
    echo "    \"p99_us_batched\": $(extract "$ab_log" p99),"
    echo '    "note": "closed loop, telemetry off; batched latency is per 16-op frame, not per op"'
    echo '  },'
    echo '  "offered_load_curve": {'
    echo "    \"connections\": $CURVE_CONNS,"
    echo '    "mode": "open loop, latency includes queueing delay; telemetry off. Caveat: on a single-core host the 1024 client threads contend with the server for the one CPU, so achieved throughput saturates far below closed-loop capacity and latencies are dominated by client-side scheduling; rerun on >=8 cores for a meaningful knee",'
    echo '    "steps": ['
    printf '%b' "$curve" | sed '$ s/,$//'
    echo '    ]'
    echo '  }'
    echo '}'
} > "$OUT"
echo "baseline written to $OUT"
