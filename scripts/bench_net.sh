#!/usr/bin/env bash
# Records the standing network baseline in BENCH_net.json: closed-loop
# throughput and tail latency over loopback at 1, 8, and 32 connections
# (release build, in-memory store, mixed zipfian workload).
#
# Loopback numbers measure the serving path — framing, worker scheduling,
# the engine under concurrency — not a real network. Compare shapes
# across commits, not absolute values.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${PORT:-$((42000 + RANDOM % 20000))}"
OPS="${OPS:-100000}"
KEYS="${KEYS:-50000}"
OUT="${OUT:-BENCH_net.json}"

cargo build --release -p adcache-cli

run_point() {
    local conns=$1
    ./target/release/adcache serve \
        --addr "127.0.0.1:$PORT" --fill "$KEYS" > /tmp/bench_net_serve.log 2>&1 &
    local server_pid=$!
    for _ in $(seq 1 50); do
        if ./target/release/adcache loadgen --addr "127.0.0.1:$PORT" --ops 0 \
            > /dev/null 2>&1; then
            break
        fi
        sleep 0.2
    done
    ./target/release/adcache loadgen \
        --addr "127.0.0.1:$PORT" --ops "$OPS" --connections "$conns" \
        --keys "$KEYS" --mix mixed --shutdown | tee "/tmp/bench_net_$conns.log"
    wait "$server_pid"
}

# Pulls "p50 589.8 us" style fields out of a loadgen report.
extract() {
    local file=$1 field=$2
    grep -oE "$field [0-9.]+" "$file" | head -1 | awk '{print $2}'
}

points=""
for conns in 1 8 32; do
    echo "=== $conns connection(s) ==="
    run_point "$conns"
    log="/tmp/bench_net_$conns.log"
    qps=$(grep -oE 'throughput [0-9.]+' "$log" | awk '{print $2}')
    p50=$(extract "$log" p50)
    p95=$(extract "$log" p95)
    p99=$(extract "$log" p99)
    p999=$(extract "$log" p999)
    point=$(printf '    {"connections": %s, "ops": %s, "qps": %s, "p50_us": %s, "p95_us": %s, "p99_us": %s, "p999_us": %s}' \
        "$conns" "$OPS" "$qps" "$p50" "$p95" "$p99" "$p999")
    points="$points$point,\n"
done

{
    echo '{'
    echo '  "bench": "network serving baseline (closed loop, loopback, mixed zipfian)",'
    echo '  "command": "scripts/bench_net.sh",'
    echo "  \"keys\": $KEYS,"
    echo '  "points": ['
    printf '%b' "$points" | sed '$ s/,$//'
    echo '  ]'
    echo '}'
} > "$OUT"
echo "baseline written to $OUT"
