#!/usr/bin/env bash
# Regenerates every paper table/figure at the default (laptop) scale.
# Output tables land in results/logs/, CSVs in results/.
# Pass --quick or --full to forward a scale preset to every binary.
set -euo pipefail
cd "$(dirname "$0")/.."

ARGS=("$@")
mkdir -p results/logs
cargo build --release -p adcache-bench

for exp in table2 fig1 fig6 fig7 fig8 fig9 fig10 fig11a fig11b ablation_design; do
    echo "=== $exp ==="
    ./target/release/$exp "${ARGS[@]}" | tee "results/logs/$exp.log"
done
echo "all experiments complete; see results/ and results/logs/"
