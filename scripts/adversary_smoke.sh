#!/usr/bin/env bash
# CI smoke test for adversarial robustness: for every attack generator,
# run a blended hostile/legit load against a live quota-enforcing server
# and require that the server survives it like any other traffic — zero
# panics, zero protocol errors, a clean graceful drain — and that at
# least one defense (quota throttle or sketch-guard re-salt) visibly
# activated in the journal. Degradation *bounds* are measured by
# `adcache advcheck`; this script only proves the machinery engages
# end-to-end over the wire.
set -euo pipefail
cd "$(dirname "$0")/.."

OPS="${OPS:-10000}"
CONNS="${CONNS:-4}"
KEYS="${KEYS:-4000}"
KINDS="${KINDS:-scan-flood one-hit-wonder key-churn sketch-collision}"

cargo build -p adcache-cli

for KIND in $KINDS; do
    PORT=$((42000 + RANDOM % 20000))
    TRACE_DIR="$(mktemp -d)"

    ./target/debug/adcache serve \
        --addr "127.0.0.1:$PORT" --fill "$KEYS" --trace "$TRACE_DIR" \
        --quota-ops 2000 --quota-burst 100 \
        > "$TRACE_DIR/serve.log" 2>&1 &
    SERVER_PID=$!

    # Wait for the listener to come up.
    for _ in $(seq 1 50); do
        if ./target/debug/adcache loadgen --addr "127.0.0.1:$PORT" --ops 0 \
            > /dev/null 2>&1; then
            break
        fi
        sleep 0.2
    done

    # Half the connections replay the attack, half stay legit. The
    # loadgen exits nonzero on any lost / misordered / undecodable
    # reply, so hostile traffic must never corrupt the protocol stream —
    # quota rejections come back as ordinary Err replies and land in the
    # per-cause error accounting instead of aborting the run.
    ./target/debug/adcache loadgen \
        --addr "127.0.0.1:$PORT" --ops "$OPS" --connections "$CONNS" \
        --keys "$KEYS" --mix mixed \
        --adversary "$KIND" --adversary-frac 0.5 --shutdown

    SERVER_STATUS=0
    wait "$SERVER_PID" || SERVER_STATUS=$?
    echo "---- server log ($KIND) ----"
    cat "$TRACE_DIR/serve.log"
    if [ "$SERVER_STATUS" -ne 0 ]; then
        echo "FAIL($KIND): server exited with status $SERVER_STATUS" >&2
        exit 1
    fi
    if ! grep -q "drained: .* (0 protocol errors)" "$TRACE_DIR/serve.log"; then
        echo "FAIL($KIND): protocol errors or no drain line" >&2
        exit 1
    fi
    # Clean drain: every accepted connection closed ("N/N").
    if ! grep -qE "drained: .* ([0-9]+)/\1 connections closed" \
        "$TRACE_DIR/serve.log"; then
        echo "FAIL($KIND): not every accepted connection closed on drain" >&2
        exit 1
    fi
    # A defense must have engaged: quota throttling, a sketch-guard
    # re-salt, or an explicit adversary detection in the journal.
    if ! grep -qE "QuotaThrottled|SketchReset|AdversaryDetected" \
        "$TRACE_DIR/trace.jsonl"; then
        echo "FAIL($KIND): no defense activation event in the journal" >&2
        exit 1
    fi

    rm -rf "$TRACE_DIR"
    echo "adversary-smoke OK: $KIND ($OPS ops, 0 protocol errors, clean drain, defenses engaged)"
done

echo "adversary-smoke OK: all kinds survived"
