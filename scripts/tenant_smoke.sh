#!/usr/bin/env bash
# CI smoke test for multi-tenant serving: one hot tenant and three cold
# tenants share a live quota-enforcing server over loopback. The hot
# tenant's connections replay a scan-flood; the cold tenants run the
# normal mixed workload. Pass requires the wire to stay frame-clean
# (zero protocol errors, clean drain), the aggregated per-tenant quota
# to visibly engage (>= 1 TenantThrottled journal event), and the cold
# tenants' cache hit rate under attack to stay within BOUND_PP
# percentage points of the same load run with nobody attacking.
# Degradation *bounds* are measured by `adcache tenantcheck`; this
# script proves the machinery engages end-to-end over the wire.
set -euo pipefail
cd "$(dirname "$0")/.."

OPS="${OPS:-12000}"
KEYS="${KEYS:-4000}"
CONNS="${CONNS:-8}"
TENANTS="${TENANTS:-4}"
BOUND_PP="${BOUND_PP:-10}"

cargo build -p adcache-cli
BIN=./target/debug/adcache

# Prints the value of one flat metric key from a metrics.json.
metric() {
    local v
    v=$(grep -o "\"$1\": *[0-9-]*" "$2" | head -1 | sed 's/.*: *//')
    echo "${v:-0}"
}

# Aggregated cold-tenant (ids >= 2) hit rate in whole percent.
cold_hit_pct() {
    local hits=0 misses=0 t
    for t in $(seq 2 "$TENANTS"); do
        hits=$((hits + $(metric "cache.tenant.$t.hits" "$1")))
        misses=$((misses + $(metric "cache.tenant.$t.misses" "$1")))
    done
    if [ $((hits + misses)) -eq 0 ]; then
        echo "FAIL: no cold-tenant cache traffic recorded in $1" >&2
        exit 1
    fi
    echo $((hits * 100 / (hits + misses)))
}

# One serve+loadgen round. $1 = trace dir; extra args go to loadgen
# (the hot tenant's attack). Tenant quota sized so the paced mixed load
# fits and a scan flood (257 tokens/op) overruns immediately.
run_round() {
    local trace_dir=$1
    shift
    local port=$((42000 + RANDOM % 20000))
    "$BIN" serve \
        --addr "127.0.0.1:$port" --fill "$KEYS" --trace "$trace_dir" \
        --tenant-quota-ops 6000 --tenant-quota-burst 400 \
        > "$trace_dir/serve.log" 2>&1 &
    SERVER_PID=$!
    for _ in $(seq 1 50); do
        if "$BIN" loadgen --addr "127.0.0.1:$port" --ops 0 > /dev/null 2>&1; then
            break
        fi
        sleep 0.2
    done
    "$BIN" loadgen \
        --addr "127.0.0.1:$port" --ops "$OPS" --connections "$CONNS" \
        --keys "$KEYS" --mix mixed --tenants "$TENANTS" --skew 1:1 \
        "$@" --shutdown
    SERVER_STATUS=0
    wait "$SERVER_PID" || SERVER_STATUS=$?
    echo "---- server log ($trace_dir) ----"
    cat "$trace_dir/serve.log"
    if [ "$SERVER_STATUS" -ne 0 ]; then
        echo "FAIL: server exited with status $SERVER_STATUS" >&2
        exit 1
    fi
    if ! grep -q "drained: .* (0 protocol errors)" "$trace_dir/serve.log"; then
        echo "FAIL: protocol errors or no drain line" >&2
        exit 1
    fi
    if ! grep -qE "drained: .* ([0-9]+)/\1 connections closed" \
        "$trace_dir/serve.log"; then
        echo "FAIL: not every accepted connection closed on drain" >&2
        exit 1
    fi
}

# Round 1 — solo baseline: every tenant runs the legit mixed workload.
SOLO_DIR="$(mktemp -d)"
run_round "$SOLO_DIR"
SOLO_COLD=$(cold_hit_pct "$SOLO_DIR/metrics.json")

# Round 2 — noisy neighbor: with equal skew over $CONNS connections,
# tenant 1 owns exactly the first CONNS/TENANTS connections — the same
# prefix the adversary fraction claims, so the attack and the hot
# tenant coincide.
NOISY_DIR="$(mktemp -d)"
run_round "$NOISY_DIR" \
    --adversary scan-flood --adversary-frac "$(awk "BEGIN{print 1/$TENANTS}")"
NOISY_COLD=$(cold_hit_pct "$NOISY_DIR/metrics.json")

if ! grep -q "TenantThrottled" "$NOISY_DIR/trace.jsonl"; then
    echo "FAIL: no TenantThrottled event — the aggregated quota never fired" >&2
    exit 1
fi
if ! grep -q "TenantBound" "$NOISY_DIR/trace.jsonl"; then
    echo "FAIL: no TenantBound event — connections never authenticated" >&2
    exit 1
fi

DROP=$((SOLO_COLD - NOISY_COLD))
echo "cold-tenant hit rate: solo ${SOLO_COLD}%, under attack ${NOISY_COLD}% (drop ${DROP}pp, bound ${BOUND_PP}pp)"
if [ "$DROP" -gt "$BOUND_PP" ]; then
    echo "FAIL: cold-tenant hit rate dropped ${DROP}pp under the noisy neighbor (bound ${BOUND_PP}pp)" >&2
    exit 1
fi

rm -rf "$SOLO_DIR" "$NOISY_DIR"
echo "tenant-smoke OK: $TENANTS tenants, 0 protocol errors, quota fired, cold hit rate within ${BOUND_PP}pp"
