//! Offline shim for the `parking_lot` crate.
//!
//! Wraps `std::sync::Mutex` / `std::sync::RwLock` with the parking_lot API:
//! `lock()` / `read()` / `write()` return guards directly instead of
//! `Result`s. Poisoning is deliberately ignored (parking_lot has no
//! poisoning): a panic while holding a lock propagates to the panicking
//! thread, and other threads simply keep using the protected data.

use std::fmt;
use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard, TryLockError};

/// A mutual-exclusion primitive with the parking_lot API shape.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// A reader-writer lock with the parking_lot API shape.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        RwLock::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic_and_concurrent() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(*l.read(), vec![1, 2, 3, 4]);
        assert!(l.try_write().is_some());
    }
}
