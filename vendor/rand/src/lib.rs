//! Offline shim for the `rand` crate (0.8 API subset).
//!
//! Provides [`Rng`], [`SeedableRng`] and [`rngs::StdRng`] backed by
//! xoshiro256++ seeded via SplitMix64. The stream differs from upstream
//! rand's StdRng (ChaCha12), which is fine for this workspace: experiments
//! only require determinism in the seed and good statistical quality, not
//! bit-compatibility with a particular upstream version.

/// Types that can be sampled uniformly over their whole domain by
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                // Widening-multiply bounded sampling (Lemire); the tiny
                // modulo bias of one multiply is irrelevant here.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "gen_range: empty range");
                if s == <$t>::MIN && e == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (s..e + 1).sample(rng)
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_sint {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + hi as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "gen_range: empty range");
                if s == <$t>::MIN && e == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (e as i128 - s as i128 + 1) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (s as i128 + hi as i128) as $t
            }
        }
    )*};
}
impl_sample_range_sint!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// The user-facing random number generator interface.
pub trait Rng {
    /// The next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds the generator from OS-provided entropy (the shim derives it
    /// from the system clock and a counter; adequate for non-crypto use).
    fn from_entropy() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        Self::seed_from_u64(t ^ COUNTER.fetch_add(0x9E37_79B9, Ordering::Relaxed))
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ — fast, 256-bit state, excellent statistical quality.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the workspace does not need a distinct small generator.
    pub type SmallRng = StdRng;
}

/// A fresh generator seeded from (clock-derived) entropy.
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

/// `rand::prelude` lookalike.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::{thread_rng, Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_is_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1000 {
            let v = rng.gen_range(5u64..6);
            assert_eq!(v, 5);
        }
    }

    #[test]
    fn unit_floats_are_uniformish() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }
}
