//! Offline shim for `serde_derive`: a dependency-free (no syn/quote)
//! implementation of `#[derive(Serialize)]` and `#[derive(Deserialize)]`
//! targeting the in-tree `serde` shim's `Value`-based traits.
//!
//! Supported input shapes — exactly what this workspace uses, enforced with
//! `compile_error!` so unsupported code fails loudly at the derive site:
//!
//! - structs with named fields, honouring `#[serde(skip)]` (skipped fields
//!   are omitted on write and `Default::default()`-filled on read);
//! - unit structs and tuple structs (newtype = transparent, n-tuple = array);
//! - enums with unit, newtype, tuple and struct variants, using serde's
//!   externally-tagged JSON representation (`"Variant"` for unit,
//!   `{"Variant": ...}` otherwise).
//!
//! Generics, lifetimes and other `#[serde(...)]` attributes are rejected.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
struct Field {
    name: String,
    skip: bool,
}

#[derive(Debug, Clone)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug, Clone)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Input {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Consumes leading attributes from `toks[*i]`, returning whether a
/// `#[serde(skip)]` was present. Unknown `#[serde(...)]` forms error.
fn eat_attrs(toks: &[TokenTree], i: &mut usize) -> Result<bool, String> {
    let mut skip = false;
    while *i < toks.len() {
        match &toks[*i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                let TokenTree::Group(g) = &toks[*i + 1] else {
                    return Err("malformed attribute".into());
                };
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let Some(TokenTree::Ident(id)) = inner.first() {
                    if id.to_string() == "serde" {
                        let body = match inner.get(1) {
                            Some(TokenTree::Group(b)) => b.stream().to_string(),
                            _ => String::new(),
                        };
                        if body.trim() == "skip" {
                            skip = true;
                        } else {
                            return Err(format!(
                                "serde shim derive: unsupported attribute #[serde({})]",
                                body.trim()
                            ));
                        }
                    }
                }
                *i += 2;
            }
            _ => break,
        }
    }
    Ok(skip)
}

/// Consumes an optional `pub` / `pub(...)` visibility.
fn eat_vis(toks: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = toks.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Consumes a type (or any token run) up to a top-level `,`, tracking
/// `<...>` nesting depth.
fn eat_until_comma(toks: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while *i < toks.len() {
        match &toks[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(group: &proc_macro::Group) -> Result<Vec<Field>, String> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let skip = eat_attrs(&toks, &mut i)?;
        if i >= toks.len() {
            break;
        }
        eat_vis(&toks, &mut i);
        let TokenTree::Ident(name) = &toks[i] else {
            return Err(format!("expected field name, found {}", toks[i]));
        };
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected ':' after field name, found {other:?}")),
        }
        eat_until_comma(&toks, &mut i);
        i += 1; // the comma (or past the end)
        fields.push(Field {
            name: name.to_string(),
            skip,
        });
    }
    Ok(fields)
}

fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut n = 0;
    while i < toks.len() {
        // Tuple fields can carry attrs/vis too.
        let _ = eat_attrs(&toks, &mut i);
        eat_vis(&toks, &mut i);
        eat_until_comma(&toks, &mut i);
        i += 1;
        n += 1;
    }
    n
}

fn parse_variants(group: &proc_macro::Group) -> Result<Vec<Variant>, String> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        eat_attrs(&toks, &mut i)?;
        if i >= toks.len() {
            break;
        }
        let TokenTree::Ident(name) = &toks[i] else {
            return Err(format!("expected variant name, found {}", toks[i]));
        };
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g))
            }
            _ => VariantKind::Unit,
        };
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == '=' {
                return Err("serde shim derive: explicit discriminants unsupported".into());
            }
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant {
            name: name.to_string(),
            kind,
        });
    }
    Ok(variants)
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    eat_attrs(&toks, &mut i)?;
    eat_vis(&toks, &mut i);
    let kw = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {other}")),
    };
    i += 1;
    let TokenTree::Ident(name) = &toks[i] else {
        return Err("expected type name".into());
    };
    let name = name.to_string();
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim derive: generic type `{name}` unsupported"
            ));
        }
    }
    match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Input::Struct {
                name,
                fields: parse_named_fields(g)?,
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Input::TupleStruct {
                    name,
                    arity: count_tuple_fields(g),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Input::UnitStruct { name }),
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Input::Enum {
                name,
                variants: parse_variants(g)?,
            }),
            other => Err(format!("unsupported enum body: {other:?}")),
        },
        other => Err(format!("serde shim derive: cannot derive for `{other}`")),
    }
}

// ---- code generation ----------------------------------------------------

fn gen_struct_fields_ser(fields: &[Field], access: &str) -> String {
    let mut out = String::from("let mut __fields: Vec<(String, ::serde::Value)> = Vec::new();\n");
    for f in fields.iter().filter(|f| !f.skip) {
        out.push_str(&format!(
            "__fields.push((\"{n}\".to_string(), ::serde::Serialize::serialize({access}{n})));\n",
            n = f.name
        ));
    }
    out.push_str("::serde::Value::Object(__fields)");
    out
}

fn gen_struct_fields_de(ty_and_variant: &str, fields: &[Field], src: &str) -> String {
    let mut out = format!("Ok({ty_and_variant} {{\n");
    for f in fields {
        if f.skip {
            out.push_str(&format!(
                "{}: ::core::default::Default::default(),\n",
                f.name
            ));
        } else {
            out.push_str(&format!(
                "{n}: match {src}.get(\"{n}\") {{\n\
                     Some(__fv) => ::serde::Deserialize::deserialize(__fv)?,\n\
                     None => return Err(::serde::DeError::missing_field(\"{n}\")),\n\
                 }},\n",
                n = f.name
            ));
        }
    }
    out.push_str("})");
    out
}

fn gen_serialize(input: &Input) -> String {
    match input {
        Input::Struct { name, fields } => {
            let body = gen_struct_fields_ser(fields, "&self.");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n\
                 }}"
            )
        }
        Input::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Input::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::serialize(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|k| format!("::serde::Serialize::serialize(&self.{k})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|k| format!("__f{k}")).collect();
                        let inner = if *arity == 1 {
                            "::serde::Serialize::serialize(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), {inner})]),\n",
                            binds = binds.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let body = gen_struct_fields_ser(fields, "");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\n\
                                 let __inner = {{ {body} }};\n\
                                 ::serde::Value::Object(vec![(\"{vn}\".to_string(), __inner)])\n\
                             }},\n",
                            binds = binds.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(input: &Input) -> String {
    match input {
        Input::Struct { name, fields } => {
            let body = gen_struct_fields_de(name, fields, "__v");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                         if __v.as_object().is_none() {{\n\
                             return Err(::serde::DeError::custom(\"expected object for struct {name}\"));\n\
                         }}\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Input::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                     let _ = __v; Ok({name})\n\
                 }}\n\
             }}"
        ),
        Input::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!("Ok({name}(::serde::Deserialize::deserialize(__v)?))")
            } else {
                let mut items = String::new();
                for k in 0..*arity {
                    items.push_str(&format!(
                        "::serde::Deserialize::deserialize(&__a[{k}])?, "
                    ));
                }
                format!(
                    "let __a = __v.as_array().ok_or_else(|| ::serde::DeError::custom(\"expected array for tuple struct {name}\"))?;\n\
                     if __a.len() != {arity} {{ return Err(::serde::DeError::custom(\"wrong tuple arity for {name}\")); }}\n\
                     Ok({name}({items}))"
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let mut unit_arms = String::new();
            for v in variants {
                if matches!(v.kind, VariantKind::Unit) {
                    unit_arms.push_str(&format!(
                        "\"{vn}\" => return Ok({name}::{vn}),\n",
                        vn = v.name
                    ));
                }
            }
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        // Also accept the {"Variant": null} form.
                        tagged_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                    }
                    VariantKind::Tuple(arity) => {
                        let body = if *arity == 1 {
                            format!("Ok({name}::{vn}(::serde::Deserialize::deserialize(__inner)?))")
                        } else {
                            let mut items = String::new();
                            for k in 0..*arity {
                                items.push_str(&format!(
                                    "::serde::Deserialize::deserialize(&__a[{k}])?, "
                                ));
                            }
                            format!(
                                "let __a = __inner.as_array().ok_or_else(|| ::serde::DeError::custom(\"expected array for variant {vn}\"))?;\n\
                                 if __a.len() != {arity} {{ return Err(::serde::DeError::custom(\"wrong arity for variant {vn}\")); }}\n\
                                 Ok({name}::{vn}({items}))"
                            )
                        };
                        tagged_arms.push_str(&format!("\"{vn}\" => {{ {body} }}\n"));
                    }
                    VariantKind::Struct(fields) => {
                        let body =
                            gen_struct_fields_de(&format!("{name}::{vn}"), fields, "__inner");
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                                 if __inner.as_object().is_none() {{\n\
                                     return Err(::serde::DeError::custom(\"expected object for variant {vn}\"));\n\
                                 }}\n\
                                 {body}\n\
                             }}\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                         if let Some(__s) = __v.as_str() {{\n\
                             match __s {{\n{unit_arms}_ => {{}}\n}}\n\
                             return Err(::serde::DeError::custom(format!(\"unknown variant `{{__s}}` of {name}\")));\n\
                         }}\n\
                         let __obj = __v.as_object().ok_or_else(|| ::serde::DeError::custom(\"expected string or single-key object for enum {name}\"))?;\n\
                         if __obj.len() != 1 {{\n\
                             return Err(::serde::DeError::custom(\"expected single-key object for enum {name}\"));\n\
                         }}\n\
                         let (__tag, __inner) = (&__obj[0].0, &__obj[0].1);\n\
                         match __tag.as_str() {{\n\
                             {tagged_arms}\
                             __other => Err(::serde::DeError::custom(format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

/// Derives `serde::Serialize` (shim semantics: lowering to `serde::Value`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen_serialize(&parsed)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde shim codegen error: {e}"))),
        Err(e) => compile_error(&e),
    }
}

/// Derives `serde::Deserialize` (shim semantics: rebuilding from
/// `serde::Value`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen_deserialize(&parsed)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde shim codegen error: {e}"))),
        Err(e) => compile_error(&e),
    }
}
