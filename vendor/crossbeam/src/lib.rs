//! Offline shim for the `crossbeam` crate: the `channel` module only,
//! implemented over `std::sync::mpsc`. The workspace uses single-consumer
//! channels exclusively, so mpsc semantics are sufficient.

/// Multi-producer channels with the crossbeam-channel API shape.
pub mod channel {
    use std::sync::mpsc;

    /// Sending half of a channel. Clonable; `send` takes `&self`.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    /// Error returned by `recv` on a disconnected empty channel.
    pub use std::sync::mpsc::RecvError;
    /// Error returned when the receiving half has been dropped.
    pub use std::sync::mpsc::SendError;
    /// Error returned by `try_recv`.
    pub use std::sync::mpsc::TryRecvError;

    impl<T> Sender<T> {
        /// Sends `value`, failing only if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        /// Iterates over received messages, ending when senders are gone.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }

    /// Creates a channel with unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_roundtrip_across_threads() {
            let (tx, rx) = unbounded::<u64>();
            let tx2 = tx.clone();
            let h = std::thread::spawn(move || {
                for i in 0..100 {
                    tx2.send(i).unwrap();
                }
            });
            let mut sum = 0;
            for _ in 0..100 {
                sum += rx.recv().unwrap();
            }
            h.join().unwrap();
            assert_eq!(sum, 4950);
            drop(tx);
            assert!(rx.recv().is_err(), "disconnected channel errors");
        }
    }
}
