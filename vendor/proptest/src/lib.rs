//! Offline shim for the `proptest` crate.
//!
//! Provides the API surface this workspace uses — `proptest!` with an
//! optional `#![proptest_config(...)]`, `any::<T>()`, numeric range
//! strategies, `Just`, weighted `prop_oneof!`, `collection::vec`,
//! `prop_map`, and `prop_assert!`/`prop_assert_eq!` — backed by a
//! deterministic per-test RNG. Unlike real proptest there is **no
//! shrinking**: a failing case reports its case index and message only.

pub mod test_runner {
    use std::fmt;

    /// Per-test configuration; only `cases` matters in this shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }

    /// Failure raised by `prop_assert!`-style macros inside a property.
    #[derive(Debug)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError { msg: msg.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.msg)
        }
    }

    /// The RNG driving value generation.
    pub type TestRng = rand::rngs::StdRng;

    /// Creates the deterministic RNG for one property function.
    pub fn new_rng(seed: u64) -> TestRng {
        use rand::SeedableRng;
        TestRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// Stable seed derived from a test's name.
    pub fn seed_from_name(name: &str) -> u64 {
        // FNV-1a; any stable hash works, this avoids relying on std's
        // randomized hasher.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of random values of one type.
    pub trait Strategy {
        /// The type of value produced.
        type Value;

        /// Produces one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Derives a strategy applying `f` to each generated value.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases this strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Strategy always yielding a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice between strategies of one value type.
    pub struct Union<T> {
        entries: Vec<(u32, BoxedStrategy<T>)>,
        total: u32,
    }

    impl<T> Union<T> {
        /// Builds a union; weights must not all be zero.
        pub fn new_weighted(entries: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total: u32 = entries.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! requires a positive total weight");
            Union { entries, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.gen_range(0..self.total);
            for (w, s) in &self.entries {
                if pick < *w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weights changed mid-iteration")
        }
    }

    /// Helper for `prop_oneof!`: boxes one weighted entry.
    pub fn union_entry<S>(weight: u32, s: S) -> (u32, BoxedStrategy<S::Value>)
    where
        S: Strategy + 'static,
    {
        (weight, Box::new(s))
    }

    /// `any::<T>()` marker strategy.
    pub struct Any<T>(PhantomData<T>);

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Samples an unconstrained value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// Full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.gen::<$t>()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            rng.gen::<f64>()
        }
    }
    impl Arbitrary for f32 {
        fn arbitrary_value(rng: &mut TestRng) -> f32 {
            rng.gen::<f32>()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+)),+) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Element-count bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing `BTreeSet`s of values from an element strategy.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `BTreeSet` strategy targeting `size` elements (best effort: duplicate
    /// draws from a small element domain can land below the lower bound).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            let mut set = std::collections::BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target.saturating_mul(10) + 16 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }

    /// Strategy producing `HashSet`s of values from an element strategy.
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `HashSet` strategy targeting `size` elements (best effort, like
    /// [`btree_set`]).
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: std::hash::Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: std::hash::Hash + Eq,
    {
        type Value = std::collections::HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            let mut set = std::collections::HashSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target.saturating_mul(10) + 16 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }

    /// Strategy producing `BTreeMap`s from key and value strategies.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// `BTreeMap` strategy targeting `size` entries (best effort, like
    /// [`btree_set`]).
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = std::collections::BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            let mut map = std::collections::BTreeMap::new();
            let mut attempts = 0usize;
            while map.len() < target && attempts < target.saturating_mul(10) + 16 {
                map.insert(self.key.generate(rng), self.value.generate(rng));
                attempts += 1;
            }
            map
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines `#[test]` functions running a body over random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::new_rng($crate::test_runner::seed_from_name(stringify!($name)));
                for __case in 0..__cfg.cases {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __result = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(__e) = __result {
                        panic!("proptest {} failed on case {}/{}: {}",
                            stringify!($name), __case + 1, __cfg.cases, __e);
                    }
                }
            }
        )*
    };
}

/// Weighted (`w => strat`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $($crate::strategy::union_entry($weight as u32, $strat)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $($crate::strategy::union_entry(1u32, $strat)),+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&($left), &($right));
        if __l != __r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __l, __r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&($left), &($right));
        if __l != __r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), __l, __r,
            )));
        }
    }};
}

/// Fails the current case if both sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&($left), &($right));
        if __l == __r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        fn ranges_stay_in_bounds(x in 1u8..32, y in 0usize..3) {
            prop_assert!((1..32).contains(&x));
            prop_assert!(y < 3);
        }

        fn vec_lengths_respect_size_range(xs in crate::collection::vec(any::<u8>(), 1..5)) {
            prop_assert!(!xs.is_empty() && xs.len() < 5);
        }

        fn oneof_and_map_compose(
            v in prop_oneof![4 => Just(0u8), 1 => (1u8..10).prop_map(|x| x + 100)],
        ) {
            prop_assert!(v == 0 || (101..110).contains(&v));
        }
    }

    #[test]
    fn runs_are_deterministic() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::new_rng(7);
        let mut b = crate::test_runner::new_rng(7);
        let s = crate::collection::vec(any::<u64>(), 1..50);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
