//! Offline shim for the `criterion` crate: a minimal wall-clock benchmark
//! harness exposing the API surface the workspace benchmarks use
//! (`benchmark_group`, `sample_size`, `bench_function`, `iter`,
//! `black_box`, `criterion_group!`, `criterion_main!`).
//!
//! Per benchmark it auto-calibrates an iteration count targeting ~10ms per
//! sample, takes `sample_size` samples, and prints median/min/max ns per
//! iteration. No statistics beyond that, no HTML reports, no baselines.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched code.
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 50,
        }
    }
}

impl Criterion {
    /// Criterion's builder entry point; CLI args are ignored in this shim.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup {name}");
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let sample_size = self.default_sample_size;
        run_benchmark(name, sample_size, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(&full, self.sample_size, f);
        self
    }

    /// Ends the group (no-op beyond matching the real API).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the hot code.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` for the sample's iteration count.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark(name: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    // Calibrate: grow the iteration count until one sample takes >= 10ms
    // (capped so pathological benches still finish).
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(10) || iters >= 1 << 24 {
            break;
        }
        iters = iters.saturating_mul(2);
    }

    let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    let median = samples_ns[samples_ns.len() / 2];
    let min = samples_ns[0];
    let max = samples_ns[samples_ns.len() - 1];
    println!("  {name:<40} {median:>12.1} ns/iter  (min {min:.1}, max {max:.1}, {iters} iters x {sample_size} samples)");
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_elapsed_time() {
        let mut b = Bencher {
            iters: 100,
            elapsed: Duration::ZERO,
        };
        b.iter(|| black_box(41u64) + 1);
        assert!(b.elapsed > Duration::ZERO);
    }
}
