//! Offline shim for the `serde` crate.
//!
//! Unlike real serde, this shim is not format-generic: [`Serialize`] lowers a
//! value into an owned JSON [`Value`] tree and [`Deserialize`] rebuilds the
//! value from one. The `serde_json` shim supplies the text encoding on top.
//! The `derive` feature re-exports `#[derive(Serialize, Deserialize)]` proc
//! macros (from the in-tree `serde_derive` shim) that generate impls of
//! these traits with serde's externally-tagged JSON conventions, so derived
//! types produce byte-identical JSON shapes to upstream serde_json for the
//! forms this workspace uses (named-field structs, unit/tuple/struct enum
//! variants, `#[serde(skip)]`).

use std::collections::BTreeMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON number: integers keep full 64-bit precision, floats are `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A floating-point number.
    Float(f64),
}

impl Number {
    /// The value as `f64` (always possible, maybe lossy).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(f) => f,
        }
    }

    /// The value as `u64`, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(_) => None,
            Number::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// The value as `i64`, if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(f)
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 =>
            {
                Some(f as i64)
            }
            Number::Float(_) => None,
        }
    }
}

/// An owned JSON document tree.
///
/// Objects preserve insertion order (serde_json's default map is unordered;
/// stable order is strictly more predictable and every consumer in this
/// workspace treats objects as maps).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object as an ordered list of key-value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The fields of an object, or `None`.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The elements of an array, or `None`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string payload, or `None`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, or `None`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric payload as `f64`, or `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Numeric payload as `u64`, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Numeric payload as `i64`, if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup by key (linear; objects here are small).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Array element lookup by index.
    pub fn get_index(&self, idx: usize) -> Option<&Value> {
        self.as_array().and_then(|a| a.get(idx))
    }
}

macro_rules! impl_value_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value { Value::Number(Number::PosInt(n as u64)) }
        }
    )*};
}
impl_value_from_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_value_from_sint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value {
                if n >= 0 {
                    Value::Number(Number::PosInt(n as u64))
                } else {
                    Value::Number(Number::NegInt(n as i64))
                }
            }
        }
    )*};
}
impl_value_from_sint!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Number(Number::Float(f))
    }
}
impl From<f32> for Value {
    fn from(f: f32) -> Value {
        Value::Number(Number::Float(f as f64))
    }
}
impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

/// Error produced when deserialization finds an unexpected shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Builds an error from any message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError {
            msg: msg.to_string(),
        }
    }

    /// Shorthand for a "missing field" error.
    pub fn missing_field(name: &str) -> Self {
        DeError::custom(format!("missing field `{name}`"))
    }

    /// The error message.
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Lowers a value into a JSON [`Value`] tree.
pub trait Serialize {
    /// The JSON representation of `self`.
    fn serialize(&self) -> Value;
}

/// Rebuilds a value from a JSON [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `self` out of `v`.
    fn deserialize(v: &Value) -> Result<Self, DeError>;
}

// ---- impls for std types ------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

macro_rules! impl_serde_num {
    ($($t:ty => $as:ident, $msg:expr);* $(;)?) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::from(*self) }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                v.$as()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| DeError::custom(concat!("expected ", $msg)))
            }
        }
    )*};
}
impl_serde_num! {
    u8 => as_u64, "u8";
    u16 => as_u64, "u16";
    u32 => as_u64, "u32";
    u64 => as_u64, "u64";
    usize => as_u64, "usize";
    i8 => as_i64, "i8";
    i16 => as_i64, "i16";
    i32 => as_i64, "i32";
    i64 => as_i64, "i64";
    isize => as_i64, "isize";
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::from(*self)
    }
}
impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            // serde_json writes non-finite floats as null.
            Value::Null => Ok(f64::NAN),
            _ => Err(DeError::custom("expected f64")),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::from(*self)
    }
}
impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        f64::deserialize(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::custom("expected bool"))
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::custom("expected string"))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::custom("expected array"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Array(vec![self.0.serialize(), self.1.serialize()])
    }
}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let a = v
            .as_array()
            .ok_or_else(|| DeError::custom("expected 2-tuple array"))?;
        if a.len() != 2 {
            return Err(DeError::custom("expected array of length 2"));
        }
        Ok((A::deserialize(&a[0])?, B::deserialize(&a[1])?))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_preserve_integer_precision() {
        let big = u64::MAX - 3;
        let v = big.serialize();
        assert_eq!(u64::deserialize(&v).unwrap(), big);
        assert_eq!((-42i64).serialize(), Value::Number(Number::NegInt(-42)));
        assert_eq!(i64::deserialize(&(-42i64).serialize()).unwrap(), -42);
    }

    #[test]
    fn collections_roundtrip() {
        let xs = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::deserialize(&xs.serialize()).unwrap(), xs);
        let opt: Option<String> = Some("hi".into());
        assert_eq!(
            Option::<String>::deserialize(&opt.serialize()).unwrap(),
            opt
        );
        let none: Option<String> = None;
        assert_eq!(
            Option::<String>::deserialize(&none.serialize()).unwrap(),
            None
        );
    }

    #[test]
    fn object_get_finds_fields() {
        let v = Value::Object(vec![
            ("a".into(), Value::from(1u8)),
            ("b".into(), Value::from("x")),
        ]);
        assert_eq!(v.get("b").and_then(Value::as_str), Some("x"));
        assert!(v.get("missing").is_none());
    }
}
