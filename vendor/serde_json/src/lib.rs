//! Offline shim for the `serde_json` crate: a recursive-descent JSON parser
//! and writer over the in-tree `serde` shim's owned [`Value`] tree.
//!
//! Supported surface: [`to_string`], [`to_string_pretty`], [`from_str`],
//! [`to_value`], [`from_value`], [`Error`]. Numbers keep 64-bit integer
//! precision; non-finite floats serialize as `null` (matching upstream).

use std::fmt;

pub use serde::Value;
use serde::{DeError, Deserialize, Number, Serialize};

/// Error for JSON encoding/decoding failures.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.message())
    }
}

// ---- writing ------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(f) => {
            if f.is_finite() {
                // Rust's Display for f64 is the shortest round-trip form,
                // same contract as upstream serde_json (ryu).
                let s = f.to_string();
                out.push_str(&s);
                // serde_json always keeps floats float-shaped.
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                write_value(out, item, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push('}');
        }
    }
}

/// Serializes `value` to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None);
    Ok(out)
}

/// Serializes `value` to two-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(0));
    Ok(out)
}

/// Lowers `value` to a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.serialize())
}

/// Rebuilds a `T` from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::deserialize(&value).map_err(Error::from)
}

// ---- parsing ------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.err(&format!("unexpected character '{}'", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.parse_hex4()?;
                            // Handle surrogate pairs for non-BMP chars.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.parse_hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue; // parse_hex4 already advanced
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 char (input is a &str, so valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(hex).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    T::deserialize(&v).map_err(Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        let src =
            r#"{"a": 1, "b": [true, null, -2.5], "c": "x\ny", "d": {"e": 18446744073709551615}}"#;
        let v: Value = from_str(src).unwrap();
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        assert_eq!(
            v.get("b")
                .and_then(|b| b.get_index(2))
                .and_then(Value::as_f64),
            Some(-2.5)
        );
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x\ny"));
        assert_eq!(
            v.get("d").and_then(|d| d.get("e")).and_then(Value::as_u64),
            Some(u64::MAX)
        );
        let text = to_string(&v).unwrap();
        let v2: Value = from_str(&text).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn floats_stay_float_shaped() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn pretty_output_indents() {
        let v = Value::Object(vec![("k".into(), Value::Array(vec![Value::from(1u8)]))]);
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"k\": [\n    1\n  ]\n}");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "quote\" slash\\ nl\n tab\t unicode\u{1F600}ctrl\u{01}";
        let s = to_string(&original.to_string()).unwrap();
        let back: String = from_str(&s).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn errors_on_garbage() {
        assert!(from_str::<Value>("{oops}").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
