//! Offline shim for the `bytes` crate.
//!
//! [`Bytes`] is an immutable, cheaply cloneable byte buffer: a reference
//! counted slice (`Arc<[u8]>`) plus a window. Cloning and `slice()` are O(1)
//! and never copy. Equality, ordering and hashing are by content, so `Bytes`
//! behaves exactly like `&[u8]` as a map key.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation is shared between instances).
    pub fn new() -> Self {
        Bytes {
            data: Arc::from([] as [u8; 0]),
            start: 0,
            end: 0,
        }
    }

    /// Wraps a static slice. (The shim copies it into an `Arc`; the
    /// lifetime guarantee of the real crate is not needed for correctness.)
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Copies `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length of the buffer in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a new `Bytes` windowed to `range` of this buffer, sharing
    /// the same allocation. Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= end && end <= len,
            "slice {begin}..{end} out of bounds of {len}"
        );
        Bytes {
            data: self.data.clone(),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// The underlying bytes as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            start: 0,
            end,
        }
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from(s.as_bytes().to_vec())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(s: &'static [u8; N]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        self.as_slice() == other.as_bytes()
    }
}
impl PartialEq<&str> for Bytes {
    fn eq(&self, other: &&str) -> bool {
        self.as_slice() == other.as_bytes()
    }
}
impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}
impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq<&Bytes> for Bytes {
    fn eq(&self, other: &&Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialOrd<&Bytes> for Bytes {
    fn partial_cmp(&self, other: &&Bytes) -> Option<std::cmp::Ordering> {
        Some(self.as_slice().cmp(other.as_slice()))
    }
}
impl PartialEq<Bytes> for &Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialOrd<Bytes> for &Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.as_slice().cmp(other.as_slice()))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Must agree with `<[u8] as Hash>` for Borrow<[u8]>-keyed lookups.
        self.as_slice().hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(feature = "serde")]
mod serde_impls {
    use super::Bytes;
    use serde::{DeError, Deserialize, Serialize, Value};

    impl Serialize for Bytes {
        fn serialize(&self) -> Value {
            Value::Array(self.as_slice().iter().map(|&b| Value::from(b)).collect())
        }
    }

    impl Deserialize for Bytes {
        fn deserialize(v: &Value) -> Result<Self, DeError> {
            let arr = v
                .as_array()
                .ok_or_else(|| DeError::custom("expected byte array"))?;
            let mut out = Vec::with_capacity(arr.len());
            for item in arr {
                let n = item
                    .as_u64()
                    .filter(|&n| n <= u8::MAX as u64)
                    .ok_or_else(|| DeError::custom("expected byte (0-255)"))?;
                out.push(n as u8);
            }
            Ok(Bytes::from(out))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn slicing_shares_and_windows() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.as_slice(), &[2, 3, 4]);
        assert_eq!(s.slice(..2).as_slice(), &[2, 3]);
        assert_eq!(b.slice(..).len(), 5);
        assert_eq!(b.slice(5..5).len(), 0);
    }

    #[test]
    fn content_semantics_for_maps() {
        let mut m: BTreeMap<Bytes, u32> = BTreeMap::new();
        m.insert(Bytes::from("alpha"), 1);
        m.insert(Bytes::copy_from_slice(b"beta"), 2);
        assert_eq!(m.get(b"alpha".as_slice()), Some(&1));
        assert_eq!(m.get(b"beta".as_slice()), Some(&2));
        let (a, b) = (Bytes::from("a"), Bytes::from("b"));
        assert!(a < b);
        assert_eq!(Bytes::from("x"), Bytes::copy_from_slice(b"x"));
    }

    #[test]
    fn equality_against_foreign_types() {
        let b = Bytes::from("hello");
        assert_eq!(b, "hello");
        assert_eq!(b, b"hello");
        assert_eq!(b.as_ref(), b"hello");
        assert_eq!(b, b"hello".to_vec());
    }
}
