//! Validates the paper's reward model (Section 3.5): the estimated
//! no-cache I/O count `IO_estimate = p·(1+FPR) + s·l/B + s·(L + r0/2 − 1)`
//! must approximate the *measured* block reads of a cache-less engine, and
//! the derived `h_estimate` must behave like a real hit rate at the
//! boundaries. The paper asserts this estimator "has been validated in the
//! context of block cache"; this test is that validation for our engine.

use adcache_suite::core::{
    h_estimate, io_estimate_of, run_static, ControllerConfig, CpuModel, RunConfig, Strategy,
};
use adcache_suite::lsm::Options;
use adcache_suite::workload::{Mix, WorkloadConfig};

fn no_cache_config() -> RunConfig {
    RunConfig {
        strategy: Strategy::RocksDbBlock,
        total_cache_bytes: 0, // block cache admits nothing: every read hits the device
        db_options: Options::small(),
        workload: WorkloadConfig {
            num_keys: 20_000,
            value_size: 64,
            ..Default::default()
        },
        controller: ControllerConfig {
            window: 1000,
            hidden: 16,
            ..Default::default()
        },
        cpu: CpuModel::default(),
        shards: 1,
        pretrained_agent: None,
        pinned_decision: None,
        boundary_hysteresis: 0.02,
        serve_partial_range: true,
        compaction_prefetch_blocks: 0,
        trace_dir: None,
        continue_on_error: false,
    }
}

/// With no cache at all, measured I/O should be within a modest factor of
/// the model's estimate for each workload type, and h_estimate ≈ 0.
#[test]
fn io_estimate_tracks_measured_no_cache_io() {
    for (name, mix) in [
        ("points", Mix::new(100.0, 0.0, 0.0, 0.0)),
        ("short scans", Mix::new(0.0, 100.0, 0.0, 0.0)),
        ("long scans", Mix::new(0.0, 0.0, 100.0, 0.0)),
        ("mixed", Mix::new(40.0, 30.0, 10.0, 20.0)),
    ] {
        let r = run_static(&no_cache_config(), mix, 20_000).unwrap();
        // Aggregate the model inputs over the full run via the last
        // window's tree shape (the shape is stable after load).
        let mut total_est = 0.0f64;
        let mut total_measured = 0u64;
        for w in &r.windows {
            total_est += io_estimate_of(&w.summary);
            total_measured += w.summary.io_miss;
        }
        let ratio = total_measured as f64 / total_est.max(1.0);
        assert!(
            (0.5..=2.0).contains(&ratio),
            "{name}: measured {total_measured} vs estimated {total_est:.0} (ratio {ratio:.2})"
        );
        // No cache => h_estimate near zero (allow the model's slack).
        assert!(
            r.overall_hit_rate.abs() < 0.5,
            "{name}: no-cache hit rate should be near 0, got {:.3}",
            r.overall_hit_rate
        );
    }
}

/// Point lookups are the exact case: one block read per lookup, FPR ≈ 0 at
/// 10 bits/key, so the estimate should be tight.
#[test]
fn point_lookup_estimate_is_tight() {
    let r = run_static(&no_cache_config(), Mix::new(100.0, 0.0, 0.0, 0.0), 20_000).unwrap();
    let measured: u64 = r.windows.iter().map(|w| w.summary.io_miss).sum();
    let est: f64 = r.windows.iter().map(|w| io_estimate_of(&w.summary)).sum();
    let ratio = measured as f64 / est;
    assert!(
        (0.9..=1.1).contains(&ratio),
        "point estimate should be within 10%: measured {measured}, est {est:.0}"
    );
}

/// A perfect cache (everything fits) should push h_estimate toward 1.
#[test]
fn h_estimate_approaches_one_with_a_huge_cache() {
    let mut cfg = no_cache_config();
    cfg.strategy = Strategy::RangeCache;
    cfg.total_cache_bytes = 64 << 20; // far larger than the dataset
                                      // Small key space so cold (first-touch) misses are exhausted early and
                                      // the tail windows measure pure steady state.
    cfg.workload.num_keys = 4_000;
    let r = run_static(&cfg, Mix::new(100.0, 0.0, 0.0, 0.0), 40_000).unwrap();
    let tail = r.mean_hit_rate(r.windows.len() - 5, r.windows.len());
    assert!(
        tail > 0.95,
        "steady-state hit rate with an oversized cache: {tail:.3}"
    );
    // And the h_estimate helper agrees with the window records.
    let last = r.windows.last().unwrap();
    assert!((h_estimate(&last.summary) - last.hit_rate).abs() < 1e-12);
}
