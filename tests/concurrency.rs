//! Multi-threaded stress: concurrent clients on one engine (paper Section
//! 4.4's sharded design). Each thread owns a disjoint key slice, so it can
//! assert exact read-your-writes coherence under full concurrency, while
//! cross-partition scans exercise shared cache state.

use adcache_suite::core::{CachedDb, EngineConfig, Strategy};
use adcache_suite::lsm::{MemStorage, Options};
use adcache_suite::workload::render_key;
use bytes::Bytes;
use std::sync::Arc;

fn run_stress(strategy: Strategy, threads: usize, rounds: usize) {
    let mut ecfg = EngineConfig::new(strategy, 1 << 20);
    ecfg.block_shards = 4;
    // Shard the range cache across the key space.
    let keys_total = 8_000u64;
    ecfg.range_boundaries = (1..4).map(|i| render_key(i * keys_total / 4)).collect();
    let db = Arc::new(CachedDb::new(Options::small(), Arc::new(MemStorage::new()), ecfg).unwrap());

    // Preload.
    for i in 0..keys_total {
        db.load(render_key(i), Bytes::from(format!("init-{i}")))
            .unwrap();
    }
    db.db().flush().unwrap();

    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let db = db.clone();
            std::thread::spawn(move || {
                let mut state = (t as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
                let mut rand = move || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                };
                for round in 0..rounds {
                    // Write own keys (partition: i % threads == t).
                    let base = (rand() % (keys_total / threads as u64)) * threads as u64 + t as u64;
                    let value = Bytes::from(format!("t{t}-r{round}"));
                    db.put(render_key(base), value.clone()).unwrap();
                    // Read-your-write must hold immediately.
                    let got = db.get(&render_key(base)).unwrap().unwrap();
                    assert_eq!(got, value, "thread {t} round {round}");
                    // Cross-partition scan: sorted, correct lengths, no panic.
                    let from = rand() % keys_total;
                    let scan = db.scan(&render_key(from), 16).unwrap();
                    assert!(scan.len() <= 16);
                    for w in scan.windows(2) {
                        assert!(w[0].0 < w[1].0, "scan out of order");
                    }
                    // Occasional delete + verify.
                    if round % 7 == 0 {
                        db.delete(render_key(base)).unwrap();
                        assert!(db.get(&render_key(base)).unwrap().is_none());
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("stress thread panicked");
    }
}

#[test]
fn adcache_survives_concurrent_clients() {
    run_stress(Strategy::AdCache, 8, 400);
}

#[test]
fn block_cache_survives_concurrent_clients() {
    run_stress(Strategy::RocksDbBlock, 8, 400);
}

#[test]
fn range_cache_survives_concurrent_clients() {
    run_stress(Strategy::RangeCache, 8, 400);
}

#[test]
fn concurrent_retuning_while_serving() {
    // One thread continuously retunes the boundary while others serve.
    let db = Arc::new(
        CachedDb::new(
            Options::small(),
            Arc::new(MemStorage::new()),
            EngineConfig::new(Strategy::AdCache, 1 << 20),
        )
        .unwrap(),
    );
    for i in 0..4_000u64 {
        db.load(render_key(i), Bytes::from(format!("v{i}")))
            .unwrap();
    }
    db.db().flush().unwrap();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let tuner = {
        let db = db.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut flip = false;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                flip = !flip;
                db.apply_decision(&adcache_suite::core::CacheDecision {
                    range_ratio: if flip { 0.9 } else { 0.1 },
                    point_threshold: 0.001,
                    scan_a: 16,
                    scan_b: 0.25,
                });
                std::thread::yield_now();
            }
        })
    };
    let clients: Vec<_> = (0..4)
        .map(|t| {
            let db = db.clone();
            std::thread::spawn(move || {
                for i in 0..2_000u64 {
                    let k = (i * 31 + t * 7) % 4_000;
                    let got = db.get(&render_key(k)).unwrap().unwrap();
                    assert!(got.starts_with(b"v"), "corrupt value under retuning");
                    if i % 5 == 0 {
                        db.scan(&render_key(k), 8).unwrap();
                    }
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client panicked");
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    tuner.join().unwrap();
}
