//! Cross-crate property test: every cache strategy, layered over the full
//! LSM engine, must be *invisible* — any sequence of operations returns
//! exactly what a plain ordered map would return, regardless of cache
//! sizes, admission decisions, evictions, flushes, or compactions.

use adcache_suite::core::{CacheDecision, CachedDb, EngineConfig, Strategy as CacheStrategy};
use adcache_suite::lsm::{MemStorage, Options};
use bytes::Bytes;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Put(u16, u8),
    Delete(u16),
    Get(u16),
    Scan(u16, u8),
    Retune(u8),
}

fn op_strategy() -> impl proptest::strategy::Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u16>(), any::<u8>()).prop_map(|(k, v)| Op::Put(k % 600, v)),
        1 => any::<u16>().prop_map(|k| Op::Delete(k % 600)),
        3 => any::<u16>().prop_map(|k| Op::Get(k % 600)),
        3 => (any::<u16>(), 1u8..48).prop_map(|(k, n)| Op::Scan(k % 600, n)),
        1 => any::<u8>().prop_map(Op::Retune),
    ]
}

fn key(k: u16) -> Bytes {
    Bytes::from(format!("user{k:06}"))
}

fn value(k: u16, v: u8) -> Bytes {
    Bytes::from(format!("value-{k}-{v}"))
}

fn build(strategy: CacheStrategy, cache_bytes: usize) -> CachedDb {
    let mut opts = Options::small();
    opts.memtable_size = 4 << 10; // frequent flushes/compactions
    opts.sstable_size = 4 << 10;
    CachedDb::new(
        opts,
        Arc::new(MemStorage::new()),
        EngineConfig::new(strategy, cache_bytes),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn every_strategy_is_transparent(
        ops in proptest::collection::vec(op_strategy(), 1..250),
        cache_kb in 1usize..64,
    ) {
        let engines: Vec<CachedDb> =
            CacheStrategy::all().iter().map(|s| build(*s, cache_kb << 10)).collect();
        let mut model: BTreeMap<Bytes, Bytes> = BTreeMap::new();

        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    model.insert(key(*k), value(*k, *v));
                    for e in &engines {
                        e.put(key(*k), value(*k, *v)).unwrap();
                    }
                }
                Op::Delete(k) => {
                    model.remove(&key(*k));
                    for e in &engines {
                        e.delete(key(*k)).unwrap();
                    }
                }
                Op::Get(k) => {
                    let want = model.get(&key(*k));
                    for e in &engines {
                        let got = e.get(&key(*k)).unwrap();
                        prop_assert_eq!(
                            got.as_ref(),
                            want,
                            "get({}) diverged under {:?}",
                            k,
                            e.strategy()
                        );
                    }
                }
                Op::Scan(k, n) => {
                    let want: Vec<(Bytes, Bytes)> = model
                        .range(key(*k)..)
                        .take(*n as usize)
                        .map(|(a, b)| (a.clone(), b.clone()))
                        .collect();
                    for e in &engines {
                        let got = e.scan(&key(*k), *n as usize).unwrap();
                        prop_assert_eq!(
                            &got,
                            &want,
                            "scan({}, {}) diverged under {:?}",
                            k,
                            n,
                            e.strategy()
                        );
                    }
                }
                Op::Retune(x) => {
                    // Exercise the dynamic boundary mid-stream (AdCache
                    // applies it; the rest ignore it).
                    let d = CacheDecision {
                        range_ratio: (*x % 5) as f64 / 4.0,
                        point_threshold: (*x % 3) as f64 * 0.001,
                        scan_a: 4 + (*x % 32) as usize,
                        scan_b: (*x % 4) as f64 / 4.0,
                    };
                    for e in &engines {
                        e.apply_decision(&d);
                    }
                }
            }
        }

        // Exhaustive final sweep.
        for k in (0..600u16).step_by(7) {
            let want = model.get(&key(k));
            for e in &engines {
                let got = e.get(&key(k)).unwrap();
                prop_assert_eq!(got.as_ref(), want);
            }
        }
        let want: Vec<(Bytes, Bytes)> =
            model.iter().map(|(a, b)| (a.clone(), b.clone())).collect();
        for e in &engines {
            let got = e.scan(b"", 1000).unwrap();
            prop_assert_eq!(&got, &want, "full scan diverged under {:?}", e.strategy());
        }
    }
}
