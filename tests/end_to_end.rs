//! End-to-end integration tests spanning every crate: file-backed storage,
//! the full tuning loop, multi-client execution, and trace replay.

use adcache_suite::core::{
    run_multiclient, run_static, CachedDb, ControllerConfig, CpuModel, EngineConfig, RunConfig,
    Strategy,
};
use adcache_suite::lsm::{FileStorage, Options, Storage};
use adcache_suite::workload::{render_key, Mix, Operation, Trace, WorkloadConfig, WorkloadGen};
use bytes::Bytes;
use std::sync::Arc;

fn small_workload(keys: u64) -> WorkloadConfig {
    WorkloadConfig {
        num_keys: keys,
        value_size: 64,
        ..Default::default()
    }
}

fn quick_config(strategy: Strategy) -> RunConfig {
    RunConfig {
        strategy,
        total_cache_bytes: 256 << 10,
        db_options: Options::small(),
        workload: small_workload(5_000),
        controller: ControllerConfig {
            window: 250,
            hidden: 16,
            ..Default::default()
        },
        cpu: CpuModel::default(),
        shards: 1,
        pretrained_agent: None,
        pinned_decision: None,
        boundary_hysteresis: 0.02,
        serve_partial_range: true,
        compaction_prefetch_blocks: 0,
        trace_dir: None,
        continue_on_error: false,
    }
}

/// The whole stack runs against real files on disk, not just MemStorage.
#[test]
fn adcache_over_file_storage() {
    let dir = std::env::temp_dir().join(format!("adcache-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let storage = Arc::new(FileStorage::open(&dir).unwrap());
    let db = CachedDb::new(
        Options::small(),
        storage.clone(),
        EngineConfig::new(Strategy::AdCache, 256 << 10),
    )
    .unwrap();
    for i in 0..5_000u64 {
        db.put(render_key(i), Bytes::from(format!("value-{i}")))
            .unwrap();
    }
    db.db().flush().unwrap();
    while db.db().maybe_compact_once().unwrap() {}
    assert!(storage.table_count() > 0, "tables must exist on disk");

    for i in (0..5_000).step_by(97) {
        let got = db.get(&render_key(i)).unwrap().unwrap();
        assert_eq!(got.as_ref(), format!("value-{i}").as_bytes());
    }
    let scan = db.scan(&render_key(1000), 32).unwrap();
    assert_eq!(scan.len(), 32);
    assert_eq!(scan[0].0, render_key(1000));
    // Repeat scan comes from cache: zero extra device reads.
    let reads = db.db().query_block_reads();
    let again = db.scan(&render_key(1000), 32).unwrap();
    assert_eq!(again, scan);
    assert_eq!(db.db().query_block_reads(), reads);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Cache warming must show up as rising hit rate and falling SST reads.
#[test]
fn hit_rate_improves_as_cache_warms() {
    for strategy in [
        Strategy::RocksDbBlock,
        Strategy::RangeCache,
        Strategy::AdCache,
    ] {
        let cfg = quick_config(strategy);
        let r = run_static(&cfg, Mix::new(80.0, 20.0, 0.0, 0.0), 8_000).unwrap();
        let first = r.mean_hit_rate(0, 4);
        let last = r.mean_hit_rate(r.windows.len() - 4, r.windows.len());
        assert!(
            last > first,
            "{strategy:?}: warmed hit rate {last:.3} should beat cold {first:.3}"
        );
    }
}

/// The AdCache controller must outperform a deliberately bad pinned
/// configuration on the same workload.
#[test]
fn controller_beats_pathological_pin() {
    // Pure point lookups at a small cache fraction (~6% of the dataset):
    // a block-only split wastes memory on cold co-resident keys.
    let mix = Mix::new(100.0, 0.0, 0.0, 0.0);
    let mut bad = quick_config(Strategy::AdCache);
    bad.total_cache_bytes = 32 << 10;
    bad.pinned_decision = Some(adcache_suite::core::CacheDecision {
        range_ratio: 0.0,
        point_threshold: 0.009,
        scan_a: 64,
        scan_b: 1.0,
    });
    let bad_r = run_static(&bad, mix, 10_000).unwrap();

    let mut good = quick_config(Strategy::AdCache);
    good.total_cache_bytes = 32 << 10;
    good.pinned_decision = Some(adcache_suite::core::CacheDecision {
        range_ratio: 1.0,
        point_threshold: 0.0,
        scan_a: 16,
        scan_b: 0.25,
    });
    let good_r = run_static(&good, mix, 10_000).unwrap();
    assert!(
        good_r.overall_hit_rate > bad_r.overall_hit_rate,
        "sanity: the good pin must beat the bad pin ({:.3} vs {:.3})",
        good_r.overall_hit_rate,
        bad_r.overall_hit_rate
    );
}

/// Multi-client execution completes, produces positive throughput, and the
/// shared engine stays consistent under concurrent mixed operations.
#[test]
fn multiclient_consistency() {
    let mut cfg = quick_config(Strategy::AdCache);
    cfg.shards = 4;
    let qps = run_multiclient(&cfg, Mix::new(50.0, 20.0, 5.0, 25.0), 4, 2_000).unwrap();
    assert_eq!(qps.len(), 4);
    assert!(qps.iter().all(|&q| q > 0.0));
}

/// Recording a trace and replaying it against two engines produces
/// identical outputs (the mechanism every experiment relies on for
/// cross-strategy comparability).
#[test]
fn trace_replay_is_deterministic() {
    let mut gen = WorkloadGen::new(small_workload(2_000));
    let mix = Mix::new(40.0, 30.0, 10.0, 20.0);
    let mut trace = Trace::new();
    for _ in 0..2_000 {
        trace.record(gen.next_op(&mix));
    }
    let path = std::env::temp_dir().join(format!("adcache-e2e-trace-{}.jsonl", std::process::id()));
    trace.save(&path).unwrap();
    let loaded = Trace::load(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    assert_eq!(loaded, trace);

    let run = |strategy: Strategy| -> Vec<Option<Bytes>> {
        let db = CachedDb::new(
            Options::small(),
            Arc::new(adcache_suite::lsm::MemStorage::new()),
            EngineConfig::new(strategy, 64 << 10),
        )
        .unwrap();
        let mut outputs = Vec::new();
        for op in loaded.iter() {
            match op {
                Operation::Get { key } => outputs.push(db.get(key).unwrap()),
                Operation::Scan { from, len } => {
                    let r = db.scan(from, *len).unwrap();
                    outputs.push(r.last().map(|(_, v)| v.clone()));
                }
                Operation::Put { key, value } => db.put(key.clone(), value.clone()).unwrap(),
                Operation::Delete { key } => db.delete(key.clone()).unwrap(),
            }
        }
        outputs
    };
    let a = run(Strategy::RocksDbBlock);
    let b = run(Strategy::AdCache);
    assert_eq!(a, b, "replay outputs must be strategy-independent");
}

/// Storage faults surface as errors through the full stack and the engine
/// keeps serving once the device quiets down.
#[test]
fn injected_faults_do_not_poison_the_engine() {
    use adcache_suite::lsm::{FaultPlan, FaultStorage, MemStorage};
    let storage = Arc::new(FaultStorage::new(
        Arc::new(MemStorage::new()),
        0xe2e,
        FaultPlan::none(),
    ));
    let mut opts = Options::small();
    opts.read_retries = 0;
    let db = CachedDb::new(
        opts,
        storage.clone(),
        EngineConfig::new(Strategy::AdCache, 32 << 10),
    )
    .unwrap();
    for i in 0..3_000u64 {
        db.put(render_key(i), Bytes::from(format!("v{i}"))).unwrap();
    }
    db.db().flush().unwrap();
    storage.set_plan(FaultPlan {
        read_transient: 0.2,
        ..FaultPlan::none()
    });
    let mut errors = 0;
    for i in 0..3_000u64 {
        if db.get(&render_key(i)).is_err() {
            errors += 1;
        }
    }
    assert!(errors > 0, "the fault plan should produce read errors");
    // Fully functional once the device recovers.
    storage.set_active(false);
    for i in (0..3_000).step_by(131) {
        assert!(db.get(&render_key(i)).unwrap().is_some());
    }
}
