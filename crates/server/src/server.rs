//! The TCP serving front-end.
//!
//! One shared accept loop hands sockets to a pool of worker threads
//! (default: one per core). Each worker owns its connections outright —
//! no per-request locking, no cross-thread handoff on the hot path — and
//! runs a read → parse → execute → write cycle over nonblocking sockets:
//!
//! - **Pipelining**: a single `read` syscall may yield many frames; all of
//!   them are decoded and executed before the next read, and responses are
//!   written back strictly in request order.
//! - **Backpressure**: a connection whose response buffer exceeds
//!   [`ServerConfig::max_write_buffer`] stops being *read* until the
//!   client drains it — a slow reader throttles itself instead of growing
//!   server memory.
//! - **Limits**: past [`ServerConfig::max_conns`] concurrent connections
//!   the accept loop answers with one `Err` frame and closes; connections
//!   idle longer than [`ServerConfig::idle_timeout`] are reaped.
//! - **Graceful shutdown**: on [`ServerHandle::shutdown`] (or a `Shutdown`
//!   frame from any client) the listener stops accepting, every worker
//!   executes the requests it has already buffered, flushes the replies,
//!   closes its connections, and the engine's memtable is flushed before
//!   the report is returned — no accepted request is dropped.
//!
//! Everything is instrumented through the engine's [`Obs`] handle:
//! `ConnAccepted` / `ConnClosed` / `ServerOverload` journal events, a
//! sampled `RequestServed` event, and `server.*` counters, gauges, and
//! per-opcode latency histograms, so `adcache trace` can summarize a
//! serving run the same way it summarizes an in-process one.

use crate::protocol::{
    self, decode_request, encode_response, is_fatal, MetricsFormat, Opcode, Progress, Request,
    Response,
};
use adcache_core::CachedDb;
use adcache_lsm::{lock_probe, reset_lock_probe};
use adcache_obs::{
    ConnCloseCause, Counter, Event, Gauge, HistogramHandle, Obs, Stage, StageSet, StageTimer,
};
use serde_json::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the serving layer is sized and bounded.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:4400` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads; 0 means one per available core.
    pub workers: usize,
    /// Concurrent-connection ceiling; excess connects get an `Err` frame.
    pub max_conns: usize,
    /// Largest acceptable frame; a larger declared length closes the
    /// connection (framing can no longer be trusted).
    pub max_frame: usize,
    /// Connections idle longer than this are closed.
    pub idle_timeout: Duration,
    /// Per-connection response-buffer cap; beyond it the connection is
    /// not read until the client drains replies (backpressure).
    pub max_write_buffer: usize,
    /// Emit one `RequestServed` journal event per this many requests
    /// (0 disables sampling entirely).
    pub sample_every: u64,
    /// Requests whose total stage time meets this threshold journal a
    /// `SlowRequest` event with the full stage breakdown (0 disables).
    pub slow_request_ns: u64,
    /// Per-connection admission quota in sustained tokens per second,
    /// where one token ≈ one point read (0 disables). A token bucket per
    /// connection: GET costs one token, DELETE costs four and PUT
    /// `4 + value_len/1024` (write amplification, scaled by the payload),
    /// a scan costs `1 + limit/16` (it does proportionally
    /// more engine work), and control-plane opcodes (PING/STATS/METRICS/
    /// SHUTDOWN) are free so a throttled client — or an operator during an
    /// attack — can always observe and drain the server. Over-quota
    /// requests are answered with an `Err` reply and never reach the
    /// engine; the connection survives.
    pub quota_ops: u64,
    /// Token-bucket capacity (burst allowance); 0 sizes it to one second
    /// of `quota_ops`.
    pub quota_burst: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:4400".to_string(),
            workers: 0,
            max_conns: 1024,
            max_frame: protocol::DEFAULT_MAX_FRAME,
            idle_timeout: Duration::from_secs(60),
            max_write_buffer: 4 << 20,
            sample_every: 64,
            slow_request_ns: 10_000_000,
            quota_ops: 0,
            quota_burst: 0,
        }
    }
}

impl ServerConfig {
    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// What a finished serving run did, returned by [`ServerHandle::shutdown`]
/// and [`ServerHandle::wait`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeReport {
    /// Requests executed (including ones answered with `Err`).
    pub requests: u64,
    /// Frames that failed to decode (unknown opcode, malformed body,
    /// oversized length).
    pub protocol_errors: u64,
    /// Connections accepted over the run.
    pub conns_accepted: u64,
    /// Connections closed over the run (equals accepted after drain).
    pub conns_closed: u64,
    /// Connections refused at the `max_conns` ceiling.
    pub conns_refused: u64,
    /// Requests shed by per-connection admission quotas (answered with an
    /// `Err` reply without touching the engine).
    pub quota_throttled: u64,
    /// Bytes read off sockets.
    pub bytes_in: u64,
    /// Bytes written to sockets.
    pub bytes_out: u64,
}

/// Pre-resolved metric handles (inert when the engine has no `Obs`).
struct Metrics {
    requests: Counter,
    protocol_errors: Counter,
    quota_throttled: Counter,
    bytes_in: Counter,
    bytes_out: Counter,
    conns_active: Gauge,
    inflight: Gauge,
    /// Indexed by opcode discriminant.
    latency: [HistogramHandle; 8],
    /// Per-stage request-lifetime histograms (`server.stage.*`).
    stages: StageSet,
}

impl Metrics {
    fn new(obs: &Obs) -> Self {
        let lat = |op: Opcode| obs.histogram(&format!("server.latency.{}", op.label()));
        Metrics {
            requests: obs.counter("server.requests"),
            protocol_errors: obs.counter("server.protocol_errors"),
            quota_throttled: obs.counter("server.quota.throttled"),
            bytes_in: obs.counter("server.bytes_in"),
            bytes_out: obs.counter("server.bytes_out"),
            conns_active: obs.gauge("server.conns.active"),
            inflight: obs.gauge("server.inflight"),
            latency: [
                lat(Opcode::Ping),
                lat(Opcode::Get),
                lat(Opcode::Put),
                lat(Opcode::Delete),
                lat(Opcode::Scan),
                lat(Opcode::Stats),
                lat(Opcode::Shutdown),
                lat(Opcode::Metrics),
            ],
            stages: StageSet::new(obs, "server.stage"),
        }
    }
}

/// State shared by the accept loop, every worker, and the handle.
struct Shared {
    db: Arc<CachedDb>,
    cfg: ServerConfig,
    obs: Obs,
    metrics: Metrics,
    /// Cached `obs.is_enabled()`: gates every `Instant::now()` the stage
    /// timers would otherwise cost, so telemetry-off runs stay at the old
    /// per-request overhead.
    telemetry: bool,
    shutdown: AtomicBool,
    active: AtomicU64,
    conn_seq: AtomicU64,
    requests: AtomicU64,
    protocol_errors: AtomicU64,
    conns_accepted: AtomicU64,
    conns_closed: AtomicU64,
    conns_refused: AtomicU64,
    quota_throttled: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
}

impl Shared {
    fn report(&self) -> ServeReport {
        ServeReport {
            requests: self.requests.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            conns_accepted: self.conns_accepted.load(Ordering::Relaxed),
            conns_closed: self.conns_closed.load(Ordering::Relaxed),
            conns_refused: self.conns_refused.load(Ordering::Relaxed),
            quota_throttled: self.quota_throttled.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
        }
    }
}

/// One worker-owned connection.
struct Conn {
    id: u64,
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    /// Already-written prefix of `wbuf` (compacted lazily).
    wpos: usize,
    last_active: Instant,
    /// When the most recent socket read delivered bytes; the baseline for
    /// each buffered frame's queue-wait stage.
    read_at: Instant,
    /// Duration of that read syscall (the recv stage, shared by every
    /// frame the read delivered). 0 with telemetry off.
    last_read_ns: u64,
    requests: u64,
    bytes_in: u64,
    bytes_out: u64,
    /// Admission-quota token bucket (filled lazily from `tokens_at`).
    tokens: f64,
    /// Last bucket refill instant.
    tokens_at: Instant,
    /// Requests throttled on this connection.
    throttled: u64,
    /// Set once the connection should close after its replies flush.
    closing: Option<ConnCloseCause>,
}

impl Conn {
    fn pending_write(&self) -> usize {
        self.wbuf.len() - self.wpos
    }
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] aborts the threads without draining.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    threads: Vec<std::thread::JoinHandle<()>>,
}

/// Alias kept for readability at call sites: `Server::start` returns the
/// same type it is named after, acting as the run's handle.
pub type ServerHandle = Server;

impl Server {
    /// Binds, spawns the accept loop and worker pool, and returns.
    pub fn start(db: Arc<CachedDb>, cfg: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let obs = db.obs();
        let workers = cfg.effective_workers();
        let shared = Arc::new(Shared {
            metrics: Metrics::new(&obs),
            telemetry: obs.is_enabled(),
            obs,
            db,
            cfg,
            shutdown: AtomicBool::new(false),
            active: AtomicU64::new(0),
            conn_seq: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            conns_accepted: AtomicU64::new(0),
            conns_closed: AtomicU64::new(0),
            conns_refused: AtomicU64::new(0),
            quota_throttled: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
        });

        let mut threads = Vec::with_capacity(workers + 1);
        let mut senders = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = mpsc::channel::<TcpStream>();
            senders.push(tx);
            let shared = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("adcache-worker-{w}"))
                    .spawn(move || worker_loop(&shared, &rx))?,
            );
        }
        {
            let shared = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("adcache-accept".to_string())
                    .spawn(move || accept_loop(&shared, &listener, &senders))?,
            );
        }
        Ok(Server {
            shared,
            local_addr,
            threads,
        })
    }

    /// The bound address (useful with `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Requests graceful shutdown and waits for the drain to finish:
    /// buffered requests execute, replies flush, connections close, and
    /// the engine's memtable is flushed to the LSM before returning.
    pub fn shutdown(self) -> ServeReport {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.wait()
    }

    /// Waits for the server to stop on its own (a client's `Shutdown`
    /// frame) and returns the drain report.
    pub fn wait(self) -> ServeReport {
        for t in self.threads {
            let _ = t.join();
        }
        // Everything acknowledged over the wire must survive a restart.
        let _ = self.shared.db.db().flush();
        self.shared.report()
    }

    /// Whether shutdown has been requested (test hook).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

fn accept_loop(shared: &Shared, listener: &TcpListener, senders: &[mpsc::Sender<TcpStream>]) {
    let mut next = 0usize;
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let active = shared.active.load(Ordering::Relaxed);
                if active >= shared.cfg.max_conns as u64 {
                    refuse(shared, stream, active);
                    continue;
                }
                shared.active.fetch_add(1, Ordering::Relaxed);
                shared
                    .metrics
                    .conns_active
                    .set(shared.active.load(Ordering::Relaxed) as i64);
                // Round-robin dispatch; workers balance naturally because
                // each owns an independent slice of connections.
                if senders[next % senders.len()].send(stream).is_err() {
                    break; // worker gone — shutting down
                }
                next += 1;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
    // Dropping the senders lets each worker observe disconnection and
    // finish its drain.
}

/// Over the connection ceiling: answer with one `Err` frame, then close.
fn refuse(shared: &Shared, mut stream: TcpStream, active: u64) {
    shared.conns_refused.fetch_add(1, Ordering::Relaxed);
    let limit = shared.cfg.max_conns as u64;
    shared.obs.emit(|| Event::ServerOverload { active, limit });
    let mut frame = Vec::new();
    encode_response(
        &mut frame,
        0,
        &Response::Error("server at connection limit".to_string()),
    );
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    let _ = stream.write_all(&frame);
}

fn worker_loop(shared: &Shared, incoming: &mpsc::Receiver<TcpStream>) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut scratch = vec![0u8; 64 << 10];
    let mut accept_closed = false;
    loop {
        let draining = shared.shutdown.load(Ordering::SeqCst);
        let mut progressed = false;

        // Adopt newly accepted sockets.
        loop {
            match incoming.try_recv() {
                Ok(stream) => {
                    if let Some(conn) = adopt(shared, stream) {
                        conns.push(conn);
                        progressed = true;
                    }
                }
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => {
                    accept_closed = true;
                    break;
                }
            }
        }

        let mut i = 0;
        while i < conns.len() {
            let conn = &mut conns[i];
            progressed |= flush_writes(shared, conn);
            if conn.closing.is_none() && !draining {
                progressed |= service_reads(shared, conn, &mut scratch);
                if conn.closing.is_none() && conn.last_active.elapsed() >= shared.cfg.idle_timeout {
                    conn.closing = Some(ConnCloseCause::IdleTimeout);
                }
            } else if conn.closing.is_none() && draining {
                // Drain: execute what is already buffered, then close.
                progressed |= service_reads(shared, conn, &mut scratch);
                drain_buffered(shared, conn);
                conn.closing = Some(ConnCloseCause::Shutdown);
            }
            let done = match conn.closing {
                Some(_) => conn.pending_write() == 0 || draining_flush(conn),
                None => false,
            };
            if done {
                let conn = conns.swap_remove(i);
                finish(shared, conn);
                progressed = true;
            } else {
                i += 1;
            }
        }

        if draining && conns.is_empty() && accept_closed {
            return;
        }
        if !progressed {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

fn adopt(shared: &Shared, stream: TcpStream) -> Option<Conn> {
    if stream.set_nonblocking(true).is_err() {
        shared.active.fetch_sub(1, Ordering::Relaxed);
        return None;
    }
    let _ = stream.set_nodelay(true);
    let id = shared.conn_seq.fetch_add(1, Ordering::Relaxed);
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "unknown".to_string());
    shared.conns_accepted.fetch_add(1, Ordering::Relaxed);
    shared.obs.emit(|| Event::ConnAccepted {
        conn: id,
        peer: peer.clone(),
    });
    Some(Conn {
        id,
        stream,
        rbuf: Vec::new(),
        wbuf: Vec::new(),
        wpos: 0,
        last_active: Instant::now(),
        read_at: Instant::now(),
        last_read_ns: 0,
        requests: 0,
        bytes_in: 0,
        bytes_out: 0,
        // A fresh connection starts with a full burst allowance.
        tokens: quota_burst(&shared.cfg),
        tokens_at: Instant::now(),
        throttled: 0,
        closing: None,
    })
}

/// Writes as much buffered response data as the socket accepts.
fn flush_writes(shared: &Shared, conn: &mut Conn) -> bool {
    let mut progressed = false;
    while conn.wpos < conn.wbuf.len() {
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => {
                conn.closing = Some(ConnCloseCause::IoError);
                break;
            }
            Ok(n) => {
                conn.wpos += n;
                conn.bytes_out += n as u64;
                shared.bytes_out.fetch_add(n as u64, Ordering::Relaxed);
                shared.metrics.bytes_out.add(n as u64);
                conn.last_active = Instant::now();
                progressed = true;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.closing = Some(ConnCloseCause::IoError);
                break;
            }
        }
    }
    if conn.wpos == conn.wbuf.len() {
        conn.wbuf.clear();
        conn.wpos = 0;
    } else if conn.wpos > 1 << 16 {
        conn.wbuf.drain(..conn.wpos);
        conn.wpos = 0;
    }
    progressed
}

/// Final blocking flush of a draining connection's replies. Returns true
/// once the connection can be dropped.
fn draining_flush(conn: &mut Conn) -> bool {
    let _ = conn.stream.set_nonblocking(false);
    let _ = conn.stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = conn.stream.write_all(&conn.wbuf[conn.wpos..]);
    let _ = conn.stream.flush();
    conn.wpos = conn.wbuf.len();
    true
}

/// Reads whatever is available and executes every complete frame.
fn service_reads(shared: &Shared, conn: &mut Conn, scratch: &mut [u8]) -> bool {
    // Backpressure: stop reading while this client owes us a drain.
    if conn.pending_write() >= shared.cfg.max_write_buffer {
        return false;
    }
    let mut progressed = false;
    let read_start = if shared.telemetry {
        Some(Instant::now())
    } else {
        None
    };
    match conn.stream.read(scratch) {
        Ok(0) => {
            // Client closed its half; execute anything already buffered.
            drain_buffered(shared, conn);
            if conn.closing.is_none() {
                conn.closing = Some(ConnCloseCause::ClientClosed);
            }
            return true;
        }
        Ok(n) => {
            conn.rbuf.extend_from_slice(&scratch[..n]);
            conn.bytes_in += n as u64;
            shared.bytes_in.fetch_add(n as u64, Ordering::Relaxed);
            shared.metrics.bytes_in.add(n as u64);
            conn.last_active = Instant::now();
            if let Some(t0) = read_start {
                conn.last_read_ns = t0.elapsed().as_nanos() as u64;
                conn.read_at = Instant::now();
            }
            progressed = true;
        }
        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
        Err(_) => {
            conn.closing = Some(ConnCloseCause::IoError);
            return true;
        }
    }
    progressed |= drain_buffered(shared, conn);
    progressed
}

/// Decodes and executes every complete frame already buffered on `conn`,
/// appending responses in request order.
fn drain_buffered(shared: &Shared, conn: &mut Conn) -> bool {
    let mut at = 0usize;
    let mut served = 0u64;
    loop {
        let parse_start = if shared.telemetry {
            Some(Instant::now())
        } else {
            None
        };
        match decode_request(&conn.rbuf[at..], shared.cfg.max_frame) {
            Progress::Incomplete => break,
            Progress::Fatal(err) => {
                shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                shared.metrics.protocol_errors.inc();
                encode_response(&mut conn.wbuf, 0, &Response::Error(err.to_string()));
                debug_assert!(is_fatal(&err));
                conn.closing = Some(ConnCloseCause::ProtocolError);
                at = conn.rbuf.len(); // the rest of the stream is garbage
                break;
            }
            Progress::Frame(Err((id, err)), consumed) => {
                shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                shared.metrics.protocol_errors.inc();
                encode_response(&mut conn.wbuf, id, &Response::Error(err.to_string()));
                at += consumed;
                served += 1;
            }
            Progress::Frame(Ok((id, req)), consumed) => {
                at += consumed;
                served += 1;
                let parse_ns = parse_start.map_or(0, |t0| t0.elapsed().as_nanos() as u64);
                execute(shared, conn, id, &req, parse_ns);
            }
        }
    }
    if at > 0 {
        conn.rbuf.drain(..at);
    }
    served > 0
}

fn execute(shared: &Shared, conn: &mut Conn, id: u64, req: &Request, parse_ns: u64) {
    let op = req.opcode();
    shared.metrics.inflight.set(1);
    // Queue wait: time since the socket read that delivered this frame's
    // bytes. Head-of-line semantics — later frames in one batch charge the
    // service time of the frames ahead of them to queue_wait.
    let queue_ns = if shared.telemetry {
        conn.read_at.elapsed().as_nanos() as u64
    } else {
        0
    };
    if shared.telemetry {
        reset_lock_probe();
    }
    let start = Instant::now();
    let resp = if let Some(denied) = quota_check(shared, conn, req) {
        denied
    } else {
        match req {
            Request::Ping => Response::Ok,
            Request::Get { key } => match shared.db.get(key) {
                Ok(Some(v)) => Response::Value(v),
                Ok(None) => Response::NotFound,
                Err(e) => Response::Error(e.to_string()),
            },
            Request::Put { key, value } => match shared.db.put(key.clone(), value.clone()) {
                Ok(()) => Response::Ok,
                Err(e) => Response::Error(e.to_string()),
            },
            Request::Delete { key } => match shared.db.delete(key.clone()) {
                Ok(()) => Response::Ok,
                Err(e) => Response::Error(e.to_string()),
            },
            Request::Scan { from, limit } => match shared.db.scan(from, *limit as usize) {
                Ok(entries) => Response::Entries(entries),
                Err(e) => Response::Error(e.to_string()),
            },
            Request::Stats => Response::Stats(stats_json(shared)),
            Request::Shutdown => {
                shared.shutdown.store(true, Ordering::SeqCst);
                Response::Ok
            }
            Request::Metrics { format } => match shared.obs.registry() {
                Some(reg) => Response::Metrics(match format {
                    MetricsFormat::Json => reg.snapshot_json(),
                    MetricsFormat::Prometheus => reg.prometheus_text(),
                }),
                None => Response::Error("telemetry disabled".into()),
            },
        }
    };
    let latency_ns = start.elapsed().as_nanos() as u64;
    shared.metrics.inflight.set(0);
    shared.metrics.latency[op as usize].record(latency_ns);
    shared.metrics.requests.inc();
    let total = shared.requests.fetch_add(1, Ordering::Relaxed) + 1;
    conn.requests += 1;
    let sample = shared.cfg.sample_every;
    if sample > 0 && total.is_multiple_of(sample) {
        let status = resp.status();
        shared.obs.emit(|| Event::RequestServed {
            conn: conn.id,
            opcode: op.label().to_string(),
            status: status.label().to_string(),
            latency_ns,
        });
    }
    if shared.telemetry {
        // Engine-lock wait and hold observed by this thread during the db
        // call; everything else inside the call is the cache layer (and
        // serialization, for Stats/Metrics).
        let (lock_wait_ns, lock_hold_ns) = lock_probe();
        let cache_ns = latency_ns.saturating_sub(lock_wait_ns + lock_hold_ns);
        let reply_start = Instant::now();
        encode_response(&mut conn.wbuf, id, &resp);
        let reply_ns = reply_start.elapsed().as_nanos() as u64;

        let mut st = StageTimer::new();
        st.set(Stage::Recv, conn.last_read_ns);
        st.set(Stage::Parse, parse_ns);
        st.set(Stage::QueueWait, queue_ns);
        st.set(Stage::LockWait, lock_wait_ns);
        st.set(Stage::EngineExec, lock_hold_ns);
        st.set(Stage::CacheLayer, cache_ns);
        st.set(Stage::ReplyFlush, reply_ns);
        shared.metrics.stages.record(&st);

        let slow = shared.cfg.slow_request_ns;
        if slow > 0 && st.total() >= slow {
            let status = resp.status();
            shared.obs.emit(|| Event::SlowRequest {
                conn: conn.id,
                opcode: op.label().to_string(),
                status: status.label().to_string(),
                total_ns: st.total(),
                recv_ns: conn.last_read_ns,
                parse_ns,
                queue_ns,
                lock_wait_ns,
                engine_ns: lock_hold_ns,
                cache_ns,
                reply_ns,
                key: slow_request_key(req),
            });
        }
    } else {
        encode_response(&mut conn.wbuf, id, &resp);
    }
}

/// The effective token-bucket capacity for `cfg` (one second of sustained
/// rate unless overridden).
fn quota_burst(cfg: &ServerConfig) -> f64 {
    if cfg.quota_burst > 0 {
        cfg.quota_burst as f64
    } else {
        cfg.quota_ops.max(1) as f64
    }
}

/// Per-connection admission quota: refills `conn`'s token bucket and takes
/// this request's cost from it. Returns the `Err` reply to send instead of
/// executing when the bucket runs dry. Control-plane opcodes are exempt —
/// observation and shutdown must stay possible during an attack.
fn quota_check(shared: &Shared, conn: &mut Conn, req: &Request) -> Option<Response> {
    let rate = shared.cfg.quota_ops;
    if rate == 0 {
        return None;
    }
    let cost = match req {
        Request::Get { .. } => 1.0,
        // Writes amplify: every payload byte is carried again by the WAL,
        // the flush, and each compaction level it passes through, and a
        // delete/overwrite additionally evicts cached state. Pricing a
        // put at one token per 128 bytes (≈ the multi-level write
        // amplification of a point read's work) lets a bulk-payload
        // attacker exhaust its budget in a few requests while a legit
        // client's small writes stay near the flat floor.
        Request::Put { value, .. } => 4.0 + value.len() as f64 / 128.0,
        Request::Delete { .. } => 4.0,
        // A scan does work proportional to its limit — hundreds of entry
        // visits per request, each comparable to a point lookup. Charging
        // near one token per entry keeps a flood of wide scans from
        // hiding three orders of magnitude of work behind one token,
        // while a legit client's short scans stay cheap.
        Request::Scan { limit, .. } => 1.0 + *limit as f64 / 2.0,
        _ => return None,
    };
    let now = Instant::now();
    let dt = now.duration_since(conn.tokens_at).as_secs_f64();
    conn.tokens_at = now;
    conn.tokens = (conn.tokens + dt * rate as f64).min(quota_burst(&shared.cfg));
    if conn.tokens >= cost {
        conn.tokens -= cost;
        return None;
    }
    conn.throttled += 1;
    shared.quota_throttled.fetch_add(1, Ordering::Relaxed);
    shared.metrics.quota_throttled.inc();
    // Journal the first throttle per connection (the defense activated)
    // and then every 1024th, so a sustained attack cannot flood the
    // journal either.
    if conn.throttled == 1 || conn.throttled.is_multiple_of(1024) {
        let throttled = conn.throttled;
        let opcode = req.opcode().label().to_string();
        shared.obs.emit(|| Event::QuotaThrottled {
            conn: conn.id,
            opcode,
            throttled,
        });
    }
    Some(Response::Error(format!(
        "quota exceeded: connection limited to {rate} tokens/s"
    )))
}

/// A short human-readable key label for `SlowRequest` events: the
/// (truncated, lossy-decoded) key for point ops, `from..+limit` for scans,
/// empty for keyless opcodes.
fn slow_request_key(req: &Request) -> String {
    fn trunc(b: &[u8]) -> String {
        let s = String::from_utf8_lossy(&b[..b.len().min(32)]).into_owned();
        if b.len() > 32 {
            format!("{s}…")
        } else {
            s
        }
    }
    match req {
        Request::Get { key } | Request::Delete { key } => trunc(key),
        Request::Put { key, .. } => trunc(key),
        Request::Scan { from, limit } => format!("{}..+{}", trunc(from), limit),
        _ => String::new(),
    }
}

/// The `Stats` payload: the engine's report wrapped with serving-layer
/// totals, as one JSON object.
fn stats_json(shared: &Shared) -> String {
    let engine = serde_json::to_value(&shared.db.stats_report())
        .unwrap_or_else(|_| Value::Object(Vec::new()));
    let server = Value::Object(vec![
        (
            "requests".to_string(),
            Value::from(shared.requests.load(Ordering::Relaxed)),
        ),
        (
            "protocol_errors".to_string(),
            Value::from(shared.protocol_errors.load(Ordering::Relaxed)),
        ),
        (
            "conns_active".to_string(),
            Value::from(shared.active.load(Ordering::Relaxed)),
        ),
        (
            "conns_accepted".to_string(),
            Value::from(shared.conns_accepted.load(Ordering::Relaxed)),
        ),
        (
            "conns_refused".to_string(),
            Value::from(shared.conns_refused.load(Ordering::Relaxed)),
        ),
        (
            "quota_throttled".to_string(),
            Value::from(shared.quota_throttled.load(Ordering::Relaxed)),
        ),
        (
            "bytes_in".to_string(),
            Value::from(shared.bytes_in.load(Ordering::Relaxed)),
        ),
        (
            "bytes_out".to_string(),
            Value::from(shared.bytes_out.load(Ordering::Relaxed)),
        ),
    ]);
    let root = Value::Object(vec![
        ("engine".to_string(), engine),
        ("server".to_string(), server),
    ]);
    serde_json::to_string(&root).unwrap_or_else(|_| "{}".to_string())
}

fn finish(shared: &Shared, conn: Conn) {
    let cause = conn.closing.unwrap_or(ConnCloseCause::ClientClosed);
    shared.conns_closed.fetch_add(1, Ordering::Relaxed);
    shared.active.fetch_sub(1, Ordering::Relaxed);
    shared
        .metrics
        .conns_active
        .set(shared.active.load(Ordering::Relaxed) as i64);
    shared.obs.emit(|| Event::ConnClosed {
        conn: conn.id,
        cause,
        requests: conn.requests,
        bytes_in: conn.bytes_in,
        bytes_out: conn.bytes_out,
    });
    // Drop closes the socket.
}
