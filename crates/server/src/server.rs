//! The TCP serving front-end.
//!
//! One shared accept loop hands sockets to a pool of worker threads
//! (default: one per core). Each worker owns its connections outright —
//! no per-request locking, no cross-thread handoff on the hot path — and
//! runs a read → parse → execute → write cycle over nonblocking sockets:
//!
//! - **Pipelining**: a single `read` syscall may yield many frames; all of
//!   them are decoded and executed before the next read, and responses are
//!   written back strictly in request order.
//! - **Backpressure**: a connection whose response buffer exceeds
//!   [`ServerConfig::max_write_buffer`] stops being *read* until the
//!   client drains it — a slow reader throttles itself instead of growing
//!   server memory.
//! - **Limits**: past [`ServerConfig::max_conns`] concurrent connections
//!   the accept loop answers with one `Err` frame and closes; connections
//!   idle longer than [`ServerConfig::idle_timeout`] are reaped.
//! - **Graceful shutdown**: on [`ServerHandle::shutdown`] (or a `Shutdown`
//!   frame from any client) the listener stops accepting, every worker
//!   executes the requests it has already buffered, flushes the replies,
//!   closes its connections, and the engine's memtable is flushed before
//!   the report is returned — no accepted request is dropped.
//!
//! Everything is instrumented through the engine's [`Obs`] handle:
//! `ConnAccepted` / `ConnClosed` / `ServerOverload` journal events, a
//! sampled `RequestServed` event, and `server.*` counters, gauges, and
//! per-opcode latency histograms, so `adcache trace` can summarize a
//! serving run the same way it summarizes an in-process one.

use crate::protocol::{
    self, decode_request, encode_response, is_fatal, MetricsFormat, Opcode, Progress, Request,
    Response,
};
use adcache_core::{CachedDb, TenantId, DEFAULT_TENANT};
use adcache_lsm::{lock_probe, reset_lock_probe};
use adcache_obs::{
    ConnCloseCause, Counter, Event, Gauge, HistogramHandle, Obs, Stage, StageSet, StageTimer,
};
use serde_json::Value;
use std::collections::{BTreeMap, VecDeque};
use std::io::{IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::{mpsc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// How the serving layer is sized and bounded.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:4400` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads; 0 means one per available core.
    pub workers: usize,
    /// Concurrent-connection ceiling; excess connects get an `Err` frame.
    pub max_conns: usize,
    /// Largest acceptable frame; a larger declared length closes the
    /// connection (framing can no longer be trusted).
    pub max_frame: usize,
    /// Connections idle longer than this are closed.
    pub idle_timeout: Duration,
    /// Per-connection response-buffer cap; beyond it the connection is
    /// not read until the client drains replies (backpressure).
    pub max_write_buffer: usize,
    /// Emit one `RequestServed` journal event per this many requests
    /// (0 disables sampling entirely).
    pub sample_every: u64,
    /// Requests whose total stage time meets this threshold journal a
    /// `SlowRequest` event with the full stage breakdown (0 disables).
    pub slow_request_ns: u64,
    /// Per-connection admission quota in sustained tokens per second,
    /// where one token ≈ one point read (0 disables). A token bucket per
    /// connection: GET costs one token, DELETE costs four and PUT
    /// `4 + value_len/128` (write amplification, scaled by the payload),
    /// a scan costs `1 + limit/2` (it does proportionally more engine
    /// work), a BATCH costs the sum of its sub-requests' costs (batching
    /// must not bypass admission), and control-plane opcodes (PING/STATS/
    /// METRICS/SHUTDOWN) are free so a throttled client — or an operator
    /// during an attack — can always observe and drain the server. The
    /// exact cost table lives in [`quota_cost`] and is pinned by a unit
    /// test. Over-quota requests are answered with an `Err` reply and
    /// never reach the engine; the connection survives.
    pub quota_ops: u64,
    /// Token-bucket capacity (burst allowance); 0 sizes it to one second
    /// of `quota_ops`.
    pub quota_burst: u64,
    /// Per-*tenant* admission quota in sustained tokens per second,
    /// aggregated across every connection the tenant has bound with
    /// `AUTH` (0 disables). Same cost table as `quota_ops`, but the
    /// bucket is shared: a tenant cannot multiply its budget by opening
    /// more connections. Unauthenticated (legacy) connections belong to
    /// the default tenant and are exempt — tenant quotas are an
    /// isolation tool for multi-tenant runs, not a new global limit.
    pub tenant_quota_ops: u64,
    /// Per-tenant token-bucket capacity; 0 sizes it to one second of
    /// `tenant_quota_ops`.
    pub tenant_quota_burst: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:4400".to_string(),
            workers: 0,
            max_conns: 1024,
            max_frame: protocol::DEFAULT_MAX_FRAME,
            idle_timeout: Duration::from_secs(60),
            max_write_buffer: 4 << 20,
            sample_every: 64,
            slow_request_ns: 10_000_000,
            quota_ops: 0,
            quota_burst: 0,
            tenant_quota_ops: 0,
            tenant_quota_burst: 0,
        }
    }
}

impl ServerConfig {
    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// What a finished serving run did, returned by [`ServerHandle::shutdown`]
/// and [`ServerHandle::wait`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeReport {
    /// Requests executed (including ones answered with `Err`).
    pub requests: u64,
    /// Frames that failed to decode (unknown opcode, malformed body,
    /// oversized length).
    pub protocol_errors: u64,
    /// Connections accepted over the run.
    pub conns_accepted: u64,
    /// Connections closed over the run (equals accepted after drain).
    pub conns_closed: u64,
    /// Connections refused at the `max_conns` ceiling.
    pub conns_refused: u64,
    /// Requests shed by per-connection admission quotas (answered with an
    /// `Err` reply without touching the engine).
    pub quota_throttled: u64,
    /// Requests shed by per-tenant aggregated quotas (a subset of the
    /// shed total, counted separately so noisy-neighbor drills can tell
    /// the two defenses apart).
    pub tenant_throttled: u64,
    /// Bytes read off sockets.
    pub bytes_in: u64,
    /// Bytes written to sockets.
    pub bytes_out: u64,
}

/// Pre-resolved metric handles (inert when the engine has no `Obs`).
struct Metrics {
    requests: Counter,
    protocol_errors: Counter,
    quota_throttled: Counter,
    bytes_in: Counter,
    bytes_out: Counter,
    conns_active: Gauge,
    inflight: Gauge,
    /// Indexed by opcode discriminant.
    latency: [HistogramHandle; 10],
    /// Sub-requests per served `Batch` frame (`server.batch.subs`).
    batch_subs: HistogramHandle,
    /// Distinct engine stripes per served `Batch` frame
    /// (`server.batch.stripes`).
    batch_stripes: HistogramHandle,
    /// Per-stage request-lifetime histograms (`server.stage.*`).
    stages: StageSet,
}

impl Metrics {
    fn new(obs: &Obs) -> Self {
        let lat = |op: Opcode| obs.histogram(&format!("server.latency.{}", op.label()));
        Metrics {
            requests: obs.counter("server.requests"),
            protocol_errors: obs.counter("server.protocol_errors"),
            quota_throttled: obs.counter("server.quota.throttled"),
            bytes_in: obs.counter("server.bytes_in"),
            bytes_out: obs.counter("server.bytes_out"),
            conns_active: obs.gauge("server.conns.active"),
            inflight: obs.gauge("server.inflight"),
            latency: [
                lat(Opcode::Ping),
                lat(Opcode::Get),
                lat(Opcode::Put),
                lat(Opcode::Delete),
                lat(Opcode::Scan),
                lat(Opcode::Stats),
                lat(Opcode::Shutdown),
                lat(Opcode::Metrics),
                lat(Opcode::Batch),
                lat(Opcode::Auth),
            ],
            batch_subs: obs.histogram("server.batch.subs"),
            batch_stripes: obs.histogram("server.batch.stripes"),
            stages: StageSet::new(obs, "server.stage"),
        }
    }
}

/// State shared by the accept loop, every worker, and the handle.
struct Shared {
    db: Arc<CachedDb>,
    cfg: ServerConfig,
    obs: Obs,
    metrics: Metrics,
    /// Cached `obs.is_enabled()`: gates every `Instant::now()` the stage
    /// timers would otherwise cost, so telemetry-off runs stay at the old
    /// per-request overhead.
    telemetry: bool,
    shutdown: AtomicBool,
    active: AtomicU64,
    conn_seq: AtomicU64,
    requests: AtomicU64,
    protocol_errors: AtomicU64,
    conns_accepted: AtomicU64,
    conns_closed: AtomicU64,
    conns_refused: AtomicU64,
    quota_throttled: AtomicU64,
    tenant_throttled: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    /// Per-tenant serving state, created on first `AUTH` for a tenant.
    /// Looked up only at bind time — connections cache the `Arc` — so
    /// the data-plane hot path never takes this lock.
    tenants: RwLock<BTreeMap<TenantId, Arc<TenantState>>>,
}

/// Serving-layer state shared by every connection a tenant has bound:
/// the aggregated admission bucket and throttle accounting.
struct TenantState {
    id: TenantId,
    /// Aggregated token bucket — one per tenant, not per connection, so
    /// opening more sockets does not multiply the budget.
    bucket: Mutex<TenantBucket>,
    /// Requests shed for this tenant.
    throttled: AtomicU64,
    /// `server.tenant.<id>.quota.throttled`, resolved once at creation.
    throttled_counter: Counter,
}

struct TenantBucket {
    tokens: f64,
    at: Instant,
}

impl Shared {
    fn report(&self) -> ServeReport {
        ServeReport {
            requests: self.requests.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            conns_accepted: self.conns_accepted.load(Ordering::Relaxed),
            conns_closed: self.conns_closed.load(Ordering::Relaxed),
            conns_refused: self.conns_refused.load(Ordering::Relaxed),
            quota_throttled: self.quota_throttled.load(Ordering::Relaxed),
            tenant_throttled: self.tenant_throttled.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
        }
    }

    /// The tenant's serving state, created on first use. `AUTH`-time
    /// only; never on the data-plane hot path.
    fn tenant_state(&self, tenant: TenantId) -> Arc<TenantState> {
        if let Some(ts) = self.tenants.read().unwrap().get(&tenant) {
            return ts.clone();
        }
        let mut map = self.tenants.write().unwrap();
        map.entry(tenant)
            .or_insert_with(|| {
                Arc::new(TenantState {
                    id: tenant,
                    bucket: Mutex::new(TenantBucket {
                        // A fresh tenant starts with a full burst.
                        tokens: tenant_quota_burst(&self.cfg),
                        at: Instant::now(),
                    }),
                    throttled: AtomicU64::new(0),
                    throttled_counter: self
                        .obs
                        .counter(&format!("server.tenant.{tenant}.quota.throttled")),
                })
            })
            .clone()
    }
}

/// Outbound reply bytes as a queue of segments flushed with one vectored
/// write per syscall, instead of one contiguous buffer written (and
/// memmove-compacted) frame by frame. Encoders append to the open tail
/// segment; once the tail passes [`WriteQueue::SEAL_BYTES`] the next
/// append starts a fresh segment, so a multi-megabyte backlog never pays
/// a large compaction memmove and a flush covers many frames per
/// `writev`.
struct WriteQueue {
    segs: VecDeque<Vec<u8>>,
    /// Already-written prefix of the front segment.
    head: usize,
    /// Total unwritten bytes across all segments.
    pending: usize,
    /// One retired segment kept for reuse — most connections ping-pong a
    /// single segment, so this removes almost all buffer churn.
    spare: Option<Vec<u8>>,
}

impl WriteQueue {
    /// Tail segments at or past this size are sealed.
    const SEAL_BYTES: usize = 60 << 10;
    /// Ceiling on iovecs per `writev` (Linux caps at `UIO_MAXIOV`=1024;
    /// 64 is plenty to amortize the syscall).
    const MAX_IOVECS: usize = 64;

    fn new() -> Self {
        WriteQueue {
            segs: VecDeque::new(),
            head: 0,
            pending: 0,
            spare: None,
        }
    }

    fn pending(&self) -> usize {
        self.pending
    }

    fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Appends one encoded frame via `f`, opening a new segment when the
    /// tail is sealed.
    fn encode_with(&mut self, f: impl FnOnce(&mut Vec<u8>)) {
        let need_new = self.segs.back().is_none_or(|s| s.len() >= Self::SEAL_BYTES);
        if need_new {
            let mut seg = self.spare.take().unwrap_or_default();
            seg.clear();
            self.segs.push_back(seg);
        }
        let tail = self.segs.back_mut().expect("tail segment exists");
        let before = tail.len();
        f(tail);
        self.pending += tail.len() - before;
    }

    /// The unwritten byte ranges, at most [`Self::MAX_IOVECS`] slices.
    fn slices(&self) -> Vec<IoSlice<'_>> {
        let mut out = Vec::with_capacity(self.segs.len().min(Self::MAX_IOVECS));
        for (i, seg) in self.segs.iter().enumerate() {
            if out.len() >= Self::MAX_IOVECS {
                break;
            }
            let from = if i == 0 { self.head } else { 0 };
            if seg.len() > from {
                out.push(IoSlice::new(&seg[from..]));
            }
        }
        out
    }

    /// The front segment's unwritten range (blocking drain path).
    fn front_chunk(&self) -> Option<&[u8]> {
        self.segs.front().and_then(|seg| {
            if seg.len() > self.head {
                Some(&seg[self.head..])
            } else {
                None
            }
        })
    }

    /// Marks `n` bytes written, retiring fully-flushed segments.
    fn advance(&mut self, mut n: usize) {
        self.pending -= n;
        while n > 0 {
            let front_left = self.segs[0].len() - self.head;
            if n >= front_left {
                n -= front_left;
                self.head = 0;
                let seg = self.segs.pop_front().expect("front segment exists");
                if self.spare.is_none() {
                    self.spare = Some(seg);
                }
            } else {
                self.head += n;
                n = 0;
            }
        }
    }

    /// Drops everything unwritten (connection is dying anyway).
    fn clear(&mut self) {
        self.segs.clear();
        self.head = 0;
        self.pending = 0;
    }
}

/// One worker-owned connection.
struct Conn {
    id: u64,
    stream: TcpStream,
    rbuf: Vec<u8>,
    wq: WriteQueue,
    last_active: Instant,
    /// When the most recent socket read delivered bytes; the baseline for
    /// each buffered frame's queue-wait stage.
    read_at: Instant,
    /// Duration of that read syscall (the recv stage, shared by every
    /// frame the read delivered). 0 with telemetry off.
    last_read_ns: u64,
    requests: u64,
    bytes_in: u64,
    bytes_out: u64,
    /// Admission-quota token bucket (filled lazily from `tokens_at`).
    tokens: f64,
    /// Last bucket refill instant.
    tokens_at: Instant,
    /// Requests throttled on this connection.
    throttled: u64,
    /// The tenant this connection bound with `AUTH`; `None` is a legacy
    /// connection serving the default tenant.
    tenant: Option<Arc<TenantState>>,
    /// Set once the connection should close after its replies flush.
    closing: Option<ConnCloseCause>,
}

impl Conn {
    fn pending_write(&self) -> usize {
        self.wq.pending()
    }

    fn tenant_id(&self) -> TenantId {
        self.tenant.as_ref().map_or(DEFAULT_TENANT, |t| t.id)
    }
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] aborts the threads without draining.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    threads: Vec<std::thread::JoinHandle<()>>,
}

/// Alias kept for readability at call sites: `Server::start` returns the
/// same type it is named after, acting as the run's handle.
pub type ServerHandle = Server;

impl Server {
    /// Binds, spawns the accept loop and worker pool, and returns.
    pub fn start(db: Arc<CachedDb>, cfg: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let obs = db.obs();
        let workers = cfg.effective_workers();
        let shared = Arc::new(Shared {
            metrics: Metrics::new(&obs),
            telemetry: obs.is_enabled(),
            obs,
            db,
            cfg,
            shutdown: AtomicBool::new(false),
            active: AtomicU64::new(0),
            conn_seq: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            conns_accepted: AtomicU64::new(0),
            conns_closed: AtomicU64::new(0),
            conns_refused: AtomicU64::new(0),
            quota_throttled: AtomicU64::new(0),
            tenant_throttled: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            tenants: RwLock::new(BTreeMap::new()),
        });

        let mut threads = Vec::with_capacity(workers + 1);
        let mut senders = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = mpsc::channel::<TcpStream>();
            senders.push(tx);
            let shared = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("adcache-worker-{w}"))
                    .spawn(move || worker_loop(&shared, &rx))?,
            );
        }
        {
            let shared = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("adcache-accept".to_string())
                    .spawn(move || accept_loop(&shared, &listener, &senders))?,
            );
        }
        Ok(Server {
            shared,
            local_addr,
            threads,
        })
    }

    /// The bound address (useful with `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Requests graceful shutdown and waits for the drain to finish:
    /// buffered requests execute, replies flush, connections close, and
    /// the engine's memtable is flushed to the LSM before returning.
    pub fn shutdown(self) -> ServeReport {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.wait()
    }

    /// Waits for the server to stop on its own (a client's `Shutdown`
    /// frame) and returns the drain report.
    pub fn wait(self) -> ServeReport {
        for t in self.threads {
            let _ = t.join();
        }
        // Everything acknowledged over the wire must survive a restart.
        let _ = self.shared.db.db().flush();
        self.shared.report()
    }

    /// Whether shutdown has been requested (test hook).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

fn accept_loop(shared: &Shared, listener: &TcpListener, senders: &[mpsc::Sender<TcpStream>]) {
    let mut next = 0usize;
    // A worker whose channel has disconnected (panic, crash) is skipped
    // permanently; the loop only exits on shutdown or when every worker
    // is gone. One dead worker must not stop the whole server accepting.
    let mut dead = vec![false; senders.len()];
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Claim a slot *before* checking the ceiling: a plain
                // load-then-add would race concurrent closes and admit
                // over the limit.
                let prev = shared.active.fetch_add(1, Ordering::Relaxed);
                if prev >= shared.cfg.max_conns as u64 {
                    shared.active.fetch_sub(1, Ordering::Relaxed);
                    refuse(shared, stream, prev);
                    continue;
                }
                shared
                    .metrics
                    .conns_active
                    .set(shared.active.load(Ordering::Relaxed) as i64);
                // Round-robin dispatch across live workers; workers
                // balance naturally because each owns an independent
                // slice of connections.
                let mut stream = Some(stream);
                for k in 0..senders.len() {
                    let w = (next + k) % senders.len();
                    if dead[w] {
                        continue;
                    }
                    match senders[w].send(stream.take().expect("stream unclaimed")) {
                        Ok(()) => {
                            next = w + 1;
                            break;
                        }
                        Err(mpsc::SendError(s)) => {
                            dead[w] = true;
                            stream = Some(s);
                        }
                    }
                }
                if stream.is_some() {
                    // Every worker is gone; nothing can serve this
                    // connection or any future one.
                    shared.active.fetch_sub(1, Ordering::Relaxed);
                    return;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
    // Dropping the senders lets each worker observe disconnection and
    // finish its drain.
}

/// Over the connection ceiling: answer with one `Err` frame, then close.
fn refuse(shared: &Shared, mut stream: TcpStream, active: u64) {
    shared.conns_refused.fetch_add(1, Ordering::Relaxed);
    let limit = shared.cfg.max_conns as u64;
    shared.obs.emit(|| Event::ServerOverload { active, limit });
    let mut frame = Vec::new();
    encode_response(
        &mut frame,
        0,
        &Response::Error("server at connection limit".to_string()),
    );
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    let _ = stream.write_all(&frame);
}

/// Unproductive wakeups before the park delay starts escalating; below
/// this the worker only yields, keeping sub-microsecond reaction to a
/// burst that arrives right after a quiet tick.
const SPIN_YIELDS: u32 = 64;
/// First park delay once yielding gives up.
const PARK_MIN: Duration = Duration::from_micros(50);
/// Park ceiling — an idle worker wakes at least this often to reap idle
/// timeouts and observe shutdown.
const PARK_MAX: Duration = Duration::from_millis(1);

fn worker_loop(shared: &Shared, incoming: &mpsc::Receiver<TcpStream>) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut scratch = vec![0u8; 64 << 10];
    let mut accept_closed = false;
    // Adaptive spin-then-park replaces a flat 1 ms sleep-poll: a busy
    // worker never sleeps, a recently-busy one yields (staying hot for
    // the next frame), and only a genuinely idle one backs off to
    // millisecond parks.
    let mut idle = 0u32;
    loop {
        let draining = shared.shutdown.load(Ordering::SeqCst);
        let mut progressed = false;

        // Adopt newly accepted sockets.
        loop {
            match incoming.try_recv() {
                Ok(stream) => {
                    if let Some(conn) = adopt(shared, stream) {
                        conns.push(conn);
                        progressed = true;
                    }
                }
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => {
                    accept_closed = true;
                    break;
                }
            }
        }

        let mut i = 0;
        while i < conns.len() {
            let conn = &mut conns[i];
            progressed |= flush_writes(shared, conn);
            if conn.closing.is_none() && !draining {
                progressed |= service_reads(shared, conn, &mut scratch);
                if conn.closing.is_none() && conn.last_active.elapsed() >= shared.cfg.idle_timeout {
                    conn.closing = Some(ConnCloseCause::IdleTimeout);
                }
            } else if conn.closing.is_none() && draining {
                // Drain: execute what is already buffered, then close.
                // The write-buffer cap is waived — everything accepted
                // executes, and `draining_flush` writes it out blocking.
                progressed |= service_reads(shared, conn, &mut scratch);
                drain_buffered(shared, conn, false);
                conn.closing = Some(ConnCloseCause::Shutdown);
            }
            let done = match conn.closing {
                Some(_) => conn.pending_write() == 0 || draining_flush(conn),
                None => false,
            };
            if done {
                let conn = conns.swap_remove(i);
                finish(shared, conn);
                progressed = true;
            } else {
                i += 1;
            }
        }

        if draining && conns.is_empty() && accept_closed {
            return;
        }
        if progressed {
            idle = 0;
        } else {
            idle = idle.saturating_add(1);
            if idle <= SPIN_YIELDS {
                std::thread::yield_now();
            } else {
                // 50 µs doubling to the 1 ms ceiling.
                let exp = (idle - SPIN_YIELDS - 1).min(10);
                let park = PARK_MIN.saturating_mul(1 << exp).min(PARK_MAX);
                std::thread::sleep(park);
            }
        }
    }
}

fn adopt(shared: &Shared, stream: TcpStream) -> Option<Conn> {
    if stream.set_nonblocking(true).is_err() {
        shared.active.fetch_sub(1, Ordering::Relaxed);
        return None;
    }
    let _ = stream.set_nodelay(true);
    let id = shared.conn_seq.fetch_add(1, Ordering::Relaxed);
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "unknown".to_string());
    shared.conns_accepted.fetch_add(1, Ordering::Relaxed);
    shared.obs.emit(|| Event::ConnAccepted {
        conn: id,
        peer: peer.clone(),
    });
    Some(Conn {
        id,
        stream,
        rbuf: Vec::new(),
        wq: WriteQueue::new(),
        last_active: Instant::now(),
        read_at: Instant::now(),
        last_read_ns: 0,
        requests: 0,
        bytes_in: 0,
        bytes_out: 0,
        // A fresh connection starts with a full burst allowance.
        tokens: quota_burst(&shared.cfg),
        tokens_at: Instant::now(),
        throttled: 0,
        tenant: None,
        closing: None,
    })
}

/// Writes as much buffered response data as the socket accepts, many
/// segments per syscall via `writev`.
fn flush_writes(shared: &Shared, conn: &mut Conn) -> bool {
    let mut progressed = false;
    while !conn.wq.is_empty() {
        let slices = conn.wq.slices();
        match conn.stream.write_vectored(&slices) {
            Ok(0) => {
                conn.closing = Some(ConnCloseCause::IoError);
                break;
            }
            Ok(n) => {
                conn.wq.advance(n);
                conn.bytes_out += n as u64;
                shared.bytes_out.fetch_add(n as u64, Ordering::Relaxed);
                shared.metrics.bytes_out.add(n as u64);
                conn.last_active = Instant::now();
                progressed = true;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.closing = Some(ConnCloseCause::IoError);
                break;
            }
        }
    }
    progressed
}

/// Final blocking flush of a draining connection's replies. Returns true
/// once the connection can be dropped.
fn draining_flush(conn: &mut Conn) -> bool {
    let _ = conn.stream.set_nonblocking(false);
    let _ = conn.stream.set_write_timeout(Some(Duration::from_secs(1)));
    while let Some(chunk) = conn.wq.front_chunk() {
        let len = chunk.len();
        if conn.stream.write_all(chunk).is_err() {
            break;
        }
        conn.wq.advance(len);
    }
    let _ = conn.stream.flush();
    conn.wq.clear();
    true
}

/// Per-wakeup ceiling on bytes read from one connection, so a firehose
/// peer cannot starve its worker's other connections.
const READ_BUDGET: usize = 256 << 10;

/// Reads until the socket runs dry (or a fairness/backpressure bound
/// trips) and executes every complete frame after each read.
fn service_reads(shared: &Shared, conn: &mut Conn, scratch: &mut [u8]) -> bool {
    let mut progressed = false;
    let mut budget = READ_BUDGET;
    loop {
        // Backpressure: stop reading while this client owes us a drain.
        if conn.closing.is_some()
            || conn.pending_write() >= shared.cfg.max_write_buffer
            || budget == 0
        {
            break;
        }
        let read_start = if shared.telemetry {
            Some(Instant::now())
        } else {
            None
        };
        match conn.stream.read(scratch) {
            Ok(0) => {
                // Client closed its half; execute anything already
                // buffered (cap waived: the backlog is already bounded by
                // what was read, and no more will arrive).
                drain_buffered(shared, conn, false);
                if conn.closing.is_none() {
                    conn.closing = Some(ConnCloseCause::ClientClosed);
                }
                return true;
            }
            Ok(n) => {
                conn.rbuf.extend_from_slice(&scratch[..n]);
                conn.bytes_in += n as u64;
                shared.bytes_in.fetch_add(n as u64, Ordering::Relaxed);
                shared.metrics.bytes_in.add(n as u64);
                conn.last_active = Instant::now();
                if let Some(t0) = read_start {
                    conn.last_read_ns = t0.elapsed().as_nanos() as u64;
                    conn.read_at = Instant::now();
                }
                progressed = true;
                budget = budget.saturating_sub(n);
                // Execute between reads so replies stream out while more
                // requests arrive, and so the backpressure re-check above
                // sees the growth this read produced.
                drain_buffered(shared, conn, true);
                if n < scratch.len() {
                    break; // short read — the socket is drained
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.closing = Some(ConnCloseCause::IoError);
                return true;
            }
        }
    }
    progressed |= drain_buffered(shared, conn, true);
    progressed
}

/// Decodes and executes complete frames already buffered on `conn`,
/// appending responses in request order.
///
/// With `enforce_cap`, execution stops once the reply backlog reaches
/// [`ServerConfig::max_write_buffer`]; the remaining buffered frames stay
/// in `rbuf` until the client drains replies. Without the check, one
/// 64 KiB read full of pipelined SCANs (512-entry replies each) could
/// grow the write buffer without bound — the cap at the read boundary
/// alone cannot see growth produced *after* the read.
fn drain_buffered(shared: &Shared, conn: &mut Conn, enforce_cap: bool) -> bool {
    let mut at = 0usize;
    let mut served = 0u64;
    loop {
        if enforce_cap && conn.pending_write() >= shared.cfg.max_write_buffer {
            break;
        }
        let parse_start = if shared.telemetry {
            Some(Instant::now())
        } else {
            None
        };
        match decode_request(&conn.rbuf[at..], shared.cfg.max_frame) {
            Progress::Incomplete => break,
            Progress::Fatal(err) => {
                shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                shared.metrics.protocol_errors.inc();
                conn.wq
                    .encode_with(|out| encode_response(out, 0, &Response::Error(err.to_string())));
                debug_assert!(is_fatal(&err));
                conn.closing = Some(ConnCloseCause::ProtocolError);
                at = conn.rbuf.len(); // the rest of the stream is garbage
                break;
            }
            Progress::Frame(Err((id, err)), consumed) => {
                shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                shared.metrics.protocol_errors.inc();
                conn.wq
                    .encode_with(|out| encode_response(out, id, &Response::Error(err.to_string())));
                at += consumed;
                served += 1;
            }
            Progress::Frame(Ok((id, req)), consumed) => {
                at += consumed;
                served += 1;
                let parse_ns = parse_start.map_or(0, |t0| t0.elapsed().as_nanos() as u64);
                execute(shared, conn, id, &req, parse_ns);
            }
        }
    }
    if at > 0 {
        conn.rbuf.drain(..at);
    }
    served > 0
}

/// Executes one data-plane request (a `Batch` sub-request or a top-level
/// frame's engine work). Control-plane opcodes are not valid here — the
/// decoder rejects them inside batches, so the fallback arm is defense in
/// depth, not a reachable path.
fn execute_data_sub(shared: &Shared, tenant: TenantId, req: &Request) -> Response {
    match req {
        Request::Ping => Response::Ok,
        Request::Get { key } => match shared.db.get_for(tenant, key) {
            Ok(Some(v)) => Response::Value(v),
            Ok(None) => Response::NotFound,
            Err(e) => Response::Error(e.to_string()),
        },
        Request::Put { key, value } => {
            match shared.db.put_for(tenant, key.clone(), value.clone()) {
                Ok(()) => Response::Ok,
                Err(e) => Response::Error(e.to_string()),
            }
        }
        Request::Delete { key } => match shared.db.delete_for(tenant, key.clone()) {
            Ok(()) => Response::Ok,
            Err(e) => Response::Error(e.to_string()),
        },
        Request::Scan { from, limit } => match shared.db.scan_for(tenant, from, *limit as usize) {
            Ok(entries) => Response::Entries(entries),
            Err(e) => Response::Error(e.to_string()),
        },
        _ => Response::Error("opcode not allowed in batch".into()),
    }
}

/// Executes a batch's sub-requests **in order**, with stripe-aware
/// grouping: consecutive GET runs go down as one [`CachedDb::multi_get`]
/// (which groups keys by FNV stripe and takes each stripe's read lock
/// once), while writes and scans execute at their positions so
/// read-your-writes holds within the batch. Returns the in-order
/// multi-reply plus `(subs, distinct stripes)` for metrics.
fn execute_batch(shared: &Shared, tenant: TenantId, subs: &[Request]) -> (Response, (u64, u64)) {
    let striped = shared.db.db();
    let mut stripe_seen = vec![false; striped.num_stripes()];
    let mut out: Vec<(Opcode, Response)> = Vec::with_capacity(subs.len());
    let mut i = 0;
    while i < subs.len() {
        if matches!(subs[i], Request::Get { .. }) {
            let mut keys: Vec<&[u8]> = Vec::new();
            let mut j = i;
            while j < subs.len() {
                let Request::Get { key } = &subs[j] else {
                    break;
                };
                keys.push(key.as_ref());
                stripe_seen[striped.stripe_for(key)] = true;
                j += 1;
            }
            match shared.db.multi_get_for(tenant, &keys) {
                Ok(values) => {
                    for v in values {
                        let resp = match v {
                            Some(v) => Response::Value(v),
                            None => Response::NotFound,
                        };
                        out.push((Opcode::Get, resp));
                    }
                }
                Err(e) => {
                    let msg = e.to_string();
                    for _ in 0..keys.len() {
                        out.push((Opcode::Get, Response::Error(msg.clone())));
                    }
                }
            }
            i = j;
        } else {
            match &subs[i] {
                Request::Put { key, .. } | Request::Delete { key } => {
                    stripe_seen[striped.stripe_for(key)] = true;
                }
                // A scan merges across every stripe.
                Request::Scan { .. } => stripe_seen.iter_mut().for_each(|s| *s = true),
                _ => {}
            }
            out.push((subs[i].opcode(), execute_data_sub(shared, tenant, &subs[i])));
            i += 1;
        }
    }
    let stripes = stripe_seen.iter().filter(|s| **s).count() as u64;
    (Response::Batch(out), (subs.len() as u64, stripes))
}

fn execute(shared: &Shared, conn: &mut Conn, id: u64, req: &Request, parse_ns: u64) {
    let op = req.opcode();
    shared.metrics.inflight.add(1);
    // Queue wait: time since the socket read that delivered this frame's
    // bytes. Head-of-line semantics — later frames in one batch charge the
    // service time of the frames ahead of them to queue_wait.
    let queue_ns = if shared.telemetry {
        conn.read_at.elapsed().as_nanos() as u64
    } else {
        0
    };
    if shared.telemetry {
        reset_lock_probe();
    }
    let start = Instant::now();
    let mut batch_info: Option<(u64, u64)> = None;
    let resp = if let Some(denied) = quota_check(shared, conn, req) {
        denied
    } else {
        match req {
            Request::Ping
            | Request::Get { .. }
            | Request::Put { .. }
            | Request::Delete { .. }
            | Request::Scan { .. } => execute_data_sub(shared, conn.tenant_id(), req),
            Request::Batch { subs } => {
                let (resp, info) = execute_batch(shared, conn.tenant_id(), subs);
                batch_info = Some(info);
                resp
            }
            Request::Auth { tenant } => {
                bind_tenant(shared, conn, *tenant);
                Response::Ok
            }
            Request::Stats => Response::Stats(stats_json(shared)),
            Request::Shutdown => {
                shared.shutdown.store(true, Ordering::SeqCst);
                Response::Ok
            }
            Request::Metrics { format } => match shared.obs.registry() {
                Some(reg) => Response::Metrics(match format {
                    MetricsFormat::Json => reg.snapshot_json(),
                    MetricsFormat::Prometheus => reg.prometheus_text(),
                }),
                None => Response::Error("telemetry disabled".into()),
            },
        }
    };
    let latency_ns = start.elapsed().as_nanos() as u64;
    shared.metrics.inflight.sub(1);
    shared.metrics.latency[op as usize].record(latency_ns);
    shared.metrics.requests.inc();
    if let Some((subs, stripes)) = batch_info {
        shared.metrics.batch_subs.record(subs);
        shared.metrics.batch_stripes.record(stripes);
    }
    let total = shared.requests.fetch_add(1, Ordering::Relaxed) + 1;
    conn.requests += 1;
    let sample = shared.cfg.sample_every;
    if sample > 0 && total.is_multiple_of(sample) {
        let status = resp.status();
        if let Some((subs, stripes)) = batch_info {
            shared.obs.emit(|| Event::BatchServed {
                conn: conn.id,
                subs,
                stripes,
                latency_ns,
            });
        } else {
            shared.obs.emit(|| Event::RequestServed {
                conn: conn.id,
                opcode: op.label().to_string(),
                status: status.label().to_string(),
                latency_ns,
            });
        }
    }
    if shared.telemetry {
        // Engine-lock wait and hold observed by this thread during the db
        // call; everything else inside the call is the cache layer (and
        // serialization, for Stats/Metrics).
        let (lock_wait_ns, lock_hold_ns) = lock_probe();
        let cache_ns = latency_ns.saturating_sub(lock_wait_ns + lock_hold_ns);
        let reply_start = Instant::now();
        conn.wq.encode_with(|out| encode_response(out, id, &resp));
        let reply_ns = reply_start.elapsed().as_nanos() as u64;

        let mut st = StageTimer::new();
        st.set(Stage::Recv, conn.last_read_ns);
        st.set(Stage::Parse, parse_ns);
        st.set(Stage::QueueWait, queue_ns);
        st.set(Stage::LockWait, lock_wait_ns);
        st.set(Stage::EngineExec, lock_hold_ns);
        st.set(Stage::CacheLayer, cache_ns);
        st.set(Stage::ReplyFlush, reply_ns);
        shared.metrics.stages.record(&st);

        let slow = shared.cfg.slow_request_ns;
        if slow > 0 && st.total() >= slow {
            let status = resp.status();
            shared.obs.emit(|| Event::SlowRequest {
                conn: conn.id,
                opcode: op.label().to_string(),
                status: status.label().to_string(),
                total_ns: st.total(),
                recv_ns: conn.last_read_ns,
                parse_ns,
                queue_ns,
                lock_wait_ns,
                engine_ns: lock_hold_ns,
                cache_ns,
                reply_ns,
                key: slow_request_key(req),
            });
        }
    } else {
        conn.wq.encode_with(|out| encode_response(out, id, &resp));
    }
}

/// Binds `conn` to `tenant`: registers the tenant's cache partition with
/// the engine, swaps in the aggregated quota state, and journals the
/// binding. `AUTH 0` rebinds to the default tenant (legacy semantics) —
/// useful for connection-pool reuse.
fn bind_tenant(shared: &Shared, conn: &mut Conn, tenant: TenantId) {
    if tenant == DEFAULT_TENANT {
        conn.tenant = None;
    } else {
        shared.db.register_tenant(tenant);
        conn.tenant = Some(shared.tenant_state(tenant));
    }
    shared.obs.emit(|| Event::TenantBound {
        conn: conn.id,
        tenant: tenant as u64,
    });
}

/// The effective token-bucket capacity for `cfg` (one second of sustained
/// rate unless overridden).
fn quota_burst(cfg: &ServerConfig) -> f64 {
    if cfg.quota_burst > 0 {
        cfg.quota_burst as f64
    } else {
        cfg.quota_ops.max(1) as f64
    }
}

/// The effective per-tenant bucket capacity (one second of sustained rate
/// unless overridden).
fn tenant_quota_burst(cfg: &ServerConfig) -> f64 {
    if cfg.tenant_quota_burst > 0 {
        cfg.tenant_quota_burst as f64
    } else {
        cfg.tenant_quota_ops.max(1) as f64
    }
}

/// The admission-quota cost table, in tokens (one token ≈ one point
/// read). `None` means the opcode is quota-exempt (control plane).
///
/// - GET: 1. DELETE: 4.
/// - PUT: `4 + value_len/128`. Writes amplify — every payload byte is
///   carried again by the WAL, the flush, and each compaction level it
///   passes through — so a bulk-payload attacker exhausts its budget in
///   a few requests while small legit writes stay near the flat floor.
/// - SCAN: `1 + limit/2`. A scan does work proportional to its limit,
///   each entry visit comparable to a point lookup; charging near one
///   token per entry keeps a flood of wide scans from hiding three
///   orders of magnitude of work behind one token.
/// - BATCH: the sum of its sub-requests' costs — batching amortizes
///   syscalls and lock handshakes, not admission control.
///
/// A unit test pins this table against the documented formulas so code
/// and docs cannot drift again.
pub fn quota_cost(req: &Request) -> Option<f64> {
    Some(match req {
        Request::Get { .. } => 1.0,
        Request::Put { value, .. } => 4.0 + value.len() as f64 / 128.0,
        Request::Delete { .. } => 4.0,
        Request::Scan { limit, .. } => 1.0 + *limit as f64 / 2.0,
        Request::Batch { subs } => subs.iter().filter_map(quota_cost).sum(),
        // Ping is free: it is the liveness probe a throttled client uses
        // to tell "quota-limited" from "dead", batched or not.
        Request::Ping => return None,
        // AUTH is control plane: a throttled tenant must still be able to
        // (re)bind, and the handshake happens before traffic anyway.
        Request::Auth { .. } => return None,
        Request::Stats | Request::Shutdown | Request::Metrics { .. } => return None,
    })
}

/// Per-connection admission quota: refills `conn`'s token bucket and takes
/// this request's cost from it. Returns the `Err` reply to send instead of
/// executing when the bucket runs dry. Control-plane opcodes are exempt —
/// observation and shutdown must stay possible during an attack. A batch
/// is all-or-nothing: either the bucket covers the whole frame or the
/// whole frame is refused with one `Err`.
fn quota_check(shared: &Shared, conn: &mut Conn, req: &Request) -> Option<Response> {
    let rate = shared.cfg.quota_ops;
    let tenant_rate = shared.cfg.tenant_quota_ops;
    if rate == 0 && tenant_rate == 0 {
        return None;
    }
    let cost = quota_cost(req)?;
    if rate > 0 {
        let now = Instant::now();
        let dt = now.duration_since(conn.tokens_at).as_secs_f64();
        conn.tokens_at = now;
        conn.tokens = (conn.tokens + dt * rate as f64).min(quota_burst(&shared.cfg));
        if conn.tokens < cost {
            conn.throttled += 1;
            shared.quota_throttled.fetch_add(1, Ordering::Relaxed);
            shared.metrics.quota_throttled.inc();
            // Journal the first throttle per connection (the defense
            // activated) and then every 1024th, so a sustained attack
            // cannot flood the journal either.
            if conn.throttled == 1 || conn.throttled.is_multiple_of(1024) {
                let throttled = conn.throttled;
                let opcode = req.opcode().label().to_string();
                shared.obs.emit(|| Event::QuotaThrottled {
                    conn: conn.id,
                    opcode,
                    throttled,
                });
            }
            return Some(Response::Error(format!(
                "quota exceeded: connection limited to {rate} tokens/s"
            )));
        }
        conn.tokens -= cost;
    }
    if tenant_rate > 0 {
        if let Some(ts) = conn.tenant.clone() {
            let denied = {
                let mut b = ts.bucket.lock().unwrap();
                let now = Instant::now();
                let dt = now.duration_since(b.at).as_secs_f64();
                b.at = now;
                b.tokens =
                    (b.tokens + dt * tenant_rate as f64).min(tenant_quota_burst(&shared.cfg));
                if b.tokens >= cost {
                    b.tokens -= cost;
                    false
                } else {
                    true
                }
            };
            if denied {
                let throttled = ts.throttled.fetch_add(1, Ordering::Relaxed) + 1;
                shared.quota_throttled.fetch_add(1, Ordering::Relaxed);
                shared.tenant_throttled.fetch_add(1, Ordering::Relaxed);
                shared.metrics.quota_throttled.inc();
                ts.throttled_counter.inc();
                // Same journal damping as the per-connection defense.
                if throttled == 1 || throttled.is_multiple_of(1024) {
                    let tenant = ts.id as u64;
                    let opcode = req.opcode().label().to_string();
                    shared.obs.emit(|| Event::TenantThrottled {
                        tenant,
                        opcode,
                        throttled,
                    });
                }
                return Some(Response::Error(format!(
                    "quota exceeded: tenant {} limited to {tenant_rate} tokens/s",
                    ts.id
                )));
            }
        }
    }
    None
}

/// A short human-readable key label for `SlowRequest` events: the
/// (truncated, lossy-decoded) key for point ops, `from..+limit` for scans,
/// empty for keyless opcodes.
fn slow_request_key(req: &Request) -> String {
    fn trunc(b: &[u8]) -> String {
        let s = String::from_utf8_lossy(&b[..b.len().min(32)]).into_owned();
        if b.len() > 32 {
            format!("{s}…")
        } else {
            s
        }
    }
    match req {
        Request::Get { key } | Request::Delete { key } => trunc(key),
        Request::Put { key, .. } => trunc(key),
        Request::Scan { from, limit } => format!("{}..+{}", trunc(from), limit),
        Request::Batch { subs } => format!("batch[{}]", subs.len()),
        _ => String::new(),
    }
}

/// The `Stats` payload: the engine's report wrapped with serving-layer
/// totals, as one JSON object.
fn stats_json(shared: &Shared) -> String {
    let engine = serde_json::to_value(&shared.db.stats_report())
        .unwrap_or_else(|_| Value::Object(Vec::new()));
    let server = Value::Object(vec![
        (
            "requests".to_string(),
            Value::from(shared.requests.load(Ordering::Relaxed)),
        ),
        (
            "protocol_errors".to_string(),
            Value::from(shared.protocol_errors.load(Ordering::Relaxed)),
        ),
        (
            "conns_active".to_string(),
            Value::from(shared.active.load(Ordering::Relaxed)),
        ),
        (
            "conns_accepted".to_string(),
            Value::from(shared.conns_accepted.load(Ordering::Relaxed)),
        ),
        (
            "conns_refused".to_string(),
            Value::from(shared.conns_refused.load(Ordering::Relaxed)),
        ),
        (
            "quota_throttled".to_string(),
            Value::from(shared.quota_throttled.load(Ordering::Relaxed)),
        ),
        (
            "tenant_throttled".to_string(),
            Value::from(shared.tenant_throttled.load(Ordering::Relaxed)),
        ),
        (
            "bytes_in".to_string(),
            Value::from(shared.bytes_in.load(Ordering::Relaxed)),
        ),
        (
            "bytes_out".to_string(),
            Value::from(shared.bytes_out.load(Ordering::Relaxed)),
        ),
    ]);
    let root = Value::Object(vec![
        ("engine".to_string(), engine),
        ("server".to_string(), server),
    ]);
    serde_json::to_string(&root).unwrap_or_else(|_| "{}".to_string())
}

fn finish(shared: &Shared, conn: Conn) {
    let cause = conn.closing.unwrap_or(ConnCloseCause::ClientClosed);
    shared.conns_closed.fetch_add(1, Ordering::Relaxed);
    shared.active.fetch_sub(1, Ordering::Relaxed);
    shared
        .metrics
        .conns_active
        .set(shared.active.load(Ordering::Relaxed) as i64);
    shared.obs.emit(|| Event::ConnClosed {
        conn: conn.id,
        cause,
        requests: conn.requests,
        bytes_in: conn.bytes_in,
        bytes_out: conn.bytes_out,
    });
    // Drop closes the socket.
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcache_core::{EngineConfig, Strategy};
    use adcache_lsm::{MemStorage, Options};
    use bytes::Bytes;

    fn test_shared(tweak: impl FnOnce(&mut ServerConfig)) -> Arc<Shared> {
        let db = CachedDb::new(
            Options::small(),
            Arc::new(MemStorage::new()),
            EngineConfig::new(Strategy::AdCache, 1 << 20),
        )
        .unwrap();
        for i in 0..512u64 {
            db.load(
                Bytes::from(format!("key{i:05}")),
                Bytes::from(vec![7u8; 64]),
            )
            .unwrap();
        }
        db.db().flush().unwrap();
        let mut cfg = ServerConfig::default();
        tweak(&mut cfg);
        let obs = db.obs();
        Arc::new(Shared {
            metrics: Metrics::new(&obs),
            telemetry: obs.is_enabled(),
            obs,
            db: Arc::new(db),
            cfg,
            shutdown: AtomicBool::new(false),
            active: AtomicU64::new(0),
            conn_seq: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            conns_accepted: AtomicU64::new(0),
            conns_closed: AtomicU64::new(0),
            conns_refused: AtomicU64::new(0),
            quota_throttled: AtomicU64::new(0),
            tenant_throttled: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            tenants: RwLock::new(BTreeMap::new()),
        })
    }

    /// A worker-side `Conn` over a real loopback socket pair; the peer end
    /// is returned so tests can read what the server flushes.
    fn conn_pair() -> (Conn, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let peer = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (stream, _) = listener.accept().unwrap();
        stream.set_nonblocking(true).unwrap();
        let conn = Conn {
            id: 0,
            stream,
            rbuf: Vec::new(),
            wq: WriteQueue::new(),
            last_active: Instant::now(),
            read_at: Instant::now(),
            last_read_ns: 0,
            requests: 0,
            bytes_in: 0,
            bytes_out: 0,
            tokens: 0.0,
            tokens_at: Instant::now(),
            throttled: 0,
            tenant: None,
            closing: None,
        };
        (conn, peer)
    }

    /// Regression (backpressure bypass): one buffered burst of pipelined
    /// SCANs must stop executing once the reply backlog reaches
    /// `max_write_buffer`, leaving the remaining frames in `rbuf`. Before
    /// the fix, `drain_buffered` executed *every* buffered frame — the
    /// cap was only checked before the socket read — so this burst grew
    /// the write buffer to ~10 MiB and the assertion fails.
    #[test]
    fn drain_buffered_respects_write_buffer_cap() {
        let cap = 64 << 10;
        let shared = test_shared(|c| c.max_write_buffer = cap);
        let (mut conn, _peer) = conn_pair();
        // 256 pipelined scans; each reply carries 512 entries of ~80
        // bytes (~41 KiB), so two replies cross the 64 KiB cap and ~254
        // frames must stay unexecuted.
        for i in 0..256u64 {
            protocol::encode_request(
                &mut conn.rbuf,
                i,
                &Request::Scan {
                    from: Bytes::from_static(b"key"),
                    limit: 512,
                },
            );
        }
        let rbuf_before = conn.rbuf.len();
        drain_buffered(&shared, &mut conn, true);
        // At most the cap plus the single reply that crossed it.
        let one_reply = 64 << 10;
        assert!(
            conn.pending_write() <= cap + one_reply,
            "write buffer grew past cap + one reply: {} > {}",
            conn.pending_write(),
            cap + one_reply
        );
        assert!(
            !conn.rbuf.is_empty() && conn.rbuf.len() < rbuf_before,
            "unexecuted frames must stay buffered (got {} of {} bytes left)",
            conn.rbuf.len(),
            rbuf_before
        );
        // Once the client drains (the queue empties), the rest executes.
        conn.wq.clear();
        drain_buffered(&shared, &mut conn, true);
        assert!(conn.pending_write() > 0, "resumed executing after drain");
    }

    /// The converse of the regression above: without the in-loop cap
    /// check (the pre-fix behavior, still used deliberately on the
    /// shutdown-drain path) the same burst executes in full and the
    /// backlog blows straight past the cap — which is exactly why the
    /// serving path needs `enforce_cap`.
    #[test]
    fn drain_without_cap_is_unbounded() {
        let cap = 64 << 10;
        let shared = test_shared(|c| c.max_write_buffer = cap);
        let (mut conn, _peer) = conn_pair();
        for i in 0..64u64 {
            protocol::encode_request(
                &mut conn.rbuf,
                i,
                &Request::Scan {
                    from: Bytes::from_static(b"key"),
                    limit: 512,
                },
            );
        }
        drain_buffered(&shared, &mut conn, false);
        assert!(conn.rbuf.is_empty(), "uncapped drain executes everything");
        assert!(
            conn.pending_write() > 4 * cap,
            "pre-fix behavior: backlog {} far exceeds the {} cap",
            conn.pending_write(),
            cap
        );
    }

    /// Pins the documented quota cost table to the implementation
    /// (regression for the doc/code drift where the docs promised
    /// `value_len/1024` and `limit/16`).
    #[test]
    fn quota_cost_table_is_pinned() {
        let get = Request::Get {
            key: Bytes::from_static(b"k"),
        };
        let put = |len: usize| Request::Put {
            key: Bytes::from_static(b"k"),
            value: Bytes::from(vec![0u8; len]),
        };
        let scan = |limit: u32| Request::Scan {
            from: Bytes::from_static(b"k"),
            limit,
        };
        assert_eq!(quota_cost(&get), Some(1.0));
        assert_eq!(
            quota_cost(&Request::Delete {
                key: Bytes::from_static(b"k")
            }),
            Some(4.0)
        );
        // PUT: 4 + value_len/128.
        assert_eq!(quota_cost(&put(0)), Some(4.0));
        assert_eq!(quota_cost(&put(1024)), Some(12.0));
        // SCAN: 1 + limit/2.
        assert_eq!(quota_cost(&scan(0)), Some(1.0));
        assert_eq!(quota_cost(&scan(512)), Some(257.0));
        // BATCH: sum of subs (quota-exempt subs contribute zero).
        let batch = Request::Batch {
            subs: vec![Request::Ping, get.clone(), put(256), scan(100)],
        };
        assert_eq!(quota_cost(&batch), Some(1.0 + (4.0 + 2.0) + 51.0));
        // Control plane is exempt.
        assert_eq!(quota_cost(&Request::Ping), None);
        assert_eq!(quota_cost(&Request::Stats), None);
        assert_eq!(quota_cost(&Request::Shutdown), None);
        assert_eq!(quota_cost(&Request::Auth { tenant: 7 }), None);
        assert_eq!(
            quota_cost(&Request::Metrics {
                format: MetricsFormat::Json
            }),
            None
        );
    }

    /// WriteQueue bookkeeping: segment sealing, partial advances across
    /// segment boundaries, and iovec assembly.
    #[test]
    fn write_queue_segments_and_advances() {
        let mut wq = WriteQueue::new();
        assert!(wq.is_empty());
        // Fill past the seal threshold so at least two segments exist.
        let frame = vec![0xABu8; 16 << 10];
        for _ in 0..6 {
            wq.encode_with(|out| out.extend_from_slice(&frame));
        }
        assert_eq!(wq.pending(), 6 * (16 << 10));
        assert!(wq.segs.len() >= 2, "tail must seal past SEAL_BYTES");
        let total: usize = wq.slices().iter().map(|s| s.len()).sum();
        assert_eq!(total, wq.pending());
        // Partial advance inside the first segment...
        wq.advance(10);
        assert_eq!(wq.pending(), 6 * (16 << 10) - 10);
        assert_eq!(wq.head, 10);
        // ...then across a segment boundary.
        let first_left = wq.segs[0].len() - wq.head;
        wq.advance(first_left + 5);
        assert_eq!(wq.head, 5);
        let total: usize = wq.slices().iter().map(|s| s.len()).sum();
        assert_eq!(total, wq.pending());
        // Drain fully.
        wq.advance(wq.pending());
        assert!(wq.is_empty());
        assert!(wq.front_chunk().is_none());
        // Spare reuse: the next encode reuses a retired segment.
        wq.encode_with(|out| out.extend_from_slice(b"tail"));
        assert_eq!(wq.pending(), 4);
    }

    /// Vectored flush writes every buffered byte and the peer reads the
    /// frames back intact and in order.
    #[test]
    fn flush_writes_vectored_round_trip() {
        let shared = test_shared(|_| {});
        let (mut conn, mut peer) = conn_pair();
        let mut expect = Vec::new();
        for i in 0..200u64 {
            let resp = Response::Value(Bytes::from(format!("value-{i:04}")));
            conn.wq.encode_with(|out| encode_response(out, i, &resp));
            encode_response(&mut expect, i, &resp);
        }
        peer.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut got = Vec::new();
        let mut scratch = [0u8; 4096];
        while got.len() < expect.len() {
            flush_writes(&shared, &mut conn);
            match peer.read(&mut scratch) {
                Ok(0) => break,
                Ok(n) => got.extend_from_slice(&scratch[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(e) => panic!("peer read: {e}"),
            }
        }
        assert_eq!(got, expect, "flushed bytes must match frame for frame");
        assert!(conn.wq.is_empty());
    }
}
