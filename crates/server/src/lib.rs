//! # adcache-server — network serving for the AdCache engine
//!
//! The paper evaluates AdCache inside one process; this crate puts the
//! engine behind a socket so cache behavior can be measured under real
//! network concurrency. Three pieces:
//!
//! - [`protocol`] — a length-prefixed binary wire format (GET / PUT /
//!   DELETE / SCAN / STATS / PING / SHUTDOWN) designed for pipelining:
//!   frames are self-delimiting, ids are echoed, replies come in request
//!   order.
//! - [`server`] — a thread-per-core TCP front-end over a shared
//!   [`adcache_core::CachedDb`]: shared accept loop, worker-owned
//!   connections, read-side backpressure, connection limits, idle
//!   reaping, and graceful drain on shutdown.
//! - [`loadgen`] — a closed-loop / open-loop load generator replaying
//!   `adcache-workload` streams over the wire and reporting throughput
//!   plus p50/p99/p999 round-trip latency.
//!
//! ```no_run
//! use adcache_core::{CachedDb, EngineConfig, Strategy};
//! use adcache_lsm::{MemStorage, Options};
//! use adcache_server::{LoadgenConfig, Server, ServerConfig};
//! use std::sync::Arc;
//!
//! let db = Arc::new(CachedDb::new(
//!     Options::small(),
//!     Arc::new(MemStorage::new()),
//!     EngineConfig::new(Strategy::AdCache, 1 << 20),
//! ).unwrap());
//! let server = Server::start(db, ServerConfig {
//!     addr: "127.0.0.1:0".into(),
//!     ..Default::default()
//! }).unwrap();
//! let report = adcache_server::loadgen::run(&LoadgenConfig {
//!     addr: server.local_addr().to_string(),
//!     ops: 10_000,
//!     ..Default::default()
//! }).unwrap();
//! assert_eq!(report.protocol_errors, 0);
//! server.shutdown();
//! ```

#![warn(missing_docs)]

pub mod loadgen;
pub mod protocol;
pub mod server;

pub use loadgen::{classify_error, request_of, Client, LoadReport, LoadgenConfig, NetSink};
pub use protocol::{
    decode_request, decode_response, encode_request, encode_response, FrameError, MetricsFormat,
    Opcode, Progress, Request, Response, Status,
};
pub use server::{ServeReport, Server, ServerConfig, ServerHandle};
