//! The network load generator.
//!
//! Replays `adcache-workload` operation streams over the wire in two
//! shapes:
//!
//! - **Closed loop** (`target_qps: None`): N connections, each a thread
//!   that issues one request, waits for its reply, and immediately issues
//!   the next. Throughput is whatever the server sustains; latency is
//!   per-request round-trip time.
//! - **Open loop** (`target_qps: Some(q)`): the target rate is split
//!   across connections and each thread *schedules* sends at fixed
//!   intervals regardless of replies, pipelining over its socket. Latency
//!   then includes queueing delay — the honest number under overload.
//!
//! Both modes verify the reply stream: the server answers in request
//! order, so every decoded response id must equal the id at the head of
//! the sender's outstanding queue. Any mismatch (lost, reordered, or
//! conjured reply) counts as a protocol error and fails the run report.

use crate::protocol::{
    decode_response, encode_request, MetricsFormat, Opcode, Progress, Request, Response,
    DEFAULT_MAX_FRAME, MAX_BATCH_SUBS,
};
use adcache_obs::Histogram;
use adcache_workload::{
    AdversaryConfig, AdversaryGen, AttackPlan, Mix, OpSink, Operation, WorkloadConfig, WorkloadGen,
};
use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// One blocking protocol client: request/response over a `TcpStream`.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
    rbuf: Vec<u8>,
    max_frame: usize,
}

fn violation(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

impl Client {
    /// Connects (blocking socket, Nagle off).
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            next_id: 1,
            rbuf: Vec::new(),
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    /// Sends `req` and blocks for its reply, verifying the echoed id.
    pub fn call(&mut self, req: &Request) -> std::io::Result<Response> {
        let id = self.next_id;
        self.next_id += 1;
        let mut frame = Vec::new();
        encode_request(&mut frame, id, req);
        self.stream.write_all(&frame)?;
        let (got, resp) = self.read_frame(req.opcode())?;
        if got != id {
            return Err(violation(format!("reply id {got}, expected {id}")));
        }
        Ok(resp)
    }

    /// Reads one complete response frame (blocking).
    fn read_frame(&mut self, awaiting: Opcode) -> std::io::Result<(u64, Response)> {
        let mut chunk = [0u8; 64 << 10];
        loop {
            match decode_response(&self.rbuf, self.max_frame, awaiting) {
                Progress::Frame(Ok((id, resp)), consumed) => {
                    self.rbuf.drain(..consumed);
                    return Ok((id, resp));
                }
                Progress::Frame(Err((id, err)), _) => {
                    return Err(violation(format!("undecodable reply to {id}: {err}")));
                }
                Progress::Fatal(err) => {
                    return Err(violation(format!("broken framing from server: {err}")));
                }
                Progress::Incomplete => {}
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed mid-reply",
                ));
            }
            self.rbuf.extend_from_slice(&chunk[..n]);
        }
    }

    /// Binds this connection to `tenant` with an `AUTH` handshake.
    pub fn auth(&mut self, tenant: u32) -> std::io::Result<()> {
        match self.call(&Request::Auth { tenant })? {
            Response::Ok => Ok(()),
            other => Err(violation(format!("auth answered {other:?}"))),
        }
    }

    /// Asks the server to drain and exit; returns once acknowledged.
    pub fn shutdown_server(&mut self) -> std::io::Result<()> {
        match self.call(&Request::Shutdown)? {
            Response::Ok => Ok(()),
            other => Err(violation(format!("shutdown answered {other:?}"))),
        }
    }

    /// Fetches the server's stats JSON.
    pub fn stats(&mut self) -> std::io::Result<String> {
        match self.call(&Request::Stats)? {
            Response::Stats(json) => Ok(json),
            other => Err(violation(format!("stats answered {other:?}"))),
        }
    }

    /// Fetches the server's metrics registry in the requested export
    /// format. Errors with the server's message when telemetry is off.
    pub fn metrics(&mut self, format: MetricsFormat) -> std::io::Result<String> {
        match self.call(&Request::Metrics { format })? {
            Response::Metrics(text) => Ok(text),
            Response::Error(msg) => Err(violation(format!("metrics refused: {msg}"))),
            other => Err(violation(format!("metrics answered {other:?}"))),
        }
    }
}

/// Maps a workload operation onto its wire request.
pub fn request_of(op: &Operation) -> Request {
    match op {
        Operation::Get { key } => Request::Get { key: key.clone() },
        Operation::Scan { from, len } => Request::Scan {
            from: from.clone(),
            limit: *len as u32,
        },
        Operation::Put { key, value } => Request::Put {
            key: key.clone(),
            value: value.clone(),
        },
        Operation::Delete { key } => Request::Delete { key: key.clone() },
    }
}

/// Buckets a server `Err` reply by cause, keyed on the message the
/// server actually sends: admission-quota rejections start with
/// `"quota"`, overload refusals mention the connection limit, and
/// anything else is attributed to the engine. Stable keys let reports,
/// assertions, and drills count each defense separately.
pub fn classify_error(msg: &str) -> &'static str {
    if msg.starts_with("quota") {
        "quota"
    } else if msg.contains("connection limit") {
        "overload"
    } else {
        "engine"
    }
}

/// A [`Client`] as an operation sink, so any generated or recorded
/// workload replays over the wire exactly as it would in-process.
pub struct NetSink {
    client: Client,
    /// Round-trip latencies of every applied operation.
    pub latency: Histogram,
    /// `Get`s that found nothing (not errors).
    pub not_found: u64,
    /// Operations the server answered with an `Err` frame.
    pub server_errors: u64,
    /// `server_errors` split by [`classify_error`] cause.
    pub errors_by_cause: BTreeMap<String, u64>,
}

impl NetSink {
    /// Wraps a connected client.
    pub fn new(client: Client) -> Self {
        NetSink {
            client,
            latency: Histogram::new(),
            not_found: 0,
            server_errors: 0,
            errors_by_cause: BTreeMap::new(),
        }
    }

    /// The wrapped client back (e.g. to send `Shutdown`).
    pub fn into_client(self) -> Client {
        self.client
    }
}

impl NetSink {
    /// Books one sub-reply into the per-sink tallies.
    fn account(&mut self, resp: &Response) {
        match resp {
            Response::NotFound => self.not_found += 1,
            Response::Error(msg) => {
                self.server_errors += 1;
                *self
                    .errors_by_cause
                    .entry(classify_error(msg).to_string())
                    .or_insert(0) += 1;
            }
            _ => {}
        }
    }
}

impl OpSink for NetSink {
    type Error = std::io::Error;

    fn apply(&mut self, op: &Operation) -> Result<(), Self::Error> {
        let req = request_of(op);
        let start = Instant::now();
        let resp = self.client.call(&req)?;
        self.latency.record(start.elapsed().as_nanos() as u64);
        self.account(&resp);
        Ok(())
    }

    /// Ships the whole group as one `Batch` frame: one header, one
    /// round trip, one in-order multi-reply. Verifies the reply carries
    /// exactly one sub-response per sub-request with matching opcode
    /// echoes in FIFO order; any mismatch is a protocol violation
    /// (`InvalidData`). Latency records the batch round trip once.
    fn apply_batch(&mut self, ops: &[Operation]) -> Result<(), Self::Error> {
        if ops.len() <= 1 {
            return match ops {
                [op] => self.apply(op),
                _ => Ok(()),
            };
        }
        let subs: Vec<Request> = ops.iter().map(request_of).collect();
        let expected: Vec<Opcode> = subs.iter().map(|s| s.opcode()).collect();
        let start = Instant::now();
        let resp = self.client.call(&Request::Batch { subs })?;
        self.latency.record(start.elapsed().as_nanos() as u64);
        let replies = match resp {
            Response::Batch(replies) => replies,
            other => return Err(violation(format!("batch answered {other:?}"))),
        };
        if replies.len() != expected.len() {
            return Err(violation(format!(
                "batch of {} answered with {} sub-replies",
                expected.len(),
                replies.len()
            )));
        }
        for (i, ((echoed, sub), want)) in replies.iter().zip(&expected).enumerate() {
            if echoed != want {
                return Err(violation(format!(
                    "batch sub {i} echoed {echoed:?}, expected {want:?}"
                )));
            }
            self.account(sub);
        }
        Ok(())
    }
}

/// What to run against the server.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address.
    pub addr: String,
    /// Concurrent connections (one thread each).
    pub connections: usize,
    /// Total operations across all connections.
    pub ops: u64,
    /// Operation mix.
    pub mix: Mix,
    /// Key-space shape, value size, skew, and base seed (connection `i`
    /// uses `seed + i` so streams differ but stay reproducible).
    pub workload: WorkloadConfig,
    /// `Some(q)`: open loop at `q` ops/s overall; `None`: closed loop.
    pub target_qps: Option<u64>,
    /// Sub-requests per `Batch` frame. `0` or `1` sends plain singleton
    /// frames; `N > 1` groups N consecutive ops into one batch request
    /// (one header, one round trip, one in-order multi-reply). Open loop
    /// keeps the *operation* rate: batches go out at `qps / N` slots.
    pub batch: usize,
    /// `Some`: blend hostile traffic into the run. Whole *connections*
    /// turn adversarial (not interleaved ops), mirroring real attackers
    /// and giving per-connection defenses something to bite on.
    pub adversary: Option<AdversaryConfig>,
    /// Fraction of connections that run the adversary (rounded, and at
    /// least one when `adversary` is set and the fraction is positive).
    pub adversary_frac: f64,
    /// Tenants to spread connections over. `0` or `1` is the legacy
    /// single-tenant shape: no `AUTH` handshake, everything serves the
    /// default tenant. `N > 1` assigns each connection a tenant in
    /// `1..=N` (weighted by `tenant_skew`) and binds it with `AUTH`
    /// before traffic starts.
    pub tenants: u32,
    /// `(hot, cold)` connection weights: tenant 1 is the hot tenant and
    /// receives `hot` weight, every other tenant `cold`. `(1, 1)` splits
    /// connections evenly; `(8, 1)` over 4 tenants gives tenant 1 eight
    /// elevenths of the connections — the noisy-neighbor shape.
    pub tenant_skew: (u32, u32),
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:4400".to_string(),
            connections: 8,
            ops: 100_000,
            mix: Mix::new(40.0, 25.0, 5.0, 30.0),
            workload: WorkloadConfig::default(),
            target_qps: None,
            batch: 0,
            adversary: None,
            adversary_frac: 0.0,
            tenants: 0,
            tenant_skew: (1, 1),
        }
    }
}

/// What a load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Operations completed with a verified in-order reply.
    pub ops: u64,
    /// `Get`s that found nothing.
    pub not_found: u64,
    /// Operations the server answered with an `Err` frame.
    pub server_errors: u64,
    /// Client-side protocol violations (lost / misordered / undecodable
    /// replies). Must be zero on a healthy run.
    pub protocol_errors: u64,
    /// `server_errors` split by [`classify_error`] cause, so a run can
    /// tell quota throttling apart from genuine engine failures.
    pub errors_by_cause: BTreeMap<String, u64>,
    /// Operations issued by adversarial connections.
    pub adversary_ops: u64,
    /// Wall-clock run time.
    pub elapsed: Duration,
    /// Achieved throughput.
    pub qps: f64,
    /// Round-trip latency distribution (open loop: includes queueing).
    pub latency: Histogram,
    /// Latency of legitimate connections only — the victim's view of an
    /// attack. Equals `latency` when no adversary is configured.
    pub legit_latency: Histogram,
    /// Round-trip latency split by tenant. Empty on single-tenant runs;
    /// with `tenants > 1` one entry per tenant that issued traffic, so a
    /// noisy-neighbor drill can read the quiet tenant's p99 directly.
    pub latency_by_tenant: BTreeMap<u32, Histogram>,
}

impl LoadReport {
    /// `p50/p95/p99/p999/max` in nanoseconds.
    pub fn tail_ns(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.latency.quantile(0.50),
            self.latency.quantile(0.95),
            self.latency.quantile(0.99),
            self.latency.quantile(0.999),
            self.latency.max(),
        )
    }

    /// Human-readable one-screen summary.
    pub fn render(&self) -> String {
        let (p50, p95, p99, p999, max) = self.tail_ns();
        let us = |ns: u64| ns as f64 / 1_000.0;
        let mut out = format!(
            "ops        {}\n\
             errors     {} server, {} protocol, {} not-found\n\
             elapsed    {:.3} s\n\
             throughput {:.0} ops/s\n\
             latency    p50 {:.1} us | p95 {:.1} us | p99 {:.1} us | p999 {:.1} us | max {:.1} us",
            self.ops,
            self.server_errors,
            self.protocol_errors,
            self.not_found,
            self.elapsed.as_secs_f64(),
            self.qps,
            us(p50),
            us(p95),
            us(p99),
            us(p999),
            us(max)
        );
        if !self.errors_by_cause.is_empty() {
            let causes: Vec<String> = self
                .errors_by_cause
                .iter()
                .map(|(cause, n)| format!("{cause} {n}"))
                .collect();
            out.push_str(&format!("\nerr causes {}", causes.join(" | ")));
        }
        if self.adversary_ops > 0 {
            out.push_str(&format!(
                "\nadversary  {} ops\nlegit      p50 {:.1} us | p99 {:.1} us | p999 {:.1} us",
                self.adversary_ops,
                us(self.legit_latency.quantile(0.50)),
                us(self.legit_latency.quantile(0.99)),
                us(self.legit_latency.quantile(0.999)),
            ));
        }
        for (tenant, lat) in &self.latency_by_tenant {
            out.push_str(&format!(
                "\ntenant {tenant:<4} {} ops | p50 {:.1} us | p99 {:.1} us",
                lat.count(),
                us(lat.quantile(0.50)),
                us(lat.quantile(0.99)),
            ));
        }
        out
    }
}

struct ThreadOutcome {
    ops: u64,
    not_found: u64,
    server_errors: u64,
    protocol_errors: u64,
    errors_by_cause: BTreeMap<String, u64>,
    adversary_ops: u64,
    latency: Histogram,
    legit_latency: Histogram,
}

/// The tenant connection `i` of `conns` serves: connections are stretched
/// over the weight line `[hot, cold, cold, ...]` so tenant 1 (hot) gets
/// `hot / (hot + (tenants-1)·cold)` of them. Returns 0 (default tenant,
/// no `AUTH`) for single-tenant configs.
fn tenant_of_conn(i: usize, conns: usize, tenants: u32, skew: (u32, u32)) -> u32 {
    if tenants <= 1 {
        return 0;
    }
    let hot = u64::from(skew.0.max(1));
    let cold = u64::from(skew.1.max(1));
    let total = hot + cold * u64::from(tenants - 1);
    // Midpoint of connection i's slice of the weight line.
    let x = (2 * i as u64 + 1) * total / (2 * conns as u64).max(1);
    if x < hot {
        1
    } else {
        (2 + (x - hot) / cold).min(u64::from(tenants)) as u32
    }
}

/// One connection's operation stream: either legitimate workload ops or
/// an attack generator. Decided per connection, never per op.
enum OpSource {
    Legit(Box<WorkloadGen>, Mix),
    Adversary(Box<AdversaryGen>),
}

impl OpSource {
    fn next_op(&mut self) -> Operation {
        match self {
            OpSource::Legit(gen, mix) => gen.next_op(mix),
            OpSource::Adversary(gen) => gen.next_op(),
        }
    }

    fn is_legit(&self) -> bool {
        matches!(self, OpSource::Legit(..))
    }
}

/// Runs the configured load and aggregates per-connection results.
pub fn run(cfg: &LoadgenConfig) -> std::io::Result<LoadReport> {
    let conns = cfg.connections.max(1);
    let adv_conns = match &cfg.adversary {
        Some(_) if cfg.adversary_frac > 0.0 => {
            ((cfg.adversary_frac * conns as f64).round() as usize).clamp(1, conns)
        }
        _ => 0,
    };
    // Collision mining is the expensive part of plan construction; do it
    // once and share the plan across adversarial connections.
    let plan = cfg
        .adversary
        .as_ref()
        .map(AttackPlan::build)
        .unwrap_or_default();
    let per_conn = cfg.ops / conns as u64;
    let remainder = cfg.ops % conns as u64;
    let started = Instant::now();
    let mut handles = Vec::with_capacity(conns);
    for i in 0..conns {
        let cfg = cfg.clone();
        let plan = plan.clone();
        let ops = per_conn + u64::from((i as u64) < remainder);
        let tenant = tenant_of_conn(i, conns, cfg.tenants, cfg.tenant_skew);
        handles.push(std::thread::spawn(
            move || -> std::io::Result<(u32, ThreadOutcome)> {
                let mut source = if i < adv_conns {
                    let adv = cfg.adversary.clone().expect("adv_conns implies adversary");
                    let adv = AdversaryConfig {
                        seed: adv.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                        ..adv
                    };
                    OpSource::Adversary(Box::new(AdversaryGen::new(adv, plan)))
                } else {
                    OpSource::Legit(
                        Box::new(WorkloadGen::new(WorkloadConfig {
                            seed: cfg.workload.seed + i as u64,
                            ..cfg.workload
                        })),
                        cfg.mix,
                    )
                };
                let batch = cfg.batch.clamp(1, MAX_BATCH_SUBS);
                let outcome = match cfg.target_qps {
                    None => closed_loop(&cfg.addr, tenant, &mut source, ops, batch),
                    Some(q) => {
                        let rate = (q / conns as u64).max(1);
                        open_loop(&cfg.addr, tenant, &mut source, ops, rate, batch)
                    }
                }?;
                Ok((tenant, outcome))
            },
        ));
    }
    let mut report = LoadReport {
        ops: 0,
        not_found: 0,
        server_errors: 0,
        protocol_errors: 0,
        errors_by_cause: BTreeMap::new(),
        adversary_ops: 0,
        elapsed: Duration::ZERO,
        qps: 0.0,
        latency: Histogram::new(),
        legit_latency: Histogram::new(),
        latency_by_tenant: BTreeMap::new(),
    };
    for h in handles {
        let (tenant, outcome) = h
            .join()
            .map_err(|_| violation("loadgen thread panicked".to_string()))??;
        if cfg.tenants > 1 {
            report
                .latency_by_tenant
                .entry(tenant)
                .or_default()
                .merge(&outcome.latency);
        }
        report.ops += outcome.ops;
        report.not_found += outcome.not_found;
        report.server_errors += outcome.server_errors;
        report.protocol_errors += outcome.protocol_errors;
        for (cause, n) in outcome.errors_by_cause {
            *report.errors_by_cause.entry(cause).or_insert(0) += n;
        }
        report.adversary_ops += outcome.adversary_ops;
        report.latency.merge(&outcome.latency);
        report.legit_latency.merge(&outcome.legit_latency);
    }
    report.elapsed = started.elapsed();
    report.qps = report.ops as f64 / report.elapsed.as_secs_f64().max(1e-9);
    Ok(report)
}

fn closed_loop(
    addr: &str,
    tenant: u32,
    source: &mut OpSource,
    ops: u64,
    batch: usize,
) -> std::io::Result<ThreadOutcome> {
    let mut client = Client::connect(addr)?;
    if tenant != 0 {
        client.auth(tenant)?;
    }
    let mut sink = NetSink::new(client);
    let mut protocol_errors = 0u64;
    let mut done = 0u64;
    let mut remaining = ops;
    let mut group = Vec::with_capacity(batch);
    while remaining > 0 {
        let take = (batch as u64).min(remaining);
        group.clear();
        for _ in 0..take {
            group.push(source.next_op());
        }
        let applied = if take == 1 {
            sink.apply(&group[0])
        } else {
            sink.apply_batch(&group)
        };
        match applied {
            Ok(()) => done += take,
            // A rejected batch loses every sub in it.
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => protocol_errors += take,
            Err(e) => return Err(e),
        }
        remaining -= take;
    }
    let legit = source.is_legit();
    Ok(ThreadOutcome {
        ops: done,
        not_found: sink.not_found,
        server_errors: sink.server_errors,
        protocol_errors,
        errors_by_cause: sink.errors_by_cause,
        adversary_ops: if legit { 0 } else { done },
        legit_latency: if legit {
            sink.latency.clone()
        } else {
            Histogram::new()
        },
        latency: sink.latency,
    })
}

/// One in-flight open-loop request awaiting its reply.
struct Pending {
    id: u64,
    opcode: Opcode,
    /// Expected sub-reply opcodes, in order, when `opcode` is `Batch`;
    /// empty for singleton requests.
    subs: Vec<Opcode>,
    sent_at: Instant,
}

/// Cap on outstanding open-loop requests per connection. Pure open loop
/// has unbounded queues: when the server falls behind, every subsequent
/// op's measured latency is dominated by the standing backlog, so p99
/// degenerates into "how long was the phase" — enormous and unstable
/// run to run. Bounding the in-flight window keeps the measurement in
/// the bounded-queue regime (p99 ≈ queue cap × service time) while the
/// send clock still ignores individual replies. It also smooths
/// catch-up bursts after a stall, which otherwise dump hundreds of ops
/// into the socket at once and blow through per-connection token quotas
/// that the same traffic respects at its steady rate.
const OPEN_LOOP_MAX_INFLIGHT: usize = 128;

fn open_loop(
    addr: &str,
    tenant: u32,
    source: &mut OpSource,
    ops: u64,
    rate_per_sec: u64,
    batch: usize,
) -> std::io::Result<ThreadOutcome> {
    // The AUTH handshake runs blocking (request/response) before the
    // socket flips nonblocking for the pipelined phase.
    let mut client = Client::connect(addr)?;
    if tenant != 0 {
        client.auth(tenant)?;
    }
    let Client { stream, .. } = client;
    stream.set_nonblocking(true)?;
    let interval = Duration::from_nanos(1_000_000_000 / rate_per_sec.max(1));
    let started = Instant::now();
    let legit = source.is_legit();

    let mut out = ThreadOutcome {
        ops: 0,
        not_found: 0,
        server_errors: 0,
        protocol_errors: 0,
        errors_by_cause: BTreeMap::new(),
        adversary_ops: 0,
        latency: Histogram::new(),
        legit_latency: Histogram::new(),
    };
    let mut pending: VecDeque<Pending> = VecDeque::new();
    let mut rbuf: Vec<u8> = Vec::new();
    let mut wbuf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 64 << 10];
    let mut next_id = 1u64;
    let mut sent = 0u64;
    let mut stream = stream;
    // Backoff nap while waiting on replies. With 1k+ threads on few
    // cores a fixed short poll is indistinguishable from a spin, so
    // stalled threads double their nap up to a cap and reset the
    // moment anything moves.
    const NAP_FLOOR: Duration = Duration::from_micros(100);
    const NAP_CEIL: Duration = Duration::from_millis(10);
    let mut nap = NAP_FLOOR;

    while out.ops + out.protocol_errors < ops {
        // Track whether this pass accomplishes anything. When it doesn't
        // (no slot due, socket not writable, no bytes to read) we must
        // sleep rather than spin: a thousand open-loop threads busy-polling
        // non-blocking sockets starves the very server we're measuring.
        let mut progressed = false;
        // Schedule sends by wall clock, independent of replies — but
        // never more than the in-flight cap ahead of them. With batching
        // the *operation* clock is unchanged: a frame of N subs only goes
        // out once N ops are due, so batches leave at `rate / N` slots.
        let due = (started.elapsed().as_nanos() / interval.as_nanos().max(1)) as u64 + 1;
        while sent < ops && pending.len() < OPEN_LOOP_MAX_INFLIGHT {
            let take = (batch as u64).min(ops - sent);
            if due < sent + take {
                break;
            }
            let id = next_id;
            next_id += 1;
            if take == 1 {
                let req = request_of(&source.next_op());
                encode_request(&mut wbuf, id, &req);
                pending.push_back(Pending {
                    id,
                    opcode: req.opcode(),
                    subs: Vec::new(),
                    sent_at: Instant::now(),
                });
            } else {
                let subs: Vec<Request> = (0..take).map(|_| request_of(&source.next_op())).collect();
                let echo: Vec<Opcode> = subs.iter().map(|s| s.opcode()).collect();
                encode_request(&mut wbuf, id, &Request::Batch { subs });
                pending.push_back(Pending {
                    id,
                    opcode: Opcode::Batch,
                    subs: echo,
                    sent_at: Instant::now(),
                });
            }
            sent += take;
            progressed = true;
        }
        // Push out whatever the socket accepts.
        if !wbuf.is_empty() {
            match stream.write(&wbuf) {
                Ok(n) => {
                    wbuf.drain(..n);
                    progressed |= n > 0;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Drain replies, verifying FIFO order against the pending queue.
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed with replies outstanding",
                ));
            }
            Ok(n) => {
                rbuf.extend_from_slice(&chunk[..n]);
                progressed |= n > 0;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
        while let Some(head) = pending.front() {
            match decode_response(&rbuf, DEFAULT_MAX_FRAME, head.opcode) {
                Progress::Incomplete => break,
                Progress::Fatal(err) => {
                    return Err(violation(format!("broken framing from server: {err}")));
                }
                Progress::Frame(decoded, consumed) => {
                    rbuf.drain(..consumed);
                    let head = pending.pop_front().expect("head exists");
                    let span = (head.subs.len() as u64).max(1);
                    match decoded {
                        Ok((id, resp)) if id == head.id => {
                            let rtt = head.sent_at.elapsed().as_nanos() as u64;
                            let account = |out: &mut ThreadOutcome, resp: &Response| match resp {
                                Response::NotFound => out.not_found += 1,
                                Response::Error(msg) => {
                                    out.server_errors += 1;
                                    *out.errors_by_cause
                                        .entry(classify_error(msg).to_string())
                                        .or_insert(0) += 1;
                                }
                                _ => {}
                            };
                            let verified = match (&head.opcode, &resp) {
                                (Opcode::Batch, Response::Batch(replies)) => {
                                    replies.len() == head.subs.len()
                                        && replies
                                            .iter()
                                            .zip(&head.subs)
                                            .all(|((echoed, _), want)| echoed == want)
                                }
                                (Opcode::Batch, _) => false,
                                _ => true,
                            };
                            if !verified {
                                out.protocol_errors += span;
                            } else {
                                out.ops += span;
                                out.latency.record(rtt);
                                if legit {
                                    out.legit_latency.record(rtt);
                                } else {
                                    out.adversary_ops += span;
                                }
                                if let Response::Batch(replies) = &resp {
                                    for (_, sub) in replies {
                                        account(&mut out, sub);
                                    }
                                } else {
                                    account(&mut out, &resp);
                                }
                            }
                        }
                        Ok((_, _)) | Err(_) => out.protocol_errors += span,
                    }
                }
            }
        }
        if progressed {
            nap = NAP_FLOOR;
        } else if out.ops + out.protocol_errors < ops {
            // Nothing moved this pass. If the line is quiet we are simply
            // ahead of the send clock: sleep straight through to the next
            // due slot (at per-thread rates of tens of ops/s that can be
            // tens of ms — polling it at µs granularity is a spin).
            // Otherwise we are waiting on the socket; back off
            // exponentially so saturated threads converge to cheap,
            // RTT-scale polls instead of starving the server.
            if wbuf.is_empty() && pending.is_empty() && sent < ops {
                let next_ns = interval.as_nanos().max(1) * u128::from(sent);
                let wait = next_ns.saturating_sub(started.elapsed().as_nanos());
                std::thread::sleep(
                    Duration::from_nanos(wait.min(50_000_000) as u64).max(NAP_FLOOR),
                );
            } else {
                std::thread::sleep(nap);
                nap = (nap * 2).min(NAP_CEIL);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_assignment_covers_all_tenants_and_respects_skew() {
        // Single-tenant configs never authenticate.
        for i in 0..8 {
            assert_eq!(tenant_of_conn(i, 8, 0, (1, 1)), 0);
            assert_eq!(tenant_of_conn(i, 8, 1, (4, 1)), 0);
        }
        // Even split: 8 connections over 4 tenants, 2 each.
        let mut counts = [0u32; 5];
        for i in 0..8 {
            let t = tenant_of_conn(i, 8, 4, (1, 1));
            assert!((1..=4).contains(&t));
            counts[t as usize] += 1;
        }
        assert_eq!(&counts[1..], &[2, 2, 2, 2]);
        // Noisy-neighbor skew: hot tenant 1 takes most connections and
        // every cold tenant still appears.
        let mut counts = [0u32; 5];
        for i in 0..22 {
            let t = tenant_of_conn(i, 22, 4, (8, 1));
            counts[t as usize] += 1;
        }
        assert!(counts[1] >= 14, "hot tenant underweighted: {counts:?}");
        for t in 2..=4 {
            assert!(counts[t] >= 1, "cold tenant {t} starved: {counts:?}");
        }
    }
}
