//! The length-prefixed binary wire protocol.
//!
//! Every frame — request or response — shares one envelope (all integers
//! little-endian):
//!
//! ```text
//! [u32 len][u64 id][u8 tag][body...]
//! ```
//!
//! `len` counts everything after the length field itself (id + tag +
//! body), so a reader needs exactly 4 bytes to learn how much more to
//! buffer; many frames can be decoded from one `read` syscall (request
//! pipelining). `id` is chosen by the client and echoed verbatim in the
//! response; the server answers each connection's requests **in order**,
//! so a client can verify it never lost or reordered a reply. `tag` is the
//! opcode on requests and the status on responses.
//!
//! Body grammar (`lp x` = `u32` length-prefixed bytes):
//!
//! | opcode     | request body        | OK response body            |
//! |------------|---------------------|-----------------------------|
//! | `Ping`     | —                   | —                           |
//! | `Get`      | `lp key`            | `lp value` (or `NotFound`)  |
//! | `Put`      | `lp key, lp value`  | —                           |
//! | `Delete`   | `lp key`            | —                           |
//! | `Scan`     | `lp from, u32 n`    | `u32 k, k × (lp key, lp v)` |
//! | `Stats`    | —                   | `lp json`                   |
//! | `Shutdown` | —                   | —                           |
//! | `Metrics`  | `u8 format`         | `lp text`                   |
//! | `Batch`    | `u32 n, n × sub`    | `u32 n, n × subreply`       |
//! | `Auth`     | `u32 tenant`        | —                           |
//!
//! `Metrics` serves the live telemetry registry; `format` selects JSON
//! (0) or Prometheus text exposition (1). A server running without
//! telemetry answers it with `Err`.
//!
//! `Batch` packs up to [`MAX_BATCH_SUBS`] data-plane sub-requests under
//! one envelope. Each `sub` is `u8 opcode` followed by that opcode's
//! request body (same grammar as the table above); only `Ping`, `Get`,
//! `Put`, `Delete`, and `Scan` may appear — control-plane opcodes and
//! nested batches are malformed. The reply is a single frame whose body
//! carries one `subreply` per sub-request, **in request order**: `u8
//! opcode` (echo), `u8 status`, then the status's body. A malformed
//! sub-request rejects the whole batch with one `Err` frame; framing
//! stays intact and the connection survives.
//!
//! `Auth` binds the connection to a tenant id for the rest of its life:
//! subsequent requests are charged to that tenant's aggregated quota and
//! served from that tenant's cache partition. Connections that never send
//! `Auth` serve the default tenant 0, so pre-tenant clients keep working
//! unchanged.
//!
//! An `Err` response carries `lp message`. Malformed input is answered
//! with a clean `Err` frame; only violations that break framing itself
//! (an oversized or torn length prefix) close the connection, because
//! after one of those the byte stream can no longer be resynchronized.

use bytes::Bytes;

/// Frame-envelope overhead after the length field: id (8) + tag (1).
pub const HEADER_AFTER_LEN: usize = 9;
/// Default ceiling on `len` (16 MiB) — far above any legitimate frame.
pub const DEFAULT_MAX_FRAME: usize = 16 << 20;
/// Ceiling on sub-requests per `Batch` frame; larger counts are malformed.
pub const MAX_BATCH_SUBS: usize = 1024;

/// Request opcodes (the `tag` byte of a request frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Liveness probe; no body.
    Ping = 0,
    /// Point lookup.
    Get = 1,
    /// Insert or overwrite.
    Put = 2,
    /// Delete a key.
    Delete = 3,
    /// Range scan.
    Scan = 4,
    /// Engine + server statistics as JSON.
    Stats = 5,
    /// Ask the server to drain and exit gracefully.
    Shutdown = 6,
    /// Live metrics registry export.
    Metrics = 7,
    /// Many data-plane sub-requests under one envelope.
    Batch = 8,
    /// Bind the connection to a tenant id.
    Auth = 9,
}

impl Opcode {
    /// Decodes the opcode byte.
    pub fn from_u8(b: u8) -> Option<Opcode> {
        Some(match b {
            0 => Opcode::Ping,
            1 => Opcode::Get,
            2 => Opcode::Put,
            3 => Opcode::Delete,
            4 => Opcode::Scan,
            5 => Opcode::Stats,
            6 => Opcode::Shutdown,
            7 => Opcode::Metrics,
            8 => Opcode::Batch,
            9 => Opcode::Auth,
            _ => return None,
        })
    }

    /// Stable lowercase label (used in metrics names and journal events).
    pub fn label(&self) -> &'static str {
        match self {
            Opcode::Ping => "ping",
            Opcode::Get => "get",
            Opcode::Put => "put",
            Opcode::Delete => "delete",
            Opcode::Scan => "scan",
            Opcode::Stats => "stats",
            Opcode::Shutdown => "shutdown",
            Opcode::Metrics => "metrics",
            Opcode::Batch => "batch",
            Opcode::Auth => "auth",
        }
    }

    /// Whether this opcode may appear as a `Batch` sub-request.
    ///
    /// Only data-plane operations batch; control-plane opcodes (`Stats`,
    /// `Shutdown`, `Metrics`) and nested batches are rejected as
    /// malformed.
    pub fn batchable(&self) -> bool {
        matches!(
            self,
            Opcode::Ping | Opcode::Get | Opcode::Put | Opcode::Delete | Opcode::Scan
        )
    }
}

/// Serialization format requested by a `Metrics` frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum MetricsFormat {
    /// The registry snapshot as pretty JSON.
    Json = 0,
    /// Prometheus text exposition format.
    Prometheus = 1,
}

impl MetricsFormat {
    /// Decodes the format byte.
    pub fn from_u8(b: u8) -> Option<MetricsFormat> {
        Some(match b {
            0 => MetricsFormat::Json,
            1 => MetricsFormat::Prometheus,
            _ => return None,
        })
    }
}

/// Response status (the `tag` byte of a response frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// The operation succeeded; the body is the opcode's payload.
    Ok = 0,
    /// A `Get` found no value (not an error).
    NotFound = 1,
    /// The operation failed; the body is `lp message`.
    Err = 2,
}

impl Status {
    /// Decodes the status byte.
    pub fn from_u8(b: u8) -> Option<Status> {
        Some(match b {
            0 => Status::Ok,
            1 => Status::NotFound,
            2 => Status::Err,
            _ => return None,
        })
    }

    /// Stable lowercase label.
    pub fn label(&self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::NotFound => "not_found",
            Status::Err => "err",
        }
    }
}

/// A decoded request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Point lookup of `key`.
    Get {
        /// Target key.
        key: Bytes,
    },
    /// Insert or overwrite `key` with `value`.
    Put {
        /// Target key.
        key: Bytes,
        /// Value payload.
        value: Bytes,
    },
    /// Delete `key`.
    Delete {
        /// Target key.
        key: Bytes,
    },
    /// Scan `limit` entries starting at `from`.
    Scan {
        /// Inclusive start key.
        from: Bytes,
        /// Maximum entries to return.
        limit: u32,
    },
    /// Engine + server statistics.
    Stats,
    /// Graceful server shutdown.
    Shutdown,
    /// Live metrics registry export.
    Metrics {
        /// Requested serialization.
        format: MetricsFormat,
    },
    /// Heterogeneous data-plane sub-requests answered with one in-order
    /// multi-reply. Subs must satisfy [`Opcode::batchable`]; the encoder
    /// does not enforce this, but the decoder rejects violations.
    Batch {
        /// Sub-requests, executed and answered in order.
        subs: Vec<Request>,
    },
    /// Bind this connection to a tenant for quota and cache routing.
    Auth {
        /// Tenant id to bind (0 is the default tenant).
        tenant: u32,
    },
}

impl Request {
    /// The request's opcode.
    pub fn opcode(&self) -> Opcode {
        match self {
            Request::Ping => Opcode::Ping,
            Request::Get { .. } => Opcode::Get,
            Request::Put { .. } => Opcode::Put,
            Request::Delete { .. } => Opcode::Delete,
            Request::Scan { .. } => Opcode::Scan,
            Request::Stats => Opcode::Stats,
            Request::Shutdown => Opcode::Shutdown,
            Request::Metrics { .. } => Opcode::Metrics,
            Request::Batch { .. } => Opcode::Batch,
            Request::Auth { .. } => Opcode::Auth,
        }
    }
}

/// A decoded response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Success with no payload (`Ping`, `Put`, `Delete`, `Shutdown`).
    Ok,
    /// A found value (`Get`).
    Value(Bytes),
    /// `Get` missed.
    NotFound,
    /// Scan results, in key order.
    Entries(Vec<(Bytes, Bytes)>),
    /// Statistics JSON text (`Stats`).
    Stats(String),
    /// Metrics registry export (`Metrics`).
    Metrics(String),
    /// In-order sub-replies to a `Batch` request. Each entry echoes the
    /// sub-request's opcode (the wire needs it to disambiguate `Ok`
    /// bodies) alongside its response.
    Batch(Vec<(Opcode, Response)>),
    /// The request failed; the message explains why.
    Error(String),
}

impl Response {
    /// The status byte this response serializes under.
    pub fn status(&self) -> Status {
        match self {
            Response::NotFound => Status::NotFound,
            Response::Error(_) => Status::Err,
            _ => Status::Ok,
        }
    }
}

/// Why a frame could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The declared frame length exceeds the configured maximum. Framing
    /// is no longer trustworthy; the connection must close.
    Oversized {
        /// The declared length.
        declared: usize,
        /// The configured ceiling.
        max: usize,
    },
    /// The frame's tag byte is not a known opcode. Framing is intact, so
    /// the connection survives after an error reply.
    UnknownOpcode(u8),
    /// The frame's tag byte is not a known status (client side).
    UnknownStatus(u8),
    /// The body does not match the opcode's grammar. Framing is intact.
    Malformed(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized { declared, max } => {
                write!(f, "frame length {declared} exceeds maximum {max}")
            }
            FrameError::UnknownOpcode(b) => write!(f, "unknown opcode {b}"),
            FrameError::UnknownStatus(b) => write!(f, "unknown status {b}"),
            FrameError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Whether a [`FrameError`] poisons the byte stream (connection must
/// close) or leaves framing intact (error reply, connection survives).
pub fn is_fatal(err: &FrameError) -> bool {
    matches!(err, FrameError::Oversized { .. })
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_lp(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

/// A cursor over a frame body.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        let Some(&b) = self.buf.get(self.pos) else {
            return Err(FrameError::Malformed("truncated u8"));
        };
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        let end = self.pos + 4;
        if end > self.buf.len() {
            return Err(FrameError::Malformed("truncated u32"));
        }
        let v = u32::from_le_bytes(self.buf[self.pos..end].try_into().unwrap());
        self.pos = end;
        Ok(v)
    }

    fn lp(&mut self) -> Result<Bytes, FrameError> {
        let n = self.u32()? as usize;
        let end = self.pos + n;
        if end > self.buf.len() {
            return Err(FrameError::Malformed("length-prefixed field overruns body"));
        }
        let b = Bytes::copy_from_slice(&self.buf[self.pos..end]);
        self.pos = end;
        Ok(b)
    }

    fn finish(self) -> Result<(), FrameError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(FrameError::Malformed("trailing bytes after body"))
        }
    }
}

fn encode_frame(out: &mut Vec<u8>, id: u64, tag: u8, body: impl FnOnce(&mut Vec<u8>)) {
    let len_at = out.len();
    put_u32(out, 0); // patched below
    out.extend_from_slice(&id.to_le_bytes());
    out.push(tag);
    body(out);
    let frame_len = (out.len() - len_at - 4) as u32;
    out[len_at..len_at + 4].copy_from_slice(&frame_len.to_le_bytes());
}

/// Writes a request's body (everything after the tag byte) to `out`.
/// Shared by top-level frames and `Batch` sub-requests.
fn put_request_body(out: &mut Vec<u8>, req: &Request) {
    match req {
        Request::Ping | Request::Stats | Request::Shutdown => {}
        Request::Get { key } | Request::Delete { key } => put_lp(out, key),
        Request::Put { key, value } => {
            put_lp(out, key);
            put_lp(out, value);
        }
        Request::Scan { from, limit } => {
            put_lp(out, from);
            put_u32(out, *limit);
        }
        Request::Metrics { format } => out.push(*format as u8),
        Request::Auth { tenant } => put_u32(out, *tenant),
        Request::Batch { subs } => {
            put_u32(out, subs.len() as u32);
            for sub in subs {
                out.push(sub.opcode() as u8);
                put_request_body(out, sub);
            }
        }
    }
}

/// Writes a response's body to `out` (sub-replies recurse through the
/// same grammar, so `Batch` bodies nest naturally — the decoder forbids
/// actual nesting).
fn put_response_body(out: &mut Vec<u8>, resp: &Response) {
    match resp {
        Response::Ok | Response::NotFound => {}
        Response::Value(v) => put_lp(out, v),
        Response::Entries(entries) => {
            put_u32(out, entries.len() as u32);
            for (k, v) in entries {
                put_lp(out, k);
                put_lp(out, v);
            }
        }
        Response::Stats(json) => put_lp(out, json.as_bytes()),
        Response::Metrics(text) => put_lp(out, text.as_bytes()),
        Response::Batch(subs) => {
            put_u32(out, subs.len() as u32);
            for (op, sub) in subs {
                out.push(*op as u8);
                out.push(sub.status() as u8);
                put_response_body(out, sub);
            }
        }
        Response::Error(msg) => put_lp(out, msg.as_bytes()),
    }
}

/// Appends one encoded request frame to `out`.
pub fn encode_request(out: &mut Vec<u8>, id: u64, req: &Request) {
    encode_frame(out, id, req.opcode() as u8, |out| {
        put_request_body(out, req)
    });
}

/// Appends one encoded response frame to `out`.
pub fn encode_response(out: &mut Vec<u8>, id: u64, resp: &Response) {
    encode_frame(out, id, resp.status() as u8, |out| {
        put_response_body(out, resp)
    });
}

/// One step of frame extraction from a streaming buffer.
#[derive(Debug, PartialEq, Eq)]
pub enum Progress<T> {
    /// A complete frame was consumed: the decoded payload (or a
    /// recoverable per-frame error) plus the bytes consumed.
    Frame(Result<(u64, T), (u64, FrameError)>, usize),
    /// Not enough buffered bytes for a complete frame yet.
    Incomplete,
    /// Framing is broken (oversized declared length); close the stream.
    Fatal(FrameError),
}

/// Splits the envelope of the first frame in `buf`, honoring `max_frame`.
fn split_envelope(buf: &[u8], max_frame: usize) -> Progress<(u8, Vec<u8>)> {
    if buf.len() < 4 {
        return Progress::Incomplete;
    }
    let declared = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
    if declared > max_frame || declared < HEADER_AFTER_LEN {
        return Progress::Fatal(FrameError::Oversized {
            declared,
            max: max_frame,
        });
    }
    if buf.len() < 4 + declared {
        return Progress::Incomplete;
    }
    let id = u64::from_le_bytes(buf[4..12].try_into().unwrap());
    let tag = buf[12];
    let body = buf[13..4 + declared].to_vec();
    Progress::Frame(Ok((id, (tag, body))), 4 + declared)
}

/// Attempts to decode one request frame from the front of `buf`.
///
/// A recoverable decode failure (unknown opcode, malformed body) still
/// consumes the frame — the caller replies with an error and keeps the
/// connection; only [`Progress::Fatal`] requires a close.
pub fn decode_request(buf: &[u8], max_frame: usize) -> Progress<Request> {
    let (id, tag, body, consumed) = match split_envelope(buf, max_frame) {
        Progress::Frame(Ok((id, (tag, body))), consumed) => (id, tag, body, consumed),
        Progress::Frame(Err(e), c) => return Progress::Frame(Err(e), c),
        Progress::Incomplete => return Progress::Incomplete,
        Progress::Fatal(e) => return Progress::Fatal(e),
    };
    let Some(op) = Opcode::from_u8(tag) else {
        return Progress::Frame(Err((id, FrameError::UnknownOpcode(tag))), consumed);
    };
    let mut r = Reader::new(&body);
    let parsed = (|| {
        let req = read_request_body(op, &mut r)?;
        r.finish()?;
        Ok(req)
    })();
    match parsed {
        Ok(req) => Progress::Frame(Ok((id, req)), consumed),
        Err(e) => Progress::Frame(Err((id, e)), consumed),
    }
}

/// Parses one request body (the opcode's grammar) from `r` without
/// requiring the reader to be exhausted — `Batch` subs share one body.
fn read_request_body(op: Opcode, r: &mut Reader<'_>) -> Result<Request, FrameError> {
    Ok(match op {
        Opcode::Ping => Request::Ping,
        Opcode::Stats => Request::Stats,
        Opcode::Shutdown => Request::Shutdown,
        Opcode::Get => Request::Get { key: r.lp()? },
        Opcode::Delete => Request::Delete { key: r.lp()? },
        Opcode::Put => Request::Put {
            key: r.lp()?,
            value: r.lp()?,
        },
        Opcode::Scan => Request::Scan {
            from: r.lp()?,
            limit: r.u32()?,
        },
        Opcode::Metrics => Request::Metrics {
            format: MetricsFormat::from_u8(r.u8()?)
                .ok_or(FrameError::Malformed("unknown metrics format"))?,
        },
        Opcode::Auth => Request::Auth { tenant: r.u32()? },
        Opcode::Batch => {
            let n = r.u32()? as usize;
            if n == 0 {
                return Err(FrameError::Malformed("empty batch"));
            }
            if n > MAX_BATCH_SUBS {
                return Err(FrameError::Malformed("batch exceeds MAX_BATCH_SUBS"));
            }
            let mut subs = Vec::with_capacity(n);
            for _ in 0..n {
                let sub_op = Opcode::from_u8(r.u8()?)
                    .ok_or(FrameError::Malformed("unknown opcode in batch"))?;
                if !sub_op.batchable() {
                    return Err(FrameError::Malformed("non-batchable opcode in batch"));
                }
                subs.push(read_request_body(sub_op, r)?);
            }
            Request::Batch { subs }
        }
    })
}

/// Attempts to decode one response frame from the front of `buf`.
///
/// `for_scan` disambiguates `Ok` bodies: the envelope alone cannot tell a
/// `Get` value from a scan result set, so the client passes the opcode it
/// is awaiting (responses arrive strictly in request order).
pub fn decode_response(buf: &[u8], max_frame: usize, awaiting: Opcode) -> Progress<Response> {
    let (id, tag, body, consumed) = match split_envelope(buf, max_frame) {
        Progress::Frame(Ok((id, (tag, body))), consumed) => (id, tag, body, consumed),
        Progress::Frame(Err(e), c) => return Progress::Frame(Err(e), c),
        Progress::Incomplete => return Progress::Incomplete,
        Progress::Fatal(e) => return Progress::Fatal(e),
    };
    let Some(status) = Status::from_u8(tag) else {
        return Progress::Frame(Err((id, FrameError::UnknownStatus(tag))), consumed);
    };
    let mut r = Reader::new(&body);
    let parsed = (|| {
        let resp = read_response_body(status, awaiting, &mut r)?;
        r.finish()?;
        Ok(resp)
    })();
    match parsed {
        Ok(resp) => Progress::Frame(Ok((id, resp)), consumed),
        Err(e) => Progress::Frame(Err((id, e)), consumed),
    }
}

/// Parses one response body from `r` without requiring exhaustion —
/// `Batch` sub-replies share one body.
fn read_response_body(
    status: Status,
    awaiting: Opcode,
    r: &mut Reader<'_>,
) -> Result<Response, FrameError> {
    Ok(match status {
        Status::NotFound => Response::NotFound,
        Status::Err => {
            let msg = r.lp()?;
            Response::Error(String::from_utf8_lossy(&msg).into_owned())
        }
        Status::Ok => match awaiting {
            Opcode::Get => Response::Value(r.lp()?),
            Opcode::Scan => {
                let n = r.u32()? as usize;
                let mut entries = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    entries.push((r.lp()?, r.lp()?));
                }
                Response::Entries(entries)
            }
            Opcode::Stats => {
                let json = r.lp()?;
                Response::Stats(String::from_utf8_lossy(&json).into_owned())
            }
            Opcode::Metrics => {
                let text = r.lp()?;
                Response::Metrics(String::from_utf8_lossy(&text).into_owned())
            }
            Opcode::Batch => {
                let n = r.u32()? as usize;
                if n > MAX_BATCH_SUBS {
                    return Err(FrameError::Malformed("batch reply exceeds MAX_BATCH_SUBS"));
                }
                let mut subs = Vec::with_capacity(n);
                for _ in 0..n {
                    let sub_op = Opcode::from_u8(r.u8()?)
                        .ok_or(FrameError::Malformed("unknown opcode in batch reply"))?;
                    if !sub_op.batchable() {
                        return Err(FrameError::Malformed("non-batchable opcode in batch reply"));
                    }
                    let sub_status = Status::from_u8(r.u8()?)
                        .ok_or(FrameError::Malformed("unknown status in batch reply"))?;
                    subs.push((sub_op, read_response_body(sub_status, sub_op, r)?));
                }
                Response::Batch(subs)
            }
            Opcode::Ping | Opcode::Put | Opcode::Delete | Opcode::Shutdown | Opcode::Auth => {
                Response::Ok
            }
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let mut buf = Vec::new();
        encode_request(&mut buf, 42, &req);
        match decode_request(&buf, DEFAULT_MAX_FRAME) {
            Progress::Frame(Ok((id, back)), consumed) => {
                assert_eq!(id, 42);
                assert_eq!(back, req);
                assert_eq!(consumed, buf.len());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Shutdown);
        roundtrip_request(Request::Get {
            key: Bytes::from_static(b"user1"),
        });
        roundtrip_request(Request::Delete {
            key: Bytes::from_static(b""),
        });
        roundtrip_request(Request::Put {
            key: Bytes::from_static(b"k"),
            value: Bytes::from(vec![0u8, 255, 7]),
        });
        roundtrip_request(Request::Scan {
            from: Bytes::from_static(b"user2"),
            limit: 64,
        });
        roundtrip_request(Request::Metrics {
            format: MetricsFormat::Json,
        });
        roundtrip_request(Request::Metrics {
            format: MetricsFormat::Prometheus,
        });
        roundtrip_request(Request::Auth { tenant: 0 });
        roundtrip_request(Request::Auth { tenant: 7 });
    }

    #[test]
    fn auth_body_is_validated() {
        // Truncated tenant id.
        let mut buf = Vec::new();
        encode_frame(&mut buf, 8, Opcode::Auth as u8, |out| out.push(1));
        assert!(matches!(
            decode_request(&buf, DEFAULT_MAX_FRAME),
            Progress::Frame(Err((8, FrameError::Malformed(_))), _)
        ));
        // Trailing bytes after the tenant id.
        let mut buf = Vec::new();
        encode_frame(&mut buf, 9, Opcode::Auth as u8, |out| {
            put_u32(out, 3);
            out.push(0);
        });
        assert!(matches!(
            decode_request(&buf, DEFAULT_MAX_FRAME),
            Progress::Frame(Err((9, FrameError::Malformed(_))), _)
        ));
        // Auth is control-plane: it may not appear inside a batch.
        assert!(!Opcode::Auth.batchable());
        let mut buf = Vec::new();
        encode_frame(&mut buf, 10, Opcode::Batch as u8, |out| {
            put_u32(out, 1);
            out.push(Opcode::Auth as u8);
            put_u32(out, 3);
        });
        assert!(matches!(
            decode_request(&buf, DEFAULT_MAX_FRAME),
            Progress::Frame(Err((10, FrameError::Malformed(_))), _)
        ));
    }

    #[test]
    fn metrics_format_byte_is_validated() {
        let mut buf = Vec::new();
        encode_frame(&mut buf, 3, Opcode::Metrics as u8, |out| out.push(9));
        assert!(matches!(
            decode_request(&buf, DEFAULT_MAX_FRAME),
            Progress::Frame(Err((3, FrameError::Malformed(_))), _)
        ));
        // Missing format byte entirely.
        let mut buf = Vec::new();
        encode_frame(&mut buf, 4, Opcode::Metrics as u8, |_| {});
        assert!(matches!(
            decode_request(&buf, DEFAULT_MAX_FRAME),
            Progress::Frame(Err((4, FrameError::Malformed(_))), _)
        ));
    }

    #[test]
    fn pipelined_frames_decode_in_order() {
        let mut buf = Vec::new();
        for i in 0..10u64 {
            encode_request(
                &mut buf,
                i,
                &Request::Get {
                    key: Bytes::from(format!("k{i}")),
                },
            );
        }
        let mut at = 0;
        for i in 0..10u64 {
            match decode_request(&buf[at..], DEFAULT_MAX_FRAME) {
                Progress::Frame(Ok((id, Request::Get { key })), consumed) => {
                    assert_eq!(id, i);
                    assert_eq!(key, Bytes::from(format!("k{i}")));
                    at += consumed;
                }
                other => panic!("frame {i}: {other:?}"),
            }
        }
        assert_eq!(at, buf.len());
    }

    #[test]
    fn truncated_frames_wait_for_more_bytes() {
        let mut buf = Vec::new();
        encode_request(
            &mut buf,
            9,
            &Request::Put {
                key: Bytes::from_static(b"key"),
                value: Bytes::from_static(b"value"),
            },
        );
        for cut in 0..buf.len() {
            assert_eq!(
                decode_request(&buf[..cut], DEFAULT_MAX_FRAME),
                Progress::Incomplete,
                "prefix of {cut} bytes must be incomplete"
            );
        }
    }

    #[test]
    fn oversized_length_is_fatal() {
        let mut buf = Vec::new();
        put_u32(&mut buf, (DEFAULT_MAX_FRAME + 1) as u32);
        buf.extend_from_slice(&[0u8; 16]);
        match decode_request(&buf, DEFAULT_MAX_FRAME) {
            Progress::Fatal(FrameError::Oversized { declared, .. }) => {
                assert_eq!(declared, DEFAULT_MAX_FRAME + 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        // A declared length too small to hold the envelope is equally
        // unrecoverable.
        let mut buf = Vec::new();
        put_u32(&mut buf, 3);
        buf.extend_from_slice(&[0u8; 8]);
        assert!(matches!(
            decode_request(&buf, DEFAULT_MAX_FRAME),
            Progress::Fatal(_)
        ));
    }

    #[test]
    fn unknown_opcode_is_recoverable() {
        let mut buf = Vec::new();
        encode_frame(&mut buf, 77, 200, |_| {});
        match decode_request(&buf, DEFAULT_MAX_FRAME) {
            Progress::Frame(Err((id, FrameError::UnknownOpcode(200))), consumed) => {
                assert_eq!(id, 77);
                assert_eq!(consumed, buf.len());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(!is_fatal(&FrameError::UnknownOpcode(200)));
        assert!(is_fatal(&FrameError::Oversized {
            declared: 1,
            max: 0
        }));
    }

    #[test]
    fn malformed_body_is_recoverable_and_consumes_the_frame() {
        // A Get whose key length overruns the body.
        let mut buf = Vec::new();
        encode_frame(&mut buf, 5, Opcode::Get as u8, |out| {
            put_u32(out, 1000); // claims 1000 bytes...
            out.extend_from_slice(b"short"); // ...provides 5
        });
        match decode_request(&buf, DEFAULT_MAX_FRAME) {
            Progress::Frame(Err((5, FrameError::Malformed(_))), consumed) => {
                assert_eq!(consumed, buf.len());
            }
            other => panic!("unexpected {other:?}"),
        }
        // Trailing garbage after a well-formed body.
        let mut buf = Vec::new();
        encode_frame(&mut buf, 6, Opcode::Ping as u8, |out| out.push(9));
        assert!(matches!(
            decode_request(&buf, DEFAULT_MAX_FRAME),
            Progress::Frame(Err((6, FrameError::Malformed(_))), _)
        ));
    }

    #[test]
    fn batch_request_roundtrips() {
        roundtrip_request(Request::Batch {
            subs: vec![
                Request::Ping,
                Request::Get {
                    key: Bytes::from_static(b"user1"),
                },
                Request::Put {
                    key: Bytes::from_static(b"k"),
                    value: Bytes::from(vec![0u8, 255, 7]),
                },
                Request::Delete {
                    key: Bytes::from_static(b""),
                },
                Request::Scan {
                    from: Bytes::from_static(b"user2"),
                    limit: 64,
                },
            ],
        });
    }

    #[test]
    fn batch_response_roundtrips() {
        let resp = Response::Batch(vec![
            (Opcode::Ping, Response::Ok),
            (Opcode::Get, Response::Value(Bytes::from_static(b"v"))),
            (Opcode::Get, Response::NotFound),
            (Opcode::Put, Response::Ok),
            (
                Opcode::Scan,
                Response::Entries(vec![(Bytes::from_static(b"a"), Bytes::from_static(b"1"))]),
            ),
            (Opcode::Delete, Response::Error("quota".into())),
        ]);
        let mut buf = Vec::new();
        encode_response(&mut buf, 11, &resp);
        match decode_response(&buf, DEFAULT_MAX_FRAME, Opcode::Batch) {
            Progress::Frame(Ok((11, back)), consumed) => {
                assert_eq!(back, resp);
                assert_eq!(consumed, buf.len());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn batch_rejects_empty_oversize_and_non_batchable() {
        // Empty batch.
        let mut buf = Vec::new();
        encode_frame(&mut buf, 1, Opcode::Batch as u8, |out| put_u32(out, 0));
        assert!(matches!(
            decode_request(&buf, DEFAULT_MAX_FRAME),
            Progress::Frame(Err((1, FrameError::Malformed(_))), _)
        ));
        // Count above the cap.
        let mut buf = Vec::new();
        encode_frame(&mut buf, 2, Opcode::Batch as u8, |out| {
            put_u32(out, (MAX_BATCH_SUBS + 1) as u32)
        });
        assert!(matches!(
            decode_request(&buf, DEFAULT_MAX_FRAME),
            Progress::Frame(Err((2, FrameError::Malformed(_))), _)
        ));
        // Control-plane sub-opcode.
        let mut buf = Vec::new();
        encode_frame(&mut buf, 3, Opcode::Batch as u8, |out| {
            put_u32(out, 1);
            out.push(Opcode::Shutdown as u8);
        });
        assert!(matches!(
            decode_request(&buf, DEFAULT_MAX_FRAME),
            Progress::Frame(Err((3, FrameError::Malformed(_))), _)
        ));
        // Nested batch.
        let mut buf = Vec::new();
        encode_frame(&mut buf, 4, Opcode::Batch as u8, |out| {
            put_u32(out, 1);
            out.push(Opcode::Batch as u8);
            put_u32(out, 1);
            out.push(Opcode::Ping as u8);
        });
        assert!(matches!(
            decode_request(&buf, DEFAULT_MAX_FRAME),
            Progress::Frame(Err((4, FrameError::Malformed(_))), _)
        ));
        // A sub whose body is truncated relative to its grammar.
        let mut buf = Vec::new();
        encode_frame(&mut buf, 5, Opcode::Batch as u8, |out| {
            put_u32(out, 2);
            out.push(Opcode::Get as u8);
            put_lp(out, b"ok-key");
            out.push(Opcode::Get as u8);
            put_u32(out, 900); // claims 900 bytes, provides none
        });
        match decode_request(&buf, DEFAULT_MAX_FRAME) {
            Progress::Frame(Err((5, FrameError::Malformed(_))), consumed) => {
                assert_eq!(consumed, buf.len(), "malformed batch still consumes frame");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn responses_roundtrip_for_each_awaiting_opcode() {
        let cases: Vec<(Opcode, Response)> = vec![
            (Opcode::Ping, Response::Ok),
            (Opcode::Put, Response::Ok),
            (Opcode::Get, Response::Value(Bytes::from_static(b"v"))),
            (Opcode::Get, Response::NotFound),
            (
                Opcode::Scan,
                Response::Entries(vec![
                    (Bytes::from_static(b"a"), Bytes::from_static(b"1")),
                    (Bytes::from_static(b"b"), Bytes::from_static(b"2")),
                ]),
            ),
            (Opcode::Stats, Response::Stats("{\"x\":1}".into())),
            (
                Opcode::Metrics,
                Response::Metrics("# TYPE adcache_x counter\nadcache_x 1\n".into()),
            ),
            (Opcode::Delete, Response::Error("boom".into())),
        ];
        for (awaiting, resp) in cases {
            let mut buf = Vec::new();
            encode_response(&mut buf, 11, &resp);
            match decode_response(&buf, DEFAULT_MAX_FRAME, awaiting) {
                Progress::Frame(Ok((11, back)), consumed) => {
                    assert_eq!(back, resp, "awaiting {awaiting:?}");
                    assert_eq!(consumed, buf.len());
                }
                other => panic!("awaiting {awaiting:?}: {other:?}"),
            }
        }
    }
}
