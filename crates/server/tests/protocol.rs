//! Wire-protocol coverage: property-based encode/decode round-trips and
//! deliberate frame corruption (satellite of the serving-layer PR).

use adcache_server::{
    decode_request, decode_response, encode_request, encode_response, FrameError, Opcode, Progress,
    Request, Response,
};
use bytes::Bytes;
use proptest::prelude::*;

const MAX_FRAME: usize = 1 << 20;

fn bytes_strategy(max: usize) -> impl Strategy<Value = Bytes> {
    proptest::collection::vec(any::<u8>(), 0..max).prop_map(Bytes::from)
}

/// Only opcodes admissible inside a `Batch` frame (data plane + ping).
fn batchable_request_strategy() -> impl Strategy<Value = Request> {
    prop_oneof![
        1 => Just(Request::Ping),
        4 => bytes_strategy(64).prop_map(|key| Request::Get { key }),
        2 => bytes_strategy(64).prop_map(|key| Request::Delete { key }),
        4 => (bytes_strategy(64), bytes_strategy(256))
            .prop_map(|(key, value)| Request::Put { key, value }),
        3 => (bytes_strategy(64), 0u32..1024)
            .prop_map(|(from, limit)| Request::Scan { from, limit }),
    ]
}

fn request_strategy() -> impl Strategy<Value = Request> {
    prop_oneof![
        1 => Just(Request::Ping),
        1 => Just(Request::Stats),
        1 => Just(Request::Shutdown),
        4 => bytes_strategy(64).prop_map(|key| Request::Get { key }),
        2 => bytes_strategy(64).prop_map(|key| Request::Delete { key }),
        4 => (bytes_strategy(64), bytes_strategy(256))
            .prop_map(|(key, value)| Request::Put { key, value }),
        3 => (bytes_strategy(64), 0u32..1024)
            .prop_map(|(from, limit)| Request::Scan { from, limit }),
        2 => proptest::collection::vec(batchable_request_strategy(), 1..16)
            .prop_map(|subs| Request::Batch { subs }),
    ]
}

fn ascii_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 0..80)
        .prop_map(|v| v.into_iter().map(|b| char::from(b' ' + b % 95)).collect())
}

/// One sub-reply as it would ride inside a `Batch` response: the opcode
/// echo paired with a response its grammar allows.
fn batch_sub_response_strategy() -> impl Strategy<Value = (Opcode, Response)> {
    prop_oneof![
        1 => Just((Opcode::Ping, Response::Ok)),
        1 => Just((Opcode::Put, Response::Ok)),
        1 => Just((Opcode::Delete, Response::Ok)),
        1 => Just((Opcode::Get, Response::NotFound)),
        3 => bytes_strategy(256).prop_map(|v| (Opcode::Get, Response::Value(v))),
        2 => proptest::collection::vec((bytes_strategy(32), bytes_strategy(64)), 0..8)
            .prop_map(|entries| (Opcode::Scan, Response::Entries(entries))),
        1 => ascii_strategy().prop_map(|s| (Opcode::Scan, Response::Error(s))),
    ]
}

fn response_strategy() -> impl Strategy<Value = (Opcode, Response)> {
    prop_oneof![
        1 => Just((Opcode::Ping, Response::Ok)),
        1 => Just((Opcode::Put, Response::Ok)),
        1 => Just((Opcode::Delete, Response::Ok)),
        1 => Just((Opcode::Get, Response::NotFound)),
        3 => bytes_strategy(256).prop_map(|v| (Opcode::Get, Response::Value(v))),
        3 => proptest::collection::vec((bytes_strategy(32), bytes_strategy(64)), 0..20)
            .prop_map(|entries| (Opcode::Scan, Response::Entries(entries))),
        1 => ascii_strategy().prop_map(|s| (Opcode::Stats, Response::Stats(s))),
        1 => ascii_strategy().prop_map(|s| (Opcode::Get, Response::Error(s))),
        2 => proptest::collection::vec(batch_sub_response_strategy(), 1..12)
            .prop_map(|subs| (Opcode::Batch, Response::Batch(subs))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Any request survives encode → decode bit-exactly, with the id
    /// echoed and the whole frame consumed.
    #[test]
    fn request_encode_decode_roundtrip(id in any::<u64>(), req in request_strategy()) {
        let mut buf = Vec::new();
        encode_request(&mut buf, id, &req);
        match decode_request(&buf, MAX_FRAME) {
            Progress::Frame(Ok((got_id, got)), consumed) => {
                prop_assert_eq!(got_id, id);
                prop_assert_eq!(got, req);
                prop_assert_eq!(consumed, buf.len());
            }
            other => prop_assert!(false, "unexpected decode result: {:?}", other),
        }
    }

    /// Any response survives encode → decode, given the opcode the
    /// client is awaiting (replies arrive strictly in request order).
    #[test]
    fn response_encode_decode_roundtrip(id in any::<u64>(), case in response_strategy()) {
        let (awaiting, resp) = case;
        let mut buf = Vec::new();
        encode_response(&mut buf, id, &resp);
        match decode_response(&buf, MAX_FRAME, awaiting) {
            Progress::Frame(Ok((got_id, got)), consumed) => {
                prop_assert_eq!(got_id, id);
                prop_assert_eq!(got, resp);
                prop_assert_eq!(consumed, buf.len());
            }
            other => prop_assert!(false, "unexpected decode result: {:?}", other),
        }
    }

    /// Back-to-back frames decode independently: concatenating any two
    /// encoded requests yields exactly those two requests.
    #[test]
    fn concatenated_frames_split_cleanly(
        a in request_strategy(),
        b in request_strategy(),
    ) {
        let mut buf = Vec::new();
        encode_request(&mut buf, 1, &a);
        let first_len = buf.len();
        encode_request(&mut buf, 2, &b);
        let Progress::Frame(Ok((1, got_a)), consumed) = decode_request(&buf, MAX_FRAME) else {
            return Err(TestCaseError::fail("first frame"));
        };
        prop_assert_eq!(consumed, first_len);
        prop_assert_eq!(got_a, a);
        let Progress::Frame(Ok((2, got_b)), rest) = decode_request(&buf[consumed..], MAX_FRAME)
        else {
            return Err(TestCaseError::fail("second frame"));
        };
        prop_assert_eq!(got_b, b);
        prop_assert_eq!(consumed + rest, buf.len());
    }

    /// Every strict prefix of a frame is `Incomplete` — a decoder fed a
    /// torn TCP segment waits rather than misparsing.
    #[test]
    fn any_prefix_is_incomplete(req in request_strategy(), frac in 0u32..1000) {
        let mut buf = Vec::new();
        encode_request(&mut buf, 3, &req);
        let cut = buf.len() * frac as usize / 1000;
        prop_assert!(cut < buf.len());
        prop_assert_eq!(decode_request(&buf[..cut], MAX_FRAME), Progress::Incomplete);
    }

    /// Flipping the length prefix to something oversized is always fatal
    /// (framing can't be trusted), never a misparse.
    #[test]
    fn oversized_length_is_always_fatal(req in request_strategy(), extra in 1u32..1 << 20) {
        let mut buf = Vec::new();
        encode_request(&mut buf, 4, &req);
        let huge = (MAX_FRAME as u32).saturating_add(extra);
        buf[..4].copy_from_slice(&huge.to_le_bytes());
        prop_assert!(matches!(
            decode_request(&buf, MAX_FRAME),
            Progress::Fatal(FrameError::Oversized { .. })
        ));
    }
}

/// An unknown opcode is reported against the frame's own id and consumes
/// exactly that frame — the next frame in the buffer still decodes.
#[test]
fn unknown_opcode_skips_one_frame_and_recovers() {
    let mut buf = Vec::new();
    // Hand-build a frame with opcode 99: len = id(8) + tag(1) + empty body.
    buf.extend_from_slice(&9u32.to_le_bytes());
    buf.extend_from_slice(&55u64.to_le_bytes());
    buf.push(99);
    encode_request(&mut buf, 56, &Request::Ping);

    let Progress::Frame(Err((55, FrameError::UnknownOpcode(99))), consumed) =
        decode_request(&buf, MAX_FRAME)
    else {
        panic!("expected recoverable unknown-opcode error");
    };
    assert_eq!(consumed, 13);
    let Progress::Frame(Ok((56, Request::Ping)), rest) =
        decode_request(&buf[consumed..], MAX_FRAME)
    else {
        panic!("pipelined frame after the bad one must still decode");
    };
    assert_eq!(consumed + rest, buf.len());
}

/// A body that contradicts its opcode's grammar is a recoverable,
/// frame-local error: reported with the frame's id, fully consumed.
#[test]
fn malformed_bodies_are_frame_local() {
    // Put with only one field.
    let mut only_key = Vec::new();
    let mut body = Vec::new();
    body.extend_from_slice(&3u32.to_le_bytes());
    body.extend_from_slice(b"abc");
    only_key.extend_from_slice(&((9 + body.len()) as u32).to_le_bytes());
    only_key.extend_from_slice(&7u64.to_le_bytes());
    only_key.push(Opcode::Put as u8);
    only_key.extend_from_slice(&body);
    assert!(matches!(
        decode_request(&only_key, MAX_FRAME),
        Progress::Frame(Err((7, FrameError::Malformed(_))), n) if n == only_key.len()
    ));

    // Scan with a truncated limit.
    let mut short_scan = Vec::new();
    let mut body = Vec::new();
    body.extend_from_slice(&1u32.to_le_bytes());
    body.push(b'x');
    body.extend_from_slice(&[1, 2]); // half a u32
    short_scan.extend_from_slice(&((9 + body.len()) as u32).to_le_bytes());
    short_scan.extend_from_slice(&8u64.to_le_bytes());
    short_scan.push(Opcode::Scan as u8);
    short_scan.extend_from_slice(&body);
    assert!(matches!(
        decode_request(&short_scan, MAX_FRAME),
        Progress::Frame(Err((8, FrameError::Malformed(_))), _)
    ));

    // Ping with trailing bytes.
    let mut noisy_ping = Vec::new();
    noisy_ping.extend_from_slice(&11u32.to_le_bytes());
    noisy_ping.extend_from_slice(&9u64.to_le_bytes());
    noisy_ping.push(Opcode::Ping as u8);
    noisy_ping.extend_from_slice(&[0xde, 0xad]);
    assert!(matches!(
        decode_request(&noisy_ping, MAX_FRAME),
        Progress::Frame(Err((9, FrameError::Malformed(_))), _)
    ));
}

/// A malformed sub-frame inside a `Batch` body is frame-local like any
/// other malformed body: the whole batch frame is consumed, the error
/// carries the frame's id, and the next pipelined frame still decodes.
#[test]
fn malformed_batch_sub_frames_are_frame_local() {
    let frame_with_body = |id: u64, body: &[u8]| {
        let mut buf = Vec::new();
        buf.extend_from_slice(&((9 + body.len()) as u32).to_le_bytes());
        buf.extend_from_slice(&id.to_le_bytes());
        buf.push(Opcode::Batch as u8);
        buf.extend_from_slice(body);
        buf
    };

    // Sub 0 is a Get whose key claims 99 bytes with only 2 present.
    let mut body = Vec::new();
    body.extend_from_slice(&1u32.to_le_bytes());
    body.push(Opcode::Get as u8);
    body.extend_from_slice(&99u32.to_le_bytes());
    body.extend_from_slice(b"ab");
    let mut buf = frame_with_body(21, &body);
    encode_request(&mut buf, 22, &Request::Ping);
    let Progress::Frame(Err((21, FrameError::Malformed(_))), consumed) =
        decode_request(&buf, MAX_FRAME)
    else {
        panic!("truncated sub body must be a recoverable malformed frame");
    };
    let Progress::Frame(Ok((22, Request::Ping)), rest) =
        decode_request(&buf[consumed..], MAX_FRAME)
    else {
        panic!("pipelined frame after the bad batch must still decode");
    };
    assert_eq!(consumed + rest, buf.len());

    // A control-plane sub opcode (Shutdown) is rejected the same way.
    let mut body = Vec::new();
    body.extend_from_slice(&1u32.to_le_bytes());
    body.push(Opcode::Shutdown as u8);
    let buf = frame_with_body(23, &body);
    assert!(matches!(
        decode_request(&buf, MAX_FRAME),
        Progress::Frame(Err((23, FrameError::Malformed(_))), n) if n == buf.len()
    ));
}

/// A declared length too small to hold the header is fatal, like an
/// oversized one: there is no way to resynchronize the stream.
#[test]
fn undersized_length_is_fatal() {
    for declared in 0u32..9 {
        let mut buf = declared.to_le_bytes().to_vec();
        buf.extend_from_slice(&[0u8; 16]);
        assert!(
            matches!(decode_request(&buf, MAX_FRAME), Progress::Fatal(_)),
            "declared {declared}"
        );
    }
}
