//! End-to-end serving tests over loopback TCP: a real `Server` on port 0,
//! real clients, real frames. Covers the PR's acceptance criterion (a
//! many-connection mixed zipfian workload completes with zero lost or
//! misordered replies and a graceful drain) plus the failure paths:
//! malformed frames, connection limits, idle timeouts, and the `Shutdown`
//! opcode.

use adcache_core::{CachedDb, EngineConfig, Strategy};
use adcache_lsm::{MemStorage, Options};
use adcache_obs::Obs;
use adcache_server::{
    loadgen, Client, LoadgenConfig, MetricsFormat, Request, Response, Server, ServerConfig,
};
use adcache_workload::{render_key, AdversaryConfig, AdversaryKind, Mix, WorkloadConfig};
use bytes::Bytes;
use std::io::{Read, Write};
use std::sync::Arc;
use std::time::Duration;

fn test_db(with_obs: bool) -> Arc<CachedDb> {
    let db = CachedDb::new(
        Options::small(),
        Arc::new(MemStorage::new()),
        EngineConfig::new(Strategy::AdCache, 1 << 20),
    )
    .unwrap();
    if with_obs {
        db.set_obs(Obs::enabled());
    }
    for i in 0..2_000u64 {
        db.load(render_key(i), Bytes::from(format!("seed-{i:05}")))
            .unwrap();
    }
    db.db().flush().unwrap();
    Arc::new(db)
}

fn start_server(db: Arc<CachedDb>, tweak: impl FnOnce(&mut ServerConfig)) -> Server {
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..Default::default()
    };
    tweak(&mut cfg);
    Server::start(db, cfg).unwrap()
}

/// Basic request/response semantics for every opcode through one client.
#[test]
fn every_opcode_round_trips() {
    let db = test_db(false);
    let server = start_server(db, |_| {});
    let addr = server.local_addr().to_string();
    let mut c = Client::connect(&addr).unwrap();

    assert_eq!(c.call(&Request::Ping).unwrap(), Response::Ok);
    assert_eq!(
        c.call(&Request::Get {
            key: render_key(42)
        })
        .unwrap(),
        Response::Value(Bytes::from("seed-00042"))
    );
    assert_eq!(
        c.call(&Request::Get {
            key: Bytes::from_static(b"missing!")
        })
        .unwrap(),
        Response::NotFound
    );
    assert_eq!(
        c.call(&Request::Put {
            key: Bytes::from_static(b"net-key"),
            value: Bytes::from_static(b"net-value"),
        })
        .unwrap(),
        Response::Ok
    );
    assert_eq!(
        c.call(&Request::Get {
            key: Bytes::from_static(b"net-key")
        })
        .unwrap(),
        Response::Value(Bytes::from_static(b"net-value"))
    );
    assert_eq!(
        c.call(&Request::Delete {
            key: Bytes::from_static(b"net-key")
        })
        .unwrap(),
        Response::Ok
    );
    assert_eq!(
        c.call(&Request::Get {
            key: Bytes::from_static(b"net-key")
        })
        .unwrap(),
        Response::NotFound
    );

    match c
        .call(&Request::Scan {
            from: render_key(10),
            limit: 5,
        })
        .unwrap()
    {
        Response::Entries(entries) => {
            assert_eq!(entries.len(), 5);
            assert_eq!(entries[0].0, render_key(10));
            for w in entries.windows(2) {
                assert!(w[0].0 < w[1].0, "scan replies must be ordered");
            }
        }
        other => panic!("scan answered {other:?}"),
    }

    let stats = c.stats().unwrap();
    assert!(
        stats.contains("\"engine\""),
        "stats missing engine: {stats}"
    );
    assert!(
        stats.contains("\"server\""),
        "stats missing server: {stats}"
    );
    assert!(stats.contains("\"strategy\""));

    let report = server.shutdown();
    assert_eq!(report.protocol_errors, 0);
    assert_eq!(report.conns_accepted, report.conns_closed);
}

/// The acceptance run: a 32-connection mixed zipfian workload completes
/// with zero lost, misordered, or undecodable replies, and shutdown
/// drains cleanly (every accepted connection closed, engine flushed).
#[test]
fn thirty_two_connections_of_mixed_zipf_traffic_lose_nothing() {
    let db = test_db(true);
    let server = start_server(db.clone(), |cfg| cfg.max_conns = 64);
    let addr = server.local_addr().to_string();

    let report = loadgen::run(&LoadgenConfig {
        addr,
        connections: 32,
        ops: 16_000,
        mix: Mix::new(40.0, 25.0, 5.0, 30.0),
        workload: WorkloadConfig {
            num_keys: 2_000,
            value_size: 64,
            seed: 7,
            ..Default::default()
        },
        target_qps: None,
        ..Default::default()
    })
    .unwrap();

    assert_eq!(report.ops, 16_000, "every op must complete");
    assert_eq!(report.protocol_errors, 0, "no lost or misordered replies");
    assert_eq!(report.server_errors, 0, "no engine failures");
    assert!(report.qps > 0.0);
    assert!(report.latency.count() == 16_000);
    assert!(report.latency.quantile(0.999) >= report.latency.quantile(0.50));

    let serve = server.shutdown();
    assert_eq!(serve.requests, 16_000);
    assert_eq!(serve.protocol_errors, 0);
    assert_eq!(serve.conns_accepted, serve.conns_closed, "graceful drain");
    assert_eq!(serve.conns_refused, 0);

    // The run is visible through the observability layer: server metrics
    // registered, connection lifecycle journaled.
    let obs = db.obs();
    let metrics = obs.metrics_json().unwrap();
    assert!(metrics.contains("server.requests"));
    assert!(metrics.contains("server.latency.get"));
    let trace = obs.trace_jsonl().unwrap();
    assert!(trace.contains("ConnAccepted"));
    assert!(trace.contains("ConnClosed"));
    assert!(trace.contains("RequestServed"));
}

/// Open-loop mode paces sends by wall clock and still verifies FIFO
/// replies; a modest target rate finishes with zero protocol errors.
#[test]
fn open_loop_mode_completes_at_target_rate() {
    let db = test_db(false);
    let server = start_server(db, |_| {});
    let addr = server.local_addr().to_string();

    let report = loadgen::run(&LoadgenConfig {
        addr,
        connections: 4,
        ops: 4_000,
        mix: Mix::new(60.0, 20.0, 0.0, 20.0),
        workload: WorkloadConfig {
            num_keys: 2_000,
            value_size: 64,
            seed: 11,
            ..Default::default()
        },
        target_qps: Some(50_000),
        ..Default::default()
    })
    .unwrap();

    assert_eq!(report.ops, 4_000);
    assert_eq!(report.protocol_errors, 0);
    assert_eq!(report.server_errors, 0);
    let rendered = report.render();
    assert!(rendered.contains("throughput"));
    assert!(rendered.contains("p999"));

    let serve = server.shutdown();
    assert_eq!(serve.requests, 4_000);
}

/// A pipelined burst written as one TCP payload comes back as in-order
/// replies — the server decodes many frames per read and answers them
/// in request order.
#[test]
fn pipelined_burst_is_answered_in_order() {
    let db = test_db(false);
    let server = start_server(db, |_| {});
    let addr = server.local_addr().to_string();
    let mut stream = std::net::TcpStream::connect(&addr).unwrap();
    stream.set_nodelay(true).unwrap();

    let mut burst = Vec::new();
    for i in 0..200u64 {
        adcache_server::encode_request(
            &mut burst,
            i,
            &Request::Get {
                key: render_key(i % 2_000),
            },
        );
    }
    stream.write_all(&burst).unwrap();

    let mut rbuf = Vec::new();
    let mut chunk = [0u8; 65536];
    let mut next_expected = 0u64;
    while next_expected < 200 {
        loop {
            match adcache_server::decode_response(&rbuf, 1 << 20, adcache_server::Opcode::Get) {
                adcache_server::Progress::Frame(Ok((id, resp)), consumed) => {
                    assert_eq!(id, next_expected, "replies must arrive in request order");
                    assert!(matches!(resp, Response::Value(_)));
                    rbuf.drain(..consumed);
                    next_expected += 1;
                }
                adcache_server::Progress::Incomplete => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        if next_expected < 200 {
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0, "server closed early");
            rbuf.extend_from_slice(&chunk[..n]);
        }
    }
    drop(stream);
    server.shutdown();
}

/// An unknown opcode or malformed body gets a clean `Err` reply carrying
/// the offending frame's id, and the connection keeps working.
#[test]
fn malformed_frames_get_error_replies_and_the_connection_survives() {
    let db = test_db(true);
    let server = start_server(db.clone(), |_| {});
    let addr = server.local_addr().to_string();
    let mut stream = std::net::TcpStream::connect(&addr).unwrap();
    stream.set_nodelay(true).unwrap();

    // Unknown opcode 77, then a malformed Get, then a valid Ping — all in
    // one burst.
    let mut burst = Vec::new();
    burst.extend_from_slice(&9u32.to_le_bytes());
    burst.extend_from_slice(&1u64.to_le_bytes());
    burst.push(77);
    burst.extend_from_slice(&13u32.to_le_bytes());
    burst.extend_from_slice(&2u64.to_le_bytes());
    burst.push(1); // Get
    burst.extend_from_slice(&999u32.to_le_bytes()); // key claims 999 bytes
    adcache_server::encode_request(&mut burst, 3, &Request::Ping);
    stream.write_all(&burst).unwrap();

    // Replies may arrive coalesced into one TCP segment, so the buffer
    // must persist across reads.
    let mut rbuf = Vec::new();
    let mut read_reply = |awaiting| {
        let mut chunk = [0u8; 4096];
        loop {
            match adcache_server::decode_response(&rbuf, 1 << 20, awaiting) {
                adcache_server::Progress::Frame(Ok((id, resp)), consumed) => {
                    rbuf.drain(..consumed);
                    return (id, resp);
                }
                adcache_server::Progress::Incomplete => {
                    let n = stream.read(&mut chunk).unwrap();
                    assert!(n > 0, "connection must survive malformed frames");
                    rbuf.extend_from_slice(&chunk[..n]);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    };

    let (id, resp) = read_reply(adcache_server::Opcode::Ping);
    assert_eq!(id, 1);
    assert!(
        matches!(resp, Response::Error(ref m) if m.contains("opcode")),
        "got {resp:?}"
    );
    let (id, resp) = read_reply(adcache_server::Opcode::Get);
    assert_eq!(id, 2);
    assert!(matches!(resp, Response::Error(_)));
    let (id, resp) = read_reply(adcache_server::Opcode::Ping);
    assert_eq!(id, 3);
    assert_eq!(resp, Response::Ok, "connection still serves after errors");

    drop(stream);
    let report = server.shutdown();
    assert_eq!(report.protocol_errors, 2);
    assert_eq!(report.requests, 1, "only the Ping executed");
}

/// An oversized declared length poisons framing: the server answers with
/// one `Err` frame and closes that connection, but keeps serving others.
#[test]
fn oversized_frames_close_only_the_offending_connection() {
    let db = test_db(false);
    let server = start_server(db, |cfg| cfg.max_frame = 1 << 16);
    let addr = server.local_addr().to_string();

    let mut bad = std::net::TcpStream::connect(&addr).unwrap();
    bad.write_all(&u32::MAX.to_le_bytes()).unwrap();
    bad.write_all(&[0u8; 32]).unwrap();
    // The server replies with an error frame and then EOF.
    let mut tail = Vec::new();
    bad.read_to_end(&mut tail).unwrap();
    assert!(!tail.is_empty(), "expected an error reply before close");

    let mut good = Client::connect(&addr).unwrap();
    assert_eq!(good.call(&Request::Ping).unwrap(), Response::Ok);

    let report = server.shutdown();
    assert_eq!(report.protocol_errors, 1);
}

/// Past `max_conns`, new connections get one `Err` frame and a close,
/// and the journal records the overload.
#[test]
fn connection_limit_refuses_with_an_error_frame() {
    let db = test_db(true);
    let server = start_server(db.clone(), |cfg| cfg.max_conns = 2);
    let addr = server.local_addr().to_string();

    let mut a = Client::connect(&addr).unwrap();
    let mut b = Client::connect(&addr).unwrap();
    assert_eq!(a.call(&Request::Ping).unwrap(), Response::Ok);
    assert_eq!(b.call(&Request::Ping).unwrap(), Response::Ok);

    // The third connection is refused. The refusal races with accept, so
    // poll until the limit bites.
    let mut refused = false;
    for _ in 0..50 {
        let mut c = std::net::TcpStream::connect(&addr).unwrap();
        let mut tail = Vec::new();
        c.set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        if c.read_to_end(&mut tail).is_ok() && !tail.is_empty() {
            refused = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        refused,
        "third connection should get an error frame + close"
    );

    let report = server.shutdown();
    assert!(report.conns_refused >= 1);
    let trace = db.obs().trace_jsonl().unwrap();
    assert!(trace.contains("ServerOverload"));
}

/// Idle connections are reaped after the timeout and journaled with the
/// `IdleTimeout` cause; active ones are not.
#[test]
fn idle_connections_are_reaped() {
    let db = test_db(true);
    let server = start_server(db.clone(), |cfg| {
        cfg.idle_timeout = Duration::from_millis(100);
    });
    let addr = server.local_addr().to_string();

    let mut idle = std::net::TcpStream::connect(&addr).unwrap();
    idle.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    // First confirm the connection works, then go quiet.
    let mut hello = Vec::new();
    adcache_server::encode_request(&mut hello, 1, &Request::Ping);
    idle.write_all(&hello).unwrap();
    let mut chunk = [0u8; 64];
    let n = idle.read(&mut chunk).unwrap();
    assert!(n > 0);

    // The server should close us well within 5 s.
    let mut rest = Vec::new();
    idle.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "no extra frames expected on idle close");

    server.shutdown();
    let trace = db.obs().trace_jsonl().unwrap();
    assert!(trace.contains("IdleTimeout"));
}

/// The telemetry plane over the wire: with an enabled `Obs`, `METRICS`
/// serves both export formats, every request records a full stage
/// breakdown into `server.stage.*`, and engine lock accounting shows up
/// as `engine.lock.*`. Without telemetry the opcode answers `Err`.
#[test]
fn metrics_opcode_serves_registry_and_stage_breakdown() {
    let db = test_db(true);
    let server = start_server(db, |_| {});
    let addr = server.local_addr().to_string();
    let mut c = Client::connect(&addr).unwrap();

    for i in 0..200u64 {
        c.call(&Request::Get {
            key: render_key(i % 2_000),
        })
        .unwrap();
        if i % 4 == 0 {
            c.call(&Request::Put {
                key: render_key(i),
                value: Bytes::from(format!("mv-{i}")),
            })
            .unwrap();
        }
    }

    let json = c.metrics(MetricsFormat::Json).unwrap();
    let v: serde_json::Value = serde_json::from_str(&json).expect("metrics JSON parses");
    let text = serde_json::to_string(&v).unwrap();
    for stage in [
        "server.stage.recv",
        "server.stage.parse",
        "server.stage.queue_wait",
        "server.stage.lock_wait",
        "server.stage.engine_exec",
        "server.stage.cache_layer",
        "server.stage.reply_flush",
        "server.stage.total",
    ] {
        assert!(text.contains(stage), "missing {stage} in {json}");
    }
    assert!(text.contains("engine.lock.read.acquisitions"));
    assert!(text.contains("engine.lock.write.wait_ns"));
    assert!(text.contains("sum_ns"), "histograms must export sum_ns");

    let prom = c.metrics(MetricsFormat::Prometheus).unwrap();
    assert!(prom.contains("# TYPE adcache_server_requests counter"));
    assert!(prom.contains("# TYPE adcache_server_stage_total summary"));
    assert!(prom.contains("quantile=\"0.99\""));
    server.shutdown();

    // Telemetry off: the opcode answers a clean Err and the connection
    // keeps serving.
    let db = test_db(false);
    let server = start_server(db, |_| {});
    let addr = server.local_addr().to_string();
    let mut c = Client::connect(&addr).unwrap();
    let err = c.metrics(MetricsFormat::Json).unwrap_err();
    assert!(err.to_string().contains("telemetry disabled"), "{err}");
    assert_eq!(c.call(&Request::Ping).unwrap(), Response::Ok);
    server.shutdown();
}

/// A deliberately slow request (large scan) lands in the journal as a
/// `SlowRequest` event with a stage breakdown that sums to its total.
#[test]
fn slow_requests_are_journaled_with_stage_breakdown() {
    let db = test_db(true);
    let server = start_server(db.clone(), |cfg| cfg.slow_request_ns = 1); // everything is "slow"
    let addr = server.local_addr().to_string();
    let mut c = Client::connect(&addr).unwrap();
    c.call(&Request::Scan {
        from: render_key(0),
        limit: 100,
    })
    .unwrap();
    server.shutdown();

    let trace = db.obs().trace_jsonl().unwrap();
    let line = trace
        .lines()
        .find(|l| l.contains("SlowRequest") && l.contains("\"opcode\":\"scan\""))
        .expect("scan must journal a SlowRequest");
    for field in [
        "total_ns",
        "recv_ns",
        "parse_ns",
        "queue_ns",
        "lock_wait_ns",
        "engine_ns",
        "cache_ns",
        "reply_ns",
        "key",
    ] {
        assert!(line.contains(field), "missing {field} in {line}");
    }
    assert!(line.contains("..+100"), "scan key renders from..+limit");
}

/// A blended adversarial run against a quota-enforcing server: hostile
/// connections draw scan floods while legit connections run zipfian
/// traffic. Quota rejections land in `errors_by_cause["quota"]`, never
/// abort FIFO reply verification, and every op still completes.
#[test]
fn adversarial_blend_classifies_quota_errors_without_protocol_damage() {
    let db = test_db(true);
    let server = start_server(db.clone(), |cfg| {
        cfg.quota_ops = 200;
        cfg.quota_burst = 50;
    });
    let addr = server.local_addr().to_string();

    let report = loadgen::run(&LoadgenConfig {
        addr,
        connections: 4,
        ops: 4_000,
        mix: Mix::new(60.0, 10.0, 0.0, 30.0),
        workload: WorkloadConfig {
            num_keys: 2_000,
            value_size: 64,
            seed: 13,
            ..Default::default()
        },
        target_qps: None,
        batch: 0,
        adversary: Some(AdversaryConfig::new(AdversaryKind::ScanFlood, 2_000, 99)),
        adversary_frac: 0.5,
        ..Default::default()
    })
    .unwrap();

    assert_eq!(report.ops, 4_000, "every op completes despite throttling");
    assert_eq!(
        report.protocol_errors, 0,
        "Err replies must not desync FIFO"
    );
    assert_eq!(report.adversary_ops, 2_000, "half the connections attack");
    let quota = report.errors_by_cause.get("quota").copied().unwrap_or(0);
    assert!(
        quota > 0,
        "scan flood must trip the quota: {:?}",
        report.errors_by_cause
    );
    assert_eq!(
        quota, report.server_errors,
        "all errors in this run are quota rejections"
    );
    assert!(report.legit_latency.count() > 0);
    assert_eq!(
        report.legit_latency.count() + report.adversary_ops,
        report.ops
    );

    let serve = server.shutdown();
    assert!(serve.quota_throttled > 0);
    assert_eq!(serve.conns_accepted, serve.conns_closed, "clean drain");
}

/// Per-connection admission quota: a connection that exceeds its token
/// bucket gets `Err` replies that start with "quota", stays connected,
/// and recovers once the bucket refills. Control-plane opcodes (Ping,
/// Stats) are exempt even while the bucket is dry, and the throttling is
/// visible in the drain report, stats, and journal.
#[test]
fn quota_throttles_with_error_replies_and_the_connection_survives() {
    let db = test_db(true);
    let server = start_server(db.clone(), |cfg| {
        cfg.quota_ops = 20;
        cfg.quota_burst = 20;
    });
    let addr = server.local_addr().to_string();
    let mut c = Client::connect(&addr).unwrap();

    // Burn through the burst and well past it as fast as we can send.
    let mut ok = 0u64;
    let mut throttled = 0u64;
    for i in 0..200u64 {
        match c
            .call(&Request::Get {
                key: render_key(i % 2_000),
            })
            .unwrap()
        {
            Response::Value(_) | Response::NotFound => ok += 1,
            Response::Error(msg) => {
                assert!(msg.starts_with("quota"), "unexpected error: {msg}");
                throttled += 1;
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert!(ok >= 20, "the burst allowance must be admitted, got {ok}");
    assert!(throttled > 0, "200 instant ops must exhaust a 20-op bucket");

    // The control plane stays reachable while the bucket is dry.
    assert_eq!(c.call(&Request::Ping).unwrap(), Response::Ok);
    let stats = c.stats().unwrap();
    assert!(stats.contains("\"quota_throttled\""), "stats: {stats}");

    // After a refill interval the same connection serves data again.
    std::thread::sleep(Duration::from_millis(300));
    assert!(
        matches!(
            c.call(&Request::Get { key: render_key(1) }).unwrap(),
            Response::Value(_)
        ),
        "bucket must refill"
    );

    let report = server.shutdown();
    assert_eq!(report.quota_throttled, throttled);
    assert_eq!(report.conns_accepted, report.conns_closed);
    let trace = db.obs().trace_jsonl().unwrap();
    assert!(trace.contains("QuotaThrottled"));
}

/// The `Batch` opcode end to end: one frame carrying heterogeneous subs
/// comes back as one in-order multi-reply with per-sub statuses, writes
/// are visible to later subs in the same batch, and a batched loadgen
/// run completes with zero protocol errors while the journal and
/// metrics record the batch plane.
#[test]
fn batch_opcode_serves_heterogeneous_subs_and_batched_load() {
    let db = test_db(true);
    let server = start_server(db.clone(), |_| {});
    let addr = server.local_addr().to_string();
    let mut c = Client::connect(&addr).unwrap();

    let subs = vec![
        Request::Ping,
        Request::Get {
            key: render_key(42),
        },
        Request::Get {
            key: Bytes::from_static(b"absent"),
        },
        Request::Put {
            key: Bytes::from_static(b"batched"),
            value: Bytes::from_static(b"write"),
        },
        // Read-your-writes within one batch: this Get follows the Put.
        Request::Get {
            key: Bytes::from_static(b"batched"),
        },
        Request::Scan {
            from: render_key(10),
            limit: 4,
        },
        Request::Delete {
            key: Bytes::from_static(b"batched"),
        },
        Request::Get {
            key: Bytes::from_static(b"batched"),
        },
    ];
    let echo: Vec<_> = subs.iter().map(|s| s.opcode()).collect();
    let replies = match c.call(&Request::Batch { subs }).unwrap() {
        Response::Batch(replies) => replies,
        other => panic!("batch answered {other:?}"),
    };
    assert_eq!(replies.len(), 8);
    for ((got, _), want) in replies.iter().zip(&echo) {
        assert_eq!(got, want, "sub replies echo opcodes in request order");
    }
    assert_eq!(replies[0].1, Response::Ok);
    assert_eq!(replies[1].1, Response::Value(Bytes::from("seed-00042")));
    assert_eq!(replies[2].1, Response::NotFound);
    assert_eq!(replies[3].1, Response::Ok);
    assert_eq!(replies[4].1, Response::Value(Bytes::from_static(b"write")));
    match &replies[5].1 {
        Response::Entries(entries) => assert_eq!(entries.len(), 4),
        other => panic!("scan sub answered {other:?}"),
    }
    assert_eq!(replies[6].1, Response::Ok);
    assert_eq!(replies[7].1, Response::NotFound, "delete visible in-batch");

    // A batched load run: every sub verified FIFO, nothing lost.
    let report = loadgen::run(&LoadgenConfig {
        addr,
        connections: 8,
        ops: 8_000,
        mix: Mix::new(40.0, 25.0, 5.0, 30.0),
        workload: WorkloadConfig {
            num_keys: 2_000,
            value_size: 64,
            seed: 17,
            ..Default::default()
        },
        target_qps: None,
        batch: 16,
        ..Default::default()
    })
    .unwrap();
    assert_eq!(report.ops, 8_000, "every batched op must complete");
    assert_eq!(report.protocol_errors, 0, "batch replies stay in order");
    assert_eq!(report.server_errors, 0);
    // 1000 ops per connection = 62 full batches + an 8-op tail = 63
    // frames each; latency records one RTT per *frame*, not per sub.
    assert_eq!(
        report.latency.count(),
        8 * 63,
        "latency records one RTT per batch frame"
    );

    server.shutdown();
    let metrics = db.obs().metrics_json().unwrap();
    assert!(metrics.contains("server.latency.batch"));
    assert!(metrics.contains("server.batch.subs"));
    assert!(metrics.contains("server.batch.stripes"));
    let trace = db.obs().trace_jsonl().unwrap();
    assert!(trace.contains("BatchServed"), "batches must be journaled");
}

/// The `server.inflight` gauge counts concurrently executing requests —
/// under multi-worker load it must be observed above 1 (the old set(1)
/// implementation could never exceed 1 no matter the parallelism).
#[test]
fn inflight_gauge_exceeds_one_under_multi_worker_load() {
    let db = test_db(true);
    let server = start_server(db.clone(), |cfg| cfg.workers = 2);
    let addr = server.local_addr().to_string();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut drivers = Vec::new();
    for _ in 0..4 {
        let addr = addr.clone();
        let stop = stop.clone();
        drivers.push(std::thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                c.call(&Request::Scan {
                    from: render_key(0),
                    limit: 2_000,
                })
                .unwrap();
            }
        }));
    }

    // Sample the gauge until both workers are caught mid-request.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let mut max_seen = 0i64;
    while max_seen <= 1 && std::time::Instant::now() < deadline {
        let v: serde_json::Value = serde_json::from_str(&db.obs().metrics_json().unwrap()).unwrap();
        let inflight = v
            .get("gauges")
            .and_then(|g| g.get("server.inflight"))
            .and_then(|n| n.as_i64())
            .unwrap_or(0);
        max_seen = max_seen.max(inflight);
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for d in drivers {
        d.join().unwrap();
    }
    assert!(
        max_seen > 1,
        "two busy workers must be observable concurrently, saw {max_seen}"
    );
    server.shutdown();
}

/// Wire-level backpressure: a client that floods pipelined scans without
/// reading replies must not balloon the server's write buffer — the
/// server stops reading at the cap, resumes when the client drains, and
/// every reply still arrives in order.
#[test]
fn scan_flood_against_a_non_reading_client_stays_bounded_and_loses_nothing() {
    let db = test_db(false);
    let server = start_server(db, |cfg| {
        cfg.max_write_buffer = 64 << 10;
    });
    let addr = server.local_addr().to_string();
    let mut stream = std::net::TcpStream::connect(&addr).unwrap();
    stream.set_nodelay(true).unwrap();

    // ~10 KiB of reply per frame, 400 frames: far beyond the 64 KiB cap.
    let mut burst = Vec::new();
    for i in 0..400u64 {
        adcache_server::encode_request(
            &mut burst,
            i,
            &Request::Scan {
                from: render_key(0),
                limit: 256,
            },
        );
    }
    stream.write_all(&burst).unwrap();
    // Give the server time to hit the cap while we refuse to read.
    std::thread::sleep(Duration::from_millis(300));

    // Now drain: every reply arrives, in request order.
    let mut rbuf = Vec::new();
    let mut chunk = [0u8; 64 << 10];
    let mut next_expected = 0u64;
    while next_expected < 400 {
        loop {
            match adcache_server::decode_response(&rbuf, 16 << 20, adcache_server::Opcode::Scan) {
                adcache_server::Progress::Frame(Ok((id, resp)), consumed) => {
                    assert_eq!(id, next_expected, "replies must stay in request order");
                    match resp {
                        Response::Entries(entries) => assert_eq!(entries.len(), 256),
                        other => panic!("scan answered {other:?}"),
                    }
                    rbuf.drain(..consumed);
                    next_expected += 1;
                }
                adcache_server::Progress::Incomplete => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        if next_expected < 400 {
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0, "server closed with {next_expected}/400 replies");
            rbuf.extend_from_slice(&chunk[..n]);
        }
    }
    drop(stream);
    let report = server.shutdown();
    assert_eq!(report.requests, 400, "every buffered frame executed");
    assert_eq!(report.protocol_errors, 0);
}

/// A client-issued `Shutdown` frame is acknowledged and then drains the
/// whole server — `wait()` returns without any local trigger.
#[test]
fn shutdown_opcode_drains_the_server() {
    let db = test_db(false);
    let server = start_server(db.clone(), |_| {});
    let addr = server.local_addr().to_string();

    let mut c = Client::connect(&addr).unwrap();
    c.call(&Request::Put {
        key: Bytes::from_static(b"durable"),
        value: Bytes::from_static(b"yes"),
    })
    .unwrap();
    c.shutdown_server().unwrap();

    let report = server.wait();
    assert!(report.requests >= 2);
    assert_eq!(report.conns_accepted, report.conns_closed);
    // The acknowledged write survived the drain (engine flushed).
    assert_eq!(
        db.get(b"durable").unwrap().map(|v| v.to_vec()),
        Some(b"yes".to_vec())
    );
}

/// Wire-level backward compatibility: a legacy client that has never
/// heard of AUTH sends byte-identical pre-tenant frames (hand-encoded
/// here so a protocol-layer change cannot mask a drift) and gets exactly
/// the old behavior — served by the default tenant, full cache budget,
/// no extra partitions, no throttling.
#[test]
fn legacy_connections_without_auth_are_served_unchanged() {
    let db = test_db(false);
    let server = start_server(db.clone(), |cfg| {
        // Tenant quotas on: they must not touch unauthenticated traffic.
        cfg.tenant_quota_ops = 10;
        cfg.tenant_quota_burst = 10;
    });
    let addr = server.local_addr().to_string();

    // Raw pre-tenant GET frame:
    // [u32 len][u64 id][u8 opcode=1][u32 key_len][key].
    let key = render_key(42);
    let mut frame = Vec::new();
    frame.extend_from_slice(&(8u32 + 1 + 4 + key.len() as u32).to_le_bytes());
    frame.extend_from_slice(&7u64.to_le_bytes());
    frame.push(1);
    frame.extend_from_slice(&(key.len() as u32).to_le_bytes());
    frame.extend_from_slice(&key);
    let mut sock = std::net::TcpStream::connect(&addr).unwrap();
    sock.write_all(&frame).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    // Reply: [u32 len][u64 id=7][u8 tag=Value][u32 vlen][value].
    let mut reply = vec![0u8; 4 + 8 + 1 + 4 + 10];
    sock.read_exact(&mut reply).unwrap();
    assert_eq!(&reply[4..12], &7u64.to_le_bytes(), "id echo");
    assert_eq!(&reply[17..], b"seed-00042", "pre-tenant GET still serves");
    drop(sock);

    // Far more ops than the 10-token tenant bucket: none may throttle,
    // because this connection never bound a tenant.
    let mut c = Client::connect(&addr).unwrap();
    for i in 0..100u64 {
        match c.call(&Request::Get { key: render_key(i) }).unwrap() {
            Response::Value(_) | Response::NotFound => {}
            other => panic!("legacy traffic must never throttle: {other:?}"),
        }
    }

    // The engine stayed single-partition: only the default tenant, with
    // the whole budget.
    assert_eq!(db.tenant_ids(), vec![adcache_core::DEFAULT_TENANT]);
    let reports = db.tenant_reports();
    assert_eq!(reports.len(), 1);
    assert!((reports[0].share - 1.0).abs() < 1e-9);

    let report = server.shutdown();
    assert_eq!(report.protocol_errors, 0);
    assert_eq!(report.quota_throttled, 0);
    assert_eq!(report.tenant_throttled, 0);
}

/// Multi-tenant serving end to end: AUTH binds connections to tenants,
/// the engine grows per-tenant partitions, per-tenant stats ride the
/// STATS payload, the aggregated tenant quota throttles a noisy tenant
/// across *all* of its connections while other tenants stay clean, and
/// the journal records the bindings and throttles.
#[test]
fn auth_binds_tenants_and_tenant_quota_aggregates_across_connections() {
    let db = test_db(true);
    let server = start_server(db.clone(), |cfg| {
        cfg.tenant_quota_ops = 50;
        cfg.tenant_quota_burst = 50;
    });
    let addr = server.local_addr().to_string();

    // Tenant 1: two connections sharing one bucket. Tenant 2: one
    // connection, light traffic.
    let mut hot_a = Client::connect(&addr).unwrap();
    hot_a.auth(1).unwrap();
    let mut hot_b = Client::connect(&addr).unwrap();
    hot_b.auth(1).unwrap();
    let mut quiet = Client::connect(&addr).unwrap();
    quiet.auth(2).unwrap();

    let mut ids = db.tenant_ids();
    ids.sort_unstable();
    assert_eq!(ids, vec![0, 1, 2], "AUTH must register engine partitions");

    // Both hot connections hammer; their *combined* admitted volume is
    // bounded by one 50-token bucket, so throttles must appear on both.
    let mut throttled = 0u64;
    let mut admitted = 0u64;
    for i in 0..100u64 {
        for c in [&mut hot_a, &mut hot_b] {
            match c.call(&Request::Get { key: render_key(i) }).unwrap() {
                Response::Value(_) | Response::NotFound => admitted += 1,
                Response::Error(msg) => {
                    assert!(msg.starts_with("quota"), "unexpected error: {msg}");
                    assert!(msg.contains("tenant 1"), "blames the tenant: {msg}");
                    throttled += 1;
                }
                other => panic!("unexpected reply {other:?}"),
            }
        }
    }
    assert!(
        throttled > 0,
        "200 instant ops must drain a 50-token bucket"
    );
    assert!(
        admitted < 150,
        "two connections must share one tenant bucket, admitted {admitted}"
    );

    // The quiet tenant is untouched by tenant 1's throttling.
    for i in 0..20u64 {
        match quiet.call(&Request::Get { key: render_key(i) }).unwrap() {
            Response::Value(_) | Response::NotFound => {}
            other => panic!("quiet tenant must not be throttled: {other:?}"),
        }
    }

    // Per-tenant stats ride the STATS payload.
    let stats = quiet.stats().unwrap();
    assert!(stats.contains("\"tenants\""), "stats: {stats}");
    assert!(stats.contains("\"tenant_throttled\""), "stats: {stats}");

    let report = server.shutdown();
    assert_eq!(report.protocol_errors, 0);
    assert_eq!(report.tenant_throttled, throttled);
    let trace = db.obs().trace_jsonl().unwrap();
    assert!(trace.contains("TenantBound"), "bindings journal");
    assert!(trace.contains("TenantThrottled"), "throttles journal");
    // Tenant 1's ops were charged to its partition, not the default's.
    let reports = db.tenant_reports();
    let of = |t: u32| reports.iter().find(|r| r.tenant == t).unwrap();
    assert!(of(1).ops > 0, "hot tenant ops: {reports:?}");
    assert!(of(2).ops >= 20, "quiet tenant ops: {reports:?}");
}
