//! Adam optimizer (Kingma & Ba) with bias correction.
//!
//! One [`Adam`] instance owns the first/second-moment buffers for a whole
//! network — exactly the "two auxiliary tensors per parameter" the paper's
//! Table 2 charges as training memory overhead (≈4× the parameter bytes
//! together with the gradient buffers).

/// Adam state for a fixed-size parameter vector.
#[derive(Debug, Clone)]
pub struct Adam {
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
    beta1: f32,
    beta2: f32,
    eps: f32,
}

impl Adam {
    /// Creates optimizer state for `param_count` parameters with the
    /// standard hyperparameters (β₁ 0.9, β₂ 0.999, ε 1e-8).
    pub fn new(param_count: usize) -> Self {
        Adam {
            m: vec![0.0; param_count],
            v: vec![0.0; param_count],
            t: 0,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }

    /// Applies one update step at learning rate `lr`. `params` and `grads`
    /// must be flat views in a stable order across calls.
    pub fn step(&mut self, params: &mut [&mut f32], grads: &[f32], lr: f32) {
        assert_eq!(params.len(), self.m.len(), "parameter layout changed");
        assert_eq!(grads.len(), self.m.len());
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..grads.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m[i] / b1t;
            let v_hat = self.v[i] / b2t;
            *params[i] -= lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    /// Bytes used by the optimizer state (the 2× moment buffers).
    pub fn memory_bytes(&self) -> usize {
        (self.m.len() + self.v.len()) * std::mem::size_of::<f32>()
    }

    /// Update steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Adam must drive a convex quadratic to its minimum.
    #[test]
    fn converges_on_quadratic() {
        let mut x = vec![5.0f32, -3.0];
        let mut adam = Adam::new(2);
        for _ in 0..2000 {
            let grads: Vec<f32> = x.iter().map(|&v| 2.0 * v).collect(); // d/dx of x²
            let mut params: Vec<&mut f32> = x.iter_mut().collect();
            adam.step(&mut params, &grads, 0.05);
        }
        assert!(x.iter().all(|v| v.abs() < 0.05), "did not converge: {x:?}");
        assert_eq!(adam.steps(), 2000);
    }

    #[test]
    fn first_step_is_lr_sized() {
        // With bias correction, the first Adam step has magnitude ≈ lr.
        let mut x = [1.0f32];
        let mut adam = Adam::new(1);
        let mut params: Vec<&mut f32> = x.iter_mut().collect();
        adam.step(&mut params, &[0.001], 0.1);
        assert!((1.0 - x[0] - 0.1).abs() < 1e-3, "step was {}", 1.0 - x[0]);
    }

    #[test]
    fn memory_accounting() {
        let adam = Adam::new(70_000);
        assert_eq!(adam.memory_bytes(), 70_000 * 2 * 4);
    }

    #[test]
    #[should_panic]
    fn layout_change_is_detected() {
        let mut adam = Adam::new(2);
        let mut x = [0.0f32];
        let mut params: Vec<&mut f32> = x.iter_mut().collect();
        adam.step(&mut params, &[0.0], 0.1);
    }
}
