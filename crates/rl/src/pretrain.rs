//! Pretraining (paper Section 3.6).
//!
//! Two modes initialize the actor before deployment:
//!
//! - **supervised** — regress the post-sigmoid policy mean onto target
//!   configurations obtained from controlled experiments;
//! - **unsupervised** — replay recorded transitions through the same
//!   actor-critic updates as online learning.
//!
//! Trained agents serialize to JSON so one model can be shipped across
//! machines (the paper's portability argument).

use crate::actor_critic::{ActorCritic, Transition};

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// A labeled pretraining sample: a workload/state vector and the target
/// action configuration (each dim in `[0, 1]`).
#[derive(Debug, Clone)]
pub struct LabeledSample {
    /// State featurization.
    pub state: Vec<f32>,
    /// Target action.
    pub target: Vec<f32>,
}

/// Supervised pretraining: MSE regression of the policy mean onto targets.
/// Returns the final epoch's mean squared error.
pub fn pretrain_supervised(
    agent: &mut ActorCritic,
    samples: &[LabeledSample],
    epochs: usize,
    lr: f32,
) -> f32 {
    let mut last_mse = f32::MAX;
    let (actor, adam) = agent.actor_parts();
    for _ in 0..epochs {
        let mut mse = 0.0;
        for s in samples {
            actor.zero_grad();
            let z = actor.forward(&s.state);
            // dL/dz = 2(mu - t) * mu(1-mu) for L = Σ (mu - t)².
            let dz: Vec<f32> = z
                .iter()
                .zip(&s.target)
                .map(|(&zi, &ti)| {
                    let mu = sigmoid(zi);
                    mse += (mu - ti).powi(2);
                    2.0 * (mu - ti) * mu * (1.0 - mu)
                })
                .collect();
            actor.backward(&dz);
            actor.apply_grads(adam, lr);
        }
        last_mse = mse / samples.len().max(1) as f32;
    }
    last_mse
}

/// Unsupervised pretraining: replay transitions through the online update
/// rule for `epochs` passes.
pub fn pretrain_unsupervised(agent: &mut ActorCritic, transitions: &[Transition], epochs: usize) {
    for _ in 0..epochs {
        for t in transitions {
            agent.update(t);
        }
    }
}

/// Persists an agent to `path` as JSON.
pub fn save_agent(agent: &ActorCritic, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, agent.to_json())
}

/// Restores an agent previously saved with [`save_agent`].
pub fn load_agent(path: &std::path::Path) -> std::io::Result<ActorCritic> {
    let s = std::fs::read_to_string(path)?;
    ActorCritic::from_json(&s).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor_critic::AgentConfig;

    #[test]
    fn supervised_pretraining_fits_targets() {
        let mut cfg = AgentConfig::small(3, 2);
        cfg.seed = 5;
        let mut agent = ActorCritic::new(cfg);
        // Two distinct workload states mapping to distinct configurations.
        let samples = vec![
            LabeledSample {
                state: vec![1.0, 0.0, 0.0],
                target: vec![0.9, 0.1],
            },
            LabeledSample {
                state: vec![0.0, 1.0, 0.0],
                target: vec![0.1, 0.8],
            },
        ];
        let mse = pretrain_supervised(&mut agent, &samples, 300, 5e-3);
        assert!(mse < 0.01, "mse {mse}");
        let a = agent.act_greedy(&[1.0, 0.0, 0.0]);
        assert!(
            (a[0] - 0.9).abs() < 0.1 && (a[1] - 0.1).abs() < 0.1,
            "{a:?}"
        );
        let b = agent.act_greedy(&[0.0, 1.0, 0.0]);
        assert!(
            (b[0] - 0.1).abs() < 0.1 && (b[1] - 0.8).abs() < 0.1,
            "{b:?}"
        );
    }

    #[test]
    fn unsupervised_pretraining_improves_bandit_policy() {
        let mut cfg = AgentConfig::small(1, 1);
        cfg.exploration_std = 0.15;
        cfg.adaptive_lr = false;
        let mut agent = ActorCritic::new(cfg);
        let state = vec![0.5];
        // Offline experience: high reward near a=0.7.
        let mut transitions = Vec::new();
        // Interleave action values so replay order carries no trend.
        for i in 0..200u64 {
            let a = ((i.wrapping_mul(7)) % 20) as f32 / 20.0;
            transitions.push(Transition {
                state: state.clone(),
                action: vec![a],
                reward: 1.0 - (a - 0.7).powi(2) * 4.0,
                next_state: state.clone(),
            });
        }
        pretrain_unsupervised(&mut agent, &transitions, 25);
        let mu = agent.act_greedy(&state)[0];
        assert!((mu - 0.7).abs() < 0.3, "mu {mu}");
    }

    #[test]
    fn save_and_load_roundtrip_via_disk() {
        let mut agent = ActorCritic::new(AgentConfig::small(2, 2));
        let path = std::env::temp_dir().join(format!("adcache-agent-{}.json", std::process::id()));
        save_agent(&agent, &path).unwrap();
        let mut loaded = load_agent(&path).unwrap();
        let s = vec![0.3, 0.7];
        assert_eq!(loaded.act_greedy(&s), agent.act_greedy(&s));
        std::fs::remove_file(&path).unwrap();
        assert!(load_agent(&path).is_err());
    }
}
