//! The actor-critic agent (paper Section 3.5).
//!
//! The actor maps the observed system state (cache statistics + workload
//! features) to continuous control actions in `[0, 1]`: the block/range
//! memory split, the point-admission threshold, and the partial-admission
//! parameters `a` and `b`. The critic estimates the state value; one-step
//! advantage (TD) updates train both online. Exploration adds Gaussian
//! noise around the actor's mean, and the actor's learning rate adapts as
//! `lr ← lr · (1 − reward)` — rising after workload shifts (negative
//! reward) to escape stale optima, decaying during stability.

use crate::adam::Adam;
use crate::layers::XorShift;
use crate::mlp::Mlp;
use serde::{Deserialize, Serialize};

/// One experience tuple.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Transition {
    /// State when the action was chosen.
    pub state: Vec<f32>,
    /// The (possibly exploratory) action taken, each dim in `[0, 1]`.
    pub action: Vec<f32>,
    /// Smoothed reward observed after the action's window.
    pub reward: f32,
    /// State at the end of the window.
    pub next_state: Vec<f32>,
}

/// Agent hyperparameters (defaults follow the paper's Section 5.1 setup).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AgentConfig {
    /// Dimensionality of the state featurization.
    pub state_dim: usize,
    /// Number of control outputs.
    pub action_dim: usize,
    /// Initial actor learning rate (paper: 1e-3).
    pub actor_lr: f32,
    /// Critic learning rate (paper: 1e-3).
    pub critic_lr: f32,
    /// Discount factor for the one-step TD target.
    pub gamma: f32,
    /// Standard deviation of the Gaussian exploration noise.
    pub exploration_std: f32,
    /// Whether the adaptive learning-rate rule is active.
    pub adaptive_lr: bool,
    /// Width of the two hidden layers (paper: 256).
    pub hidden: usize,
    /// RNG seed (exploration is deterministic given the seed).
    pub seed: u64,
}

impl AgentConfig {
    /// The paper's configuration for a given state/action shape.
    pub fn paper_default(state_dim: usize, action_dim: usize) -> Self {
        AgentConfig {
            state_dim,
            action_dim,
            actor_lr: 1e-3,
            critic_lr: 1e-3,
            gamma: 0.9,
            exploration_std: 0.05,
            adaptive_lr: true,
            hidden: 256,
            seed: 0xAD_CAC4E,
        }
    }

    /// A small-network variant for fast tests and simulations where the
    /// full 256-wide model is unnecessary.
    pub fn small(state_dim: usize, action_dim: usize) -> Self {
        AgentConfig {
            hidden: 32,
            ..Self::paper_default(state_dim, action_dim)
        }
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// The online actor-critic controller.
pub struct ActorCritic {
    cfg: AgentConfig,
    actor: Mlp,
    critic: Mlp,
    actor_adam: Adam,
    critic_adam: Adam,
    actor_lr: f32,
    rng: XorShift,
    updates: u64,
    nonfinite_inputs: u64,
}

impl ActorCritic {
    /// Creates an agent with freshly initialized paper-topology networks.
    pub fn new(cfg: AgentConfig) -> Self {
        let widths_a = [cfg.state_dim, cfg.hidden, cfg.hidden, cfg.action_dim];
        let widths_c = [cfg.state_dim, cfg.hidden, cfg.hidden, 1];
        let actor = Mlp::new(&widths_a, crate::layers::Activation::Relu, cfg.seed);
        let critic = Mlp::new(
            &widths_c,
            crate::layers::Activation::Relu,
            cfg.seed.wrapping_add(1),
        );
        let actor_adam = actor.make_adam();
        let critic_adam = critic.make_adam();
        let actor_lr = cfg.actor_lr;
        let rng = XorShift(cfg.seed | 1);
        ActorCritic {
            cfg,
            actor,
            critic,
            actor_adam,
            critic_adam,
            actor_lr,
            rng,
            updates: 0,
            nonfinite_inputs: 0,
        }
    }

    /// The deterministic policy mean: `sigmoid(actor(state))`.
    pub fn act_greedy(&mut self, state: &[f32]) -> Vec<f32> {
        self.actor.forward(state).into_iter().map(sigmoid).collect()
    }

    /// Samples an exploratory action: policy mean plus Gaussian noise,
    /// clamped to `[0, 1]` per dimension.
    pub fn act(&mut self, state: &[f32]) -> Vec<f32> {
        let mu = self.act_greedy(state);
        mu.into_iter()
            .map(|m| (m + self.rng.next_gaussian() * self.cfg.exploration_std).clamp(0.0, 1.0))
            .collect()
    }

    /// One-step advantage actor-critic update from `t`. Returns the TD
    /// error (advantage) of the transition, the training-progress signal
    /// surfaced in observability traces.
    pub fn update(&mut self, t: &Transition) -> f32 {
        debug_assert_eq!(t.state.len(), self.cfg.state_dim);
        debug_assert_eq!(t.action.len(), self.cfg.action_dim);

        // Last line of defense: a single NaN/Inf reaching backprop poisons
        // every weight it touches permanently. Upstream (the controller)
        // sanitizes its own telemetry; anything that still arrives
        // non-finite is dropped here, counted, and reported as a zero
        // TD error rather than trained on.
        let finite = t.reward.is_finite()
            && t.state.iter().all(|x| x.is_finite())
            && t.action.iter().all(|x| x.is_finite())
            && t.next_state.iter().all(|x| x.is_finite());
        if !finite {
            self.nonfinite_inputs += 1;
            return 0.0;
        }

        // Critic: TD(0) target with a frozen bootstrap value.
        let v_next = self.critic.forward(&t.next_state)[0];
        let target = t.reward + self.cfg.gamma * v_next;
        self.critic.zero_grad();
        let v_s = self.critic.forward(&t.state)[0];
        let advantage = target - v_s;
        self.critic.backward(&[2.0 * (v_s - target)]);
        self.critic
            .apply_grads(&mut self.critic_adam, self.cfg.critic_lr);

        // Actor: Gaussian policy gradient through the sigmoid squash.
        // ∂(−adv·logπ)/∂μᵢ ∝ −adv·(aᵢ−μᵢ),  ∂μ/∂z = μ(1−μ).
        //
        // The exact likelihood gradient carries a 1/σ² factor; with the
        // small exploration noise used here that amplifies every update by
        // orders of magnitude and turns the policy into a random walk that
        // destroys pretrained initializations. Dropping the factor is the
        // standard practical normalization (it only rescales the learning
        // rate at fixed σ) and keeps online updates gentle.
        self.actor.zero_grad();
        let z = self.actor.forward(&t.state);
        let dz: Vec<f32> = z
            .iter()
            .zip(&t.action)
            .map(|(&zi, &ai)| {
                let mu = sigmoid(zi);
                let d = -advantage * (ai - mu) * mu * (1.0 - mu);
                d.clamp(-1.0, 1.0)
            })
            .collect();
        self.actor.backward(&dz);
        self.actor.apply_grads(&mut self.actor_adam, self.actor_lr);
        self.updates += 1;
        advantage
    }

    /// Adaptive learning-rate rule (paper Section 3.5):
    /// `lr ← lr · (1 − reward)`, clamped to a sane range. Negative rewards
    /// (hit-rate drops after a workload shift) raise the rate; positive
    /// rewards decay it toward convergence.
    pub fn adapt_lr(&mut self, reward: f32) {
        if self.cfg.adaptive_lr {
            self.actor_lr = (self.actor_lr * (1.0 - reward)).clamp(1e-5, 0.1);
        }
    }

    /// The current (possibly adapted) actor learning rate.
    pub fn actor_lr(&self) -> f32 {
        self.actor_lr
    }

    /// Resets the actor learning rate (e.g. after loading a pretrained
    /// model).
    pub fn set_actor_lr(&mut self, lr: f32) {
        self.actor_lr = lr.clamp(1e-5, 0.1);
    }

    /// Enables or disables the adaptive learning-rate rule (ablations and
    /// pretrained deployments retune this after loading).
    pub fn set_adaptive_lr(&mut self, enabled: bool) {
        self.cfg.adaptive_lr = enabled;
    }

    /// Retunes the exploration noise. The controller couples this to the
    /// adaptive learning rate: explore harder right after a workload shift,
    /// settle once the policy converges.
    pub fn set_exploration_std(&mut self, std: f32) {
        self.cfg.exploration_std = std.clamp(0.0, 0.5);
    }

    /// The current exploration noise level.
    pub fn exploration_std(&self) -> f32 {
        self.cfg.exploration_std
    }

    /// Number of updates applied.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Transitions rejected because they carried NaN/Inf (never trained on).
    pub fn nonfinite_inputs(&self) -> u64 {
        self.nonfinite_inputs
    }

    /// The agent's configuration.
    pub fn config(&self) -> &AgentConfig {
        &self.cfg
    }

    /// Total parameter count across actor and critic (paper Table 2).
    pub fn param_count(&self) -> usize {
        self.actor.param_count() + self.critic.param_count()
    }

    /// Memory accounting matching the paper's Table 2:
    /// `(model_bytes, gradient_bytes, adam_bytes)`.
    pub fn memory_breakdown(&self) -> (usize, usize, usize) {
        let model = self.actor.memory_bytes() + self.critic.memory_bytes();
        // Backprop needs one gradient per parameter; Adam keeps two moments.
        let grads = model;
        let adam = self.actor_adam.memory_bytes() + self.critic_adam.memory_bytes();
        (model, grads, adam)
    }

    /// Direct access to the actor network (pretraining).
    pub fn actor_mut(&mut self) -> &mut Mlp {
        &mut self.actor
    }

    /// Direct access to the actor Adam state (pretraining).
    pub fn actor_parts(&mut self) -> (&mut Mlp, &mut Adam) {
        (&mut self.actor, &mut self.actor_adam)
    }

    /// Serializes both networks plus config to JSON.
    pub fn to_json(&self) -> String {
        let saved = SavedAgent {
            cfg: self.cfg.clone(),
            actor: self.actor.to_json(),
            critic: self.critic.to_json(),
        };
        serde_json::to_string(&saved).expect("agent serialization cannot fail")
    }

    /// Restores an agent saved with [`ActorCritic::to_json`]. Optimizer
    /// state starts fresh (pretrained deployment, paper Section 3.6).
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        let saved: SavedAgent = serde_json::from_str(s)?;
        let actor = Mlp::from_json(&saved.actor)?;
        let critic = Mlp::from_json(&saved.critic)?;
        let actor_adam = actor.make_adam();
        let critic_adam = critic.make_adam();
        let actor_lr = saved.cfg.actor_lr;
        let rng = XorShift(saved.cfg.seed | 1);
        Ok(ActorCritic {
            cfg: saved.cfg,
            actor,
            critic,
            actor_adam,
            critic_adam,
            actor_lr,
            rng,
            updates: 0,
            nonfinite_inputs: 0,
        })
    }
}

#[derive(Serialize, Deserialize)]
struct SavedAgent {
    cfg: AgentConfig,
    actor: String,
    critic: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bandit_reward(a: &[f32]) -> f32 {
        // Peak reward at action (0.8, 0.2): a smooth two-dim bandit.
        1.0 - (a[0] - 0.8).powi(2) - (a[1] - 0.2).powi(2)
    }

    #[test]
    fn actions_are_bounded() {
        let mut agent = ActorCritic::new(AgentConfig::small(4, 3));
        for i in 0..50 {
            let s = vec![i as f32 / 50.0; 4];
            for a in agent.act(&s) {
                assert!((0.0..=1.0).contains(&a));
            }
        }
    }

    #[test]
    fn learns_a_stationary_bandit() {
        let mut cfg = AgentConfig::small(2, 2);
        cfg.exploration_std = 0.1;
        cfg.actor_lr = 3e-3;
        cfg.adaptive_lr = false;
        let mut agent = ActorCritic::new(cfg);
        let state = vec![0.5, 0.5];
        for _ in 0..3000 {
            let action = agent.act(&state);
            let reward = bandit_reward(&action);
            agent.update(&Transition {
                state: state.clone(),
                action,
                reward,
                next_state: state.clone(),
            });
        }
        let mu = agent.act_greedy(&state);
        assert!((mu[0] - 0.8).abs() < 0.2, "mu0 = {}", mu[0]);
        assert!((mu[1] - 0.2).abs() < 0.2, "mu1 = {}", mu[1]);
    }

    #[test]
    fn adaptive_lr_rises_on_negative_reward() {
        let mut agent = ActorCritic::new(AgentConfig::small(2, 2));
        let lr0 = agent.actor_lr();
        agent.adapt_lr(-0.5);
        assert!(agent.actor_lr() > lr0, "negative reward must raise lr");
        let lr1 = agent.actor_lr();
        agent.adapt_lr(0.5);
        assert!(agent.actor_lr() < lr1, "positive reward must lower lr");
        // Clamped at both ends.
        for _ in 0..100 {
            agent.adapt_lr(-1.0);
        }
        assert!(agent.actor_lr() <= 0.1);
        for _ in 0..1000 {
            agent.adapt_lr(0.99);
        }
        assert!(agent.actor_lr() >= 1e-5);
    }

    #[test]
    fn memory_matches_paper_table2() {
        let agent = ActorCritic::new(AgentConfig::paper_default(12, 4));
        let (model, grads, adam) = agent.memory_breakdown();
        // Paper: ~550 KB weights, total training overhead ≈ 4× weights ≈ 2 MB.
        assert!((500_000..650_000).contains(&model), "model bytes {model}");
        assert_eq!(grads, model);
        assert_eq!(adam, 2 * model);
        let total = model + grads + adam;
        assert!((2_000_000..2_600_000).contains(&total), "total {total}");
        assert!((130_000..160_000).contains(&agent.param_count()));
    }

    #[test]
    fn save_load_preserves_policy() {
        let mut agent = ActorCritic::new(AgentConfig::small(3, 2));
        let s = vec![0.2, 0.4, 0.6];
        // Train a little so the weights are not fresh.
        for _ in 0..20 {
            let a = agent.act(&s);
            agent.update(&Transition {
                state: s.clone(),
                action: a,
                reward: 0.3,
                next_state: s.clone(),
            });
        }
        let mu = agent.act_greedy(&s);
        let mut restored = ActorCritic::from_json(&agent.to_json()).unwrap();
        assert_eq!(restored.act_greedy(&s), mu);
        assert_eq!(restored.updates(), 0, "optimizer state starts fresh");
    }

    #[test]
    fn nonfinite_transitions_are_rejected_not_trained_on() {
        let mut agent = ActorCritic::new(AgentConfig::small(2, 2));
        let s = vec![0.5, 0.5];
        let clean_mu = agent.act_greedy(&s);
        let poisoned = Transition {
            state: vec![f32::NAN, 0.5],
            action: vec![0.5, 0.5],
            reward: 0.1,
            next_state: s.clone(),
        };
        assert_eq!(agent.update(&poisoned), 0.0);
        let inf_reward = Transition {
            state: s.clone(),
            action: vec![0.5, 0.5],
            reward: f32::INFINITY,
            next_state: s.clone(),
        };
        assert_eq!(agent.update(&inf_reward), 0.0);
        assert_eq!(agent.nonfinite_inputs(), 2);
        assert_eq!(agent.updates(), 0, "poisoned transitions never count");
        // The policy is untouched and still finite.
        let mu = agent.act_greedy(&s);
        assert_eq!(mu, clean_mu);
        assert!(mu.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn exploration_is_deterministic_per_seed() {
        let mk = |seed| {
            let mut cfg = AgentConfig::small(2, 2);
            cfg.seed = seed;
            ActorCritic::new(cfg)
        };
        let s = vec![0.1, 0.9];
        let a1 = mk(7).act(&s);
        let a2 = mk(7).act(&s);
        let a3 = mk(8).act(&s);
        assert_eq!(a1, a2);
        assert_ne!(a1, a3);
    }
}
