//! Multi-layer perceptron: the network shape used by both the actor and the
//! critic (paper Section 4.3: input layer, two 256-wide hidden layers, an
//! output layer, 32-bit floats).

use crate::adam::Adam;
use crate::layers::{Activation, Linear};
use serde::{Deserialize, Serialize};

/// A feed-forward network with reverse-mode gradients.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Builds the paper's default topology:
    /// `input → 256 (ReLU) → 256 (ReLU) → output (Identity)`.
    pub fn paper_default(input_dim: usize, output_dim: usize, seed: u64) -> Self {
        Self::new(&[input_dim, 256, 256, output_dim], Activation::Relu, seed)
    }

    /// Builds an MLP with the given layer widths. Hidden layers use
    /// `hidden_act`; the output layer is linear (callers squash as needed).
    pub fn new(widths: &[usize], hidden_act: Activation, seed: u64) -> Self {
        assert!(widths.len() >= 2, "need at least input and output widths");
        let mut layers = Vec::with_capacity(widths.len() - 1);
        for (i, w) in widths.windows(2).enumerate() {
            let act = if i + 2 == widths.len() {
                Activation::Identity
            } else {
                hidden_act
            };
            layers.push(Linear::new(
                w[0],
                w[1],
                act,
                seed.wrapping_add(i as u64 * 7919),
            ));
        }
        Mlp { layers }
    }

    /// Forward pass (caches per-layer activations for `backward`).
    pub fn forward(&mut self, x: &[f32]) -> Vec<f32> {
        let mut cur = x.to_vec();
        for layer in &mut self.layers {
            cur = layer.forward(&cur);
        }
        cur
    }

    /// Backward pass from `dL/d(output)`; returns `dL/d(input)`.
    pub fn backward(&mut self, dout: &[f32]) -> Vec<f32> {
        let mut grad = dout.to_vec();
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        grad
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Parameter bytes at f32 precision.
    pub fn memory_bytes(&self) -> usize {
        self.param_count() * std::mem::size_of::<f32>()
    }

    /// Creates optimizer state sized for this network.
    pub fn make_adam(&self) -> Adam {
        Adam::new(self.param_count())
    }

    /// Applies one Adam step using the accumulated gradients, then clears
    /// them. No-op if `backward` was never called.
    pub fn apply_grads(&mut self, adam: &mut Adam, lr: f32) {
        let mut params: Vec<&mut f32> = Vec::with_capacity(self.param_count());
        let mut grads: Vec<f32> = Vec::with_capacity(self.param_count());
        for layer in &mut self.layers {
            let Some((p, g)) = layer.params_and_grads() else {
                return;
            };
            params.extend(p);
            grads.extend(g);
        }
        adam.step(&mut params, &grads, lr);
        self.zero_grad();
    }

    /// Serializes the weights to JSON (the pretrained-model format).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("MLP serialization cannot fail")
    }

    /// Restores a network saved with [`Mlp::to_json`].
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Layer widths, input first.
    pub fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.layers.iter().map(|l| l.in_dim()).collect();
        if let Some(last) = self.layers.last() {
            w.push(last.out_dim());
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table2_scale() {
        // State ~12 features, 4 actions: actor+critic together must land
        // near the paper's "roughly 140,000 parameters / ~550 KB".
        let actor = Mlp::paper_default(12, 4, 1);
        let critic = Mlp::paper_default(12, 1, 2);
        let total = actor.param_count() + critic.param_count();
        assert!((130_000..160_000).contains(&total), "total params {total}");
        let bytes = actor.memory_bytes() + critic.memory_bytes();
        assert!((500_000..650_000).contains(&bytes), "weight bytes {bytes}");
    }

    #[test]
    fn learns_a_simple_regression() {
        // Fit y = [2x0 - x1] with plain SGD-through-Adam.
        let mut net = Mlp::new(&[2, 16, 1], Activation::Tanh, 3);
        let mut adam = net.make_adam();
        let data: Vec<([f32; 2], f32)> = (0..64)
            .map(|i| {
                let x0 = ((i % 8) as f32) / 8.0 - 0.5;
                let x1 = ((i / 8) as f32) / 8.0 - 0.5;
                ([x0, x1], 2.0 * x0 - x1)
            })
            .collect();
        for _ in 0..400 {
            for (x, y) in &data {
                let out = net.forward(x);
                let err = out[0] - y;
                net.backward(&[2.0 * err]);
                net.apply_grads(&mut adam, 0.01);
            }
        }
        let mut mse = 0.0;
        for (x, y) in &data {
            let out = net.forward(x);
            mse += (out[0] - y).powi(2);
        }
        mse /= data.len() as f32;
        assert!(mse < 0.01, "mse {mse}");
    }

    #[test]
    fn whole_network_gradient_check() {
        let mut net = Mlp::new(&[3, 8, 2], Activation::Tanh, 11);
        let x = [0.1, -0.2, 0.3];
        net.zero_grad();
        net.forward(&x);
        let dx = net.backward(&[1.0, 1.0]);
        let eps = 1e-3;
        for i in 0..3 {
            let mut xp = x;
            xp[i] += eps;
            let up: f32 = net.forward(&xp).iter().sum();
            xp[i] -= 2.0 * eps;
            let down: f32 = net.forward(&xp).iter().sum();
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (numeric - dx[i]).abs() < 1e-2,
                "dx[{i}]: {numeric} vs {}",
                dx[i]
            );
        }
    }

    #[test]
    fn json_roundtrip_preserves_behaviour() {
        let mut net = Mlp::paper_default(5, 3, 9);
        let x = [0.1, 0.2, 0.3, 0.4, 0.5];
        let y = net.forward(&x);
        let mut restored = Mlp::from_json(&net.to_json()).unwrap();
        assert_eq!(restored.forward(&x), y);
        assert_eq!(restored.widths(), vec![5, 256, 256, 3]);
    }

    #[test]
    fn apply_grads_without_backward_is_noop() {
        let mut net = Mlp::new(&[2, 4, 1], Activation::Relu, 1);
        let mut adam = net.make_adam();
        let before = net.forward(&[1.0, 1.0]);
        net.apply_grads(&mut adam, 0.1);
        assert_eq!(net.forward(&[1.0, 1.0]), before);
    }
}
