//! Learned share arbitration across tenant cache partitions.
//!
//! Multi-tenant serving splits one cache budget into per-tenant
//! partitions (see `adcache-core`'s tenant module). The split starts
//! static — equal weighted shares — and this module re-learns it online:
//! a gradient-bandit agent ([`ShareAgent`]) consumes per-tenant hit-rate
//! and footprint features each window and shifts preference mass toward
//! the tenants whose demand-weighted miss pressure is highest, i.e. the
//! tenants for which marginal cache bytes buy the most hits. A guarded
//! minimum share ([`guarded_shares`]) keeps any tenant from being starved
//! no matter what the agent learns — the same bounded-blast-radius
//! posture as the admission quotas on the server.

/// Per-tenant window features consumed by the arbiter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantFeatures {
    /// Tenant id the features describe.
    pub tenant: u32,
    /// Result-cache hit rate over the window, in `[0, 1]`.
    pub hit_rate: f64,
    /// Fraction of the tenant's current budget that is resident, in
    /// `[0, 1]`. Low occupancy means more memory would go unused.
    pub occupancy: f64,
    /// Operations the tenant issued in the window (demand).
    pub ops: u64,
}

/// Floor-guaranteed share split: every tenant receives `min_share`
/// outright and the remaining headroom is distributed proportionally to
/// `weights`. The result always sums to 1 and every entry is at least
/// the (feasible) minimum; when `min_share · n > 1` the floor is
/// infeasible and the split degrades to equal shares.
pub fn guarded_shares(weights: &[f64], min_share: f64) -> Vec<f64> {
    let n = weights.len();
    if n == 0 {
        return Vec::new();
    }
    let min = min_share.clamp(0.0, 1.0 / n as f64);
    let head = 1.0 - min * n as f64;
    let sum: f64 = weights.iter().map(|w| w.max(0.0)).sum();
    if sum <= 0.0 || head <= 0.0 {
        return vec![1.0 / n as f64; n];
    }
    weights
        .iter()
        .map(|w| min + head * w.max(0.0) / sum)
        .collect()
}

/// A gradient-bandit arbiter over tenant shares.
///
/// Keeps one unbounded preference per tenant; shares are the softmax of
/// the preferences passed through the [`guarded_shares`] floor. Each
/// [`observe`](Self::observe) call computes a per-tenant utility —
/// demand-weighted miss pressure, discounted when the tenant is not even
/// filling its current slice — and ascends preferences toward tenants
/// whose utility beats the mean. Mean-centering makes the fixed point
/// "equal pressure", so a balanced workload keeps a stable split while a
/// noisy neighbor's victims regain share as their miss pressure rises.
#[derive(Debug, Clone)]
pub struct ShareAgent {
    ids: Vec<u32>,
    prefs: Vec<f64>,
    step: f64,
    min_share: f64,
}

impl ShareAgent {
    /// Creates the agent with uniform preferences over `ids`.
    pub fn new(ids: Vec<u32>, min_share: f64) -> Self {
        ShareAgent {
            prefs: vec![0.0; ids.len()],
            ids,
            step: 0.5,
            min_share,
        }
    }

    /// The tenant ids the agent arbitrates, in share order.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// The guarded minimum share per tenant.
    pub fn min_share(&self) -> f64 {
        self.min_share
    }

    /// Seeds a tenant's preference from an existing share so a rebuilt
    /// agent (tenant set changed) does not discard the learned split.
    pub fn seed_share(&mut self, tenant: u32, share: f64) {
        if let Some(i) = self.ids.iter().position(|&t| t == tenant) {
            self.prefs[i] = share.max(1e-3).ln();
        }
    }

    /// One learning step over a window of per-tenant features; returns
    /// the new `(tenant, share)` split. Features for unknown tenants are
    /// ignored; tenants with no features this window keep their
    /// preference.
    pub fn observe(&mut self, feats: &[TenantFeatures]) -> Vec<(u32, f64)> {
        let total_ops: f64 = feats.iter().map(|f| f.ops as f64).sum();
        if total_ops > 0.0 {
            let mut utils: Vec<(usize, f64)> = Vec::with_capacity(feats.len());
            for f in feats {
                let Some(i) = self.ids.iter().position(|&t| t == f.tenant) else {
                    continue;
                };
                let demand = f.ops as f64 / total_ops;
                let miss = (1.0 - f.hit_rate.clamp(0.0, 1.0)).max(0.0);
                // An under-filled partition gains little from more bytes:
                // discount pressure by occupancy (floored so a cold-start
                // tenant still registers demand).
                let fill = 0.25 + 0.75 * f.occupancy.clamp(0.0, 1.0);
                utils.push((i, demand * miss * fill));
            }
            if !utils.is_empty() {
                let mean = utils.iter().map(|&(_, u)| u).sum::<f64>() / utils.len() as f64;
                for (i, u) in utils {
                    // Clamp so one pathological window cannot pin the
                    // softmax; the floor below bounds starvation anyway.
                    self.prefs[i] = (self.prefs[i] + self.step * (u - mean)).clamp(-4.0, 4.0);
                }
            }
        }
        self.shares()
    }

    /// The current `(tenant, share)` split: softmax of the preferences
    /// under the guarded floor. Sums to 1; every tenant gets at least the
    /// feasible minimum share.
    pub fn shares(&self) -> Vec<(u32, f64)> {
        let max = self.prefs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let weights: Vec<f64> = self.prefs.iter().map(|&p| (p - max).exp()).collect();
        self.ids
            .iter()
            .copied()
            .zip(guarded_shares(&weights, self.min_share))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total(shares: &[(u32, f64)]) -> f64 {
        shares.iter().map(|&(_, s)| s).sum()
    }

    #[test]
    fn uniform_agent_splits_equally() {
        let agent = ShareAgent::new(vec![0, 1, 2, 3], 0.1);
        for (_, s) in agent.shares() {
            assert!((s - 0.25).abs() < 1e-9);
        }
        assert!((total(&agent.shares()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hot_tenant_gains_share_cold_tenants_keep_the_floor() {
        let mut agent = ShareAgent::new(vec![0, 1, 2, 3], 0.1);
        let mut shares = agent.shares();
        for _ in 0..50 {
            let feats: Vec<TenantFeatures> = (0..4)
                .map(|t| TenantFeatures {
                    tenant: t,
                    hit_rate: if t == 0 { 0.1 } else { 0.9 },
                    occupancy: 1.0,
                    ops: if t == 0 { 10_000 } else { 100 },
                })
                .collect();
            shares = agent.observe(&feats);
        }
        let hot = shares[0].1;
        assert!(hot > 0.5, "hot tenant should dominate, got {hot}");
        for &(t, s) in &shares[1..] {
            assert!(s >= 0.1 - 1e-9, "tenant {t} fell below the floor: {s}");
        }
        assert!((total(&shares) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn balanced_pressure_is_a_fixed_point() {
        let mut agent = ShareAgent::new(vec![1, 2], 0.05);
        for _ in 0..20 {
            let feats = [1, 2].map(|t| TenantFeatures {
                tenant: t,
                hit_rate: 0.5,
                occupancy: 0.8,
                ops: 500,
            });
            agent.observe(&feats);
        }
        for (_, s) in agent.shares() {
            assert!((s - 0.5).abs() < 1e-9, "equal pressure must stay equal");
        }
    }

    #[test]
    fn guarded_shares_respects_floor_and_sum() {
        let s = guarded_shares(&[100.0, 1.0, 0.0], 0.2);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for &x in &s {
            assert!(x >= 0.2 - 1e-9);
        }
        // Infeasible floor degrades to equal shares.
        let s = guarded_shares(&[9.0, 1.0], 0.9);
        assert_eq!(s, vec![0.5, 0.5]);
        // Zero weights degrade to equal shares.
        let s = guarded_shares(&[0.0, 0.0], 0.1);
        assert_eq!(s, vec![0.5, 0.5]);
        assert!(guarded_shares(&[], 0.1).is_empty());
    }

    #[test]
    fn seeding_preserves_an_existing_split() {
        let mut agent = ShareAgent::new(vec![0, 7], 0.05);
        agent.seed_share(0, 0.8);
        agent.seed_share(7, 0.2);
        let shares = agent.shares();
        assert!(shares[0].1 > 0.7, "seeded majority survives: {shares:?}");
        assert!((total(&shares) - 1.0).abs() < 1e-9);
    }
}
