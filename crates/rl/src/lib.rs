//! # adcache-rl — a lightweight actor-critic agent in pure Rust
//!
//! The learning substrate of the AdCache reproduction (EDBT 2026). The
//! paper's controller is deliberately small — two fully-connected networks
//! with two 256-wide hidden layers each (~140 k parameters, ~550 KB of
//! weights, Table 2) running on the CPU — so this crate implements the
//! whole stack from scratch rather than binding a deep-learning runtime:
//!
//! - [`matrix`] — dense row-major f32 matrices;
//! - [`layers`] — linear layers + activations with reverse-mode gradients
//!   (finite-difference checked in tests);
//! - [`adam`] — the Adam optimizer;
//! - [`mlp`] — the paper's network topology with JSON persistence;
//! - [`actor_critic`] — Gaussian-policy actor + TD critic, with the
//!   adaptive learning-rate rule `lr ← lr · (1 − reward)`;
//! - [`pretrain`] — supervised and unsupervised pretraining plus on-disk
//!   model persistence (paper Section 3.6);
//! - [`share`] — a gradient-bandit arbiter that re-learns the share
//!   split across tenant cache partitions from per-tenant hit-rate and
//!   footprint features.

#![warn(missing_docs)]

pub mod actor_critic;
pub mod adam;
pub mod layers;
pub mod matrix;
pub mod mlp;
pub mod pretrain;
pub mod share;

pub use actor_critic::{ActorCritic, AgentConfig, Transition};
pub use adam::Adam;
pub use layers::{Activation, Linear};
pub use matrix::Matrix;
pub use mlp::Mlp;
pub use pretrain::{
    load_agent, pretrain_supervised, pretrain_unsupervised, save_agent, LabeledSample,
};
pub use share::{guarded_shares, ShareAgent, TenantFeatures};
