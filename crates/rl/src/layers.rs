//! Fully-connected layers with activations and reverse-mode gradients.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Elementwise nonlinearity applied after the affine transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// `max(0, x)`.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// No nonlinearity.
    Identity,
}

impl Activation {
    fn forward(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Identity => x,
        }
    }

    /// Derivative expressed via the *output* value `y = f(x)` (all four
    /// supported activations admit this form).
    fn derivative_from_output(self, y: f32) -> f32 {
        match self {
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - y * y,
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Identity => 1.0,
        }
    }
}

/// A dense layer `y = act(W x + b)` with gradient accumulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    w: Matrix,
    b: Vec<f32>,
    act: Activation,
    #[serde(skip)]
    grad_w: Option<Matrix>,
    #[serde(skip)]
    grad_b: Vec<f32>,
    #[serde(skip)]
    last_input: Vec<f32>,
    #[serde(skip)]
    last_output: Vec<f32>,
}

/// Deterministic xorshift generator for reproducible initialization.
pub(crate) struct XorShift(pub u64);

impl XorShift {
    pub(crate) fn next_f32(&mut self) -> f32 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        ((self.0 >> 11) as f64 / (1u64 << 53) as f64) as f32
    }

    /// Standard normal via Box–Muller.
    pub(crate) fn next_gaussian(&mut self) -> f32 {
        let u1 = self.next_f32().max(1e-12);
        let u2 = self.next_f32();
        ((-2.0 * (u1 as f64).ln()).sqrt() * (2.0 * std::f64::consts::PI * u2 as f64).cos()) as f32
    }
}

impl Linear {
    /// He-style initialization scaled for the fan-in, deterministic in
    /// `seed`.
    pub fn new(in_dim: usize, out_dim: usize, act: Activation, seed: u64) -> Self {
        let mut rng = XorShift(seed.max(1));
        let scale = (2.0 / in_dim as f32).sqrt();
        let w = Matrix::from_fn(out_dim, in_dim, |_, _| rng.next_gaussian() * scale);
        Linear {
            w,
            b: vec![0.0; out_dim],
            act,
            grad_w: None,
            grad_b: Vec::new(),
            last_input: Vec::new(),
            last_output: Vec::new(),
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.w.cols()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.w.rows()
    }

    /// Parameter count (weights + biases).
    pub fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    /// Forward pass; caches activations for the backward pass.
    pub fn forward(&mut self, x: &[f32]) -> Vec<f32> {
        let mut z = self.w.matvec(x);
        for (zi, bi) in z.iter_mut().zip(&self.b) {
            *zi += bi;
        }
        let y: Vec<f32> = z.iter().map(|&v| self.act.forward(v)).collect();
        self.last_input = x.to_vec();
        self.last_output = y.clone();
        y
    }

    /// Backward pass: given `dL/dy`, accumulates `dL/dW`, `dL/db` and
    /// returns `dL/dx`. Must follow a `forward` call.
    pub fn backward(&mut self, dy: &[f32]) -> Vec<f32> {
        assert_eq!(dy.len(), self.out_dim());
        assert_eq!(
            self.last_input.len(),
            self.in_dim(),
            "backward without forward"
        );
        let dz: Vec<f32> = dy
            .iter()
            .zip(&self.last_output)
            .map(|(&d, &y)| d * self.act.derivative_from_output(y))
            .collect();
        if self.grad_w.is_none() {
            self.grad_w = Some(Matrix::zeros(self.out_dim(), self.in_dim()));
            self.grad_b = vec![0.0; self.out_dim()];
        }
        self.grad_w
            .as_mut()
            .expect("just initialized")
            .add_outer(&dz, &self.last_input);
        for (g, d) in self.grad_b.iter_mut().zip(&dz) {
            *g += d;
        }
        self.w.matvec_t(&dz)
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        if let Some(g) = self.grad_w.as_mut() {
            g.fill_zero();
        }
        self.grad_b.iter_mut().for_each(|g| *g = 0.0);
    }

    /// `(params, grads)` flat views for the optimizer: weights then biases.
    pub fn params_and_grads(&mut self) -> Option<(Vec<&mut f32>, Vec<f32>)> {
        let grad_w = self.grad_w.as_ref()?;
        let grads: Vec<f32> = grad_w
            .as_slice()
            .iter()
            .chain(self.grad_b.iter())
            .copied()
            .collect();
        let params: Vec<&mut f32> = self
            .w
            .as_mut_slice()
            .iter_mut()
            .chain(self.b.iter_mut())
            .collect();
        Some((params, grads))
    }

    /// Immutable weight access for tests.
    pub fn weights(&self) -> &Matrix {
        &self.w
    }

    /// Mutable weight access for tests and finite-difference checks.
    pub fn weights_mut(&mut self) -> &mut Matrix {
        &mut self.w
    }

    /// Bias access for tests.
    pub fn biases(&self) -> &[f32] {
        &self.b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_computes_affine_plus_activation() {
        let mut l = Linear::new(2, 2, Activation::Identity, 1);
        // Overwrite weights deterministically.
        *l.weights_mut() = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        l.b = vec![0.5, -0.5];
        let y = l.forward(&[1.0, 1.0]);
        assert_eq!(y, vec![3.5, 6.5]);

        let mut l = Linear::new(1, 1, Activation::Relu, 1);
        *l.weights_mut() = Matrix::from_vec(1, 1, vec![-1.0]);
        l.b = vec![0.0];
        assert_eq!(l.forward(&[2.0]), vec![0.0]);
    }

    /// Finite-difference gradient check across every activation.
    #[test]
    fn gradients_match_finite_differences() {
        for act in [
            Activation::Relu,
            Activation::Tanh,
            Activation::Sigmoid,
            Activation::Identity,
        ] {
            let mut l = Linear::new(3, 2, act, 42);
            let x = [0.3, -0.7, 0.9];
            // Loss = sum(y), so dL/dy = [1, 1].
            let loss = |l: &mut Linear| -> f32 { l.forward(&x).iter().sum() };

            let base = loss(&mut l);
            let _ = base;
            l.zero_grad();
            l.forward(&x);
            let dx = l.backward(&[1.0, 1.0]);

            let eps = 1e-3;
            // Check dL/dW for a few entries.
            for (r, c) in [(0usize, 0usize), (1, 2), (0, 1)] {
                let orig = l.weights().get(r, c);
                *l.weights_mut().get_mut(r, c) = orig + eps;
                let up = loss(&mut l);
                *l.weights_mut().get_mut(r, c) = orig - eps;
                let down = loss(&mut l);
                *l.weights_mut().get_mut(r, c) = orig;
                let numeric = (up - down) / (2.0 * eps);
                let analytic = l.grad_w.as_ref().unwrap().get(r, c);
                assert!(
                    (numeric - analytic).abs() < 1e-2,
                    "{act:?} dW[{r}][{c}]: numeric {numeric} vs analytic {analytic}"
                );
            }
            // Check dL/dx.
            for i in 0..3 {
                let mut xp = x;
                xp[i] += eps;
                let up: f32 = l.forward(&xp).iter().sum();
                xp[i] -= 2.0 * eps;
                let down: f32 = l.forward(&xp).iter().sum();
                let numeric = (up - down) / (2.0 * eps);
                assert!(
                    (numeric - dx[i]).abs() < 1e-2,
                    "{act:?} dx[{i}]: numeric {numeric} vs analytic {}",
                    dx[i]
                );
            }
        }
    }

    #[test]
    fn zero_grad_resets_accumulation() {
        let mut l = Linear::new(2, 2, Activation::Identity, 7);
        l.forward(&[1.0, 2.0]);
        l.backward(&[1.0, 1.0]);
        l.zero_grad();
        let (_, grads) = l.params_and_grads().unwrap();
        assert!(grads.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn param_count_is_exact() {
        let l = Linear::new(12, 256, Activation::Relu, 1);
        assert_eq!(l.param_count(), 12 * 256 + 256);
    }

    #[test]
    fn serde_skips_caches_but_keeps_weights() {
        let mut l = Linear::new(3, 2, Activation::Tanh, 5);
        l.forward(&[1.0, 2.0, 3.0]);
        let s = serde_json::to_string(&l).unwrap();
        let mut back: Linear = serde_json::from_str(&s).unwrap();
        assert_eq!(back.weights(), l.weights());
        assert_eq!(back.biases(), l.biases());
        // The deserialized layer is immediately usable.
        let y1 = l.forward(&[0.5, 0.5, 0.5]);
        let y2 = back.forward(&[0.5, 0.5, 0.5]);
        assert_eq!(y1, y2);
    }
}
