//! Minimal row-major f32 matrix used by the neural-network layers.
//!
//! The networks here are tiny (two 256-wide hidden layers, batch size 1),
//! so a dependency-free dense matrix with straightforward loops is the
//! right tool: it keeps the crate auditable and the paper's Table 2 memory
//! accounting exact.

use serde::{Deserialize, Serialize};

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix by evaluating `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Wraps an existing buffer (must have `rows * cols` elements).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols);
        Matrix { rows, cols, data }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }

    /// The flat parameter buffer (row-major).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat parameter buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Matrix–vector product `self * x`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols);
        self.data
            .chunks_exact(self.cols)
            .map(|row| row.iter().zip(x).map(|(w, xi)| w * xi).sum())
            .collect()
    }

    /// Transposed matrix–vector product `selfᵀ * y`.
    pub fn matvec_t(&self, y: &[f32]) -> Vec<f32> {
        assert_eq!(y.len(), self.rows);
        let mut out = vec![0.0; self.cols];
        for (row, &yr) in self.data.chunks_exact(self.cols).zip(y) {
            for (o, w) in out.iter_mut().zip(row) {
                *o += w * yr;
            }
        }
        out
    }

    /// Rank-1 update `self += y ⊗ x` (outer product), the weight-gradient
    /// accumulation of a linear layer at batch size 1.
    pub fn add_outer(&mut self, y: &[f32], x: &[f32]) {
        assert_eq!(y.len(), self.rows);
        assert_eq!(x.len(), self.cols);
        for (row, &yr) in self.data.chunks_exact_mut(self.cols).zip(y) {
            for (w, xi) in row.iter_mut().zip(x) {
                *w += yr * xi;
            }
        }
    }

    /// Sets every element to zero.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_matches_hand_computation() {
        // [[1,2],[3,4],[5,6]] * [10, 100] = [210, 430, 650]
        let m = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.matvec(&[10.0, 100.0]), vec![210.0, 430.0, 650.0]);
    }

    #[test]
    fn matvec_t_matches_hand_computation() {
        let m = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        // mᵀ * [1, 1, 1] = [9, 12]
        assert_eq!(m.matvec_t(&[1.0, 1.0, 1.0]), vec![9.0, 12.0]);
    }

    #[test]
    fn add_outer_accumulates() {
        let mut m = Matrix::zeros(2, 3);
        m.add_outer(&[1.0, 2.0], &[10.0, 20.0, 30.0]);
        m.add_outer(&[1.0, 0.0], &[1.0, 1.0, 1.0]);
        assert_eq!(m.as_slice(), &[11.0, 21.0, 31.0, 20.0, 40.0, 60.0]);
    }

    #[test]
    fn from_fn_and_accessors() {
        let m = Matrix::from_fn(2, 2, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.get(1, 0), 10.0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.len(), 4);
        let mut m = m;
        *m.get_mut(0, 1) = 9.0;
        assert_eq!(m.get(0, 1), 9.0);
        m.fill_zero();
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn serde_roundtrip() {
        let m = Matrix::from_fn(3, 4, |r, c| (r + c) as f32);
        let s = serde_json::to_string(&m).unwrap();
        let back: Matrix = serde_json::from_str(&s).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        Matrix::zeros(2, 2).matvec(&[1.0]);
    }
}
