//! Shared experiment harness for the per-figure/table binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure from the
//! paper's evaluation (see DESIGN.md §4 for the index). This library holds
//! the common scaffolding: scaled-down default parameters, a tiny CLI
//! parser, run-config construction, and table/CSV output.
//!
//! Scale note: the paper runs a 100 GB store for 50 M operations per
//! phase; these experiments default to a few-MB store and 10⁵-scale op
//! counts so every figure regenerates in minutes on a laptop. The
//! *relative* behaviour (which strategy wins where, crossover shapes) is
//! what EXPERIMENTS.md compares against the paper. All knobs are
//! overridable: `--keys`, `--ops`, `--value-size`, `--skew`, `--seed`,
//! `--quick` (CI-scale), `--full` (closer to paper proportions).

pub mod pretrain;

pub use pretrain::ensure_pretrained;

use adcache_core::{ControllerConfig, CpuModel, RunConfig, Strategy};
use adcache_lsm::Options;
use adcache_workload::WorkloadConfig;
use std::fmt::Display;
use std::io::Write;
use std::path::PathBuf;

/// Experiment scale parameters.
#[derive(Debug, Clone)]
pub struct ExpParams {
    /// Number of distinct keys in the store.
    pub num_keys: u64,
    /// Value payload bytes.
    pub value_size: usize,
    /// Measured operations per run.
    pub ops: u64,
    /// Zipfian skew.
    pub skew: f64,
    /// Cache sizes as fractions of the dataset size.
    pub cache_fracs: Vec<f64>,
    /// Controller window (paper: 1000).
    pub window: u64,
    /// Agent hidden width (paper: 256; scaled runs may shrink it).
    pub hidden: usize,
    /// Reward smoothing factor.
    pub alpha: f64,
    /// Workload seed.
    pub seed: u64,
}

impl Default for ExpParams {
    fn default() -> Self {
        ExpParams {
            num_keys: 50_000,
            value_size: 64,
            ops: 60_000,
            skew: 0.9,
            cache_fracs: vec![0.025, 0.05, 0.1, 0.2, 0.4],
            window: 1000,
            hidden: 64,
            alpha: 0.9,
            seed: 42,
        }
    }
}

impl ExpParams {
    /// Parses overrides from `std::env::args`.
    pub fn from_args() -> Self {
        let mut p = ExpParams::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        let get_val = |args: &[String], i: &mut usize| -> String {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| panic!("missing value for {}", args[*i - 1]))
                .clone()
        };
        while i < args.len() {
            match args[i].as_str() {
                "--keys" => p.num_keys = get_val(&args, &mut i).parse().expect("--keys"),
                "--ops" => p.ops = get_val(&args, &mut i).parse().expect("--ops"),
                "--value-size" => {
                    p.value_size = get_val(&args, &mut i).parse().expect("--value-size")
                }
                "--skew" => p.skew = get_val(&args, &mut i).parse().expect("--skew"),
                "--seed" => p.seed = get_val(&args, &mut i).parse().expect("--seed"),
                "--window" => p.window = get_val(&args, &mut i).parse().expect("--window"),
                "--hidden" => p.hidden = get_val(&args, &mut i).parse().expect("--hidden"),
                "--quick" => {
                    p.num_keys = 10_000;
                    p.ops = 12_000;
                    p.cache_fracs = vec![0.05, 0.2];
                    p.window = 500;
                    p.hidden = 16;
                }
                "--full" => {
                    p.num_keys = 200_000;
                    p.ops = 300_000;
                    p.value_size = 256;
                    p.hidden = 256;
                }
                other => panic!("unknown argument {other}"),
            }
            i += 1;
        }
        p
    }

    /// Approximate dataset size in bytes (keys + values + per-entry
    /// encoding overhead).
    pub fn dataset_bytes(&self) -> usize {
        self.num_keys as usize * (24 + self.value_size + 9)
    }

    /// The workload configuration for these parameters.
    pub fn workload(&self) -> WorkloadConfig {
        WorkloadConfig {
            num_keys: self.num_keys,
            value_size: self.value_size,
            point_skew: self.skew,
            scan_skew: self.skew,
            seed: self.seed,
            ..Default::default()
        }
    }

    /// A run configuration for `strategy` at `cache_frac` of the dataset.
    pub fn run_config(&self, strategy: Strategy, cache_frac: f64) -> RunConfig {
        let cache_bytes = (self.dataset_bytes() as f64 * cache_frac) as usize;
        RunConfig {
            strategy,
            total_cache_bytes: cache_bytes,
            db_options: Options::small(),
            workload: self.workload(),
            controller: ControllerConfig {
                window: self.window,
                alpha: self.alpha,
                hidden: self.hidden,
                ..Default::default()
            },
            cpu: CpuModel::default(),
            shards: 1,
            pretrained_agent: None,
            pinned_decision: None,
            boundary_hysteresis: 0.02,
            serve_partial_range: true,
            compaction_prefetch_blocks: 0,
            trace_dir: None,
            continue_on_error: false,
        }
    }
}

/// Prints a fixed-width table to stdout.
pub fn print_table<H: Display, C: Display>(title: &str, headers: &[H], rows: &[Vec<C>]) {
    println!("\n== {title} ==");
    let head: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| r.iter().map(|c| c.to_string()).collect())
        .collect();
    let mut widths: Vec<usize> = head.iter().map(|h| h.len()).collect();
    for row in &body {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(&head));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in &body {
        println!("{}", fmt_row(row));
    }
}

/// Writes rows as CSV under `results/` (created if missing); returns the
/// path.
pub fn write_csv<H: Display, C: Display>(
    name: &str,
    headers: &[H],
    rows: &[Vec<C>],
) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut f = std::fs::File::create(&path)?;
    writeln!(
        f,
        "{}",
        headers
            .iter()
            .map(|h| h.to_string())
            .collect::<Vec<_>>()
            .join(",")
    )?;
    for row in rows {
        writeln!(
            f,
            "{}",
            row.iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(",")
        )?;
    }
    println!("[csv] wrote {}", path.display());
    Ok(path)
}

/// Formats a float to 4 decimal places (hit rates).
pub fn f4(v: f64) -> String {
    format!("{v:.4}")
}

/// Formats a float to 1 decimal place (QPS, percentages).
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let p = ExpParams::default();
        assert!(p.dataset_bytes() > 1 << 20);
        let cfg = p.run_config(Strategy::AdCache, 0.1);
        assert_eq!(
            cfg.total_cache_bytes,
            (p.dataset_bytes() as f64 * 0.1) as usize
        );
        assert_eq!(cfg.workload.num_keys, p.num_keys);
    }

    #[test]
    fn csv_writer_produces_files() {
        let p = write_csv("test_csv", &["a", "b"], &[vec![1, 2], vec![3, 4]]).unwrap();
        let content = std::fs::read_to_string(&p).unwrap();
        assert_eq!(content, "a,b\n1,2\n3,4\n");
        std::fs::remove_file(p).unwrap();
    }
}
