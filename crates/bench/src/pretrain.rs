//! Supervised pretraining via controlled experiments (paper Section 3.6).
//!
//! The paper's supervised pretraining option trains the actor on
//! "representative workload vectors paired with target configurations,
//! where the target values can be obtained through controlled
//! experiments". This module reproduces that pipeline end to end:
//!
//! 1. for each representative workload mix, run AdCache with the decision
//!    *pinned* to each candidate configuration in a small grid;
//! 2. pick the configuration with the best steady-state estimated hit
//!    rate — the experiment-derived target;
//! 3. collect the window states observed under the winning configuration
//!    and fit the actor with MSE regression (plus an unsupervised replay
//!    pass for the critic).
//!
//! The trained agent is cached as JSON under `results/` so every figure
//! binary can start from the same initialization, mirroring the paper's
//! "no per-machine retraining" portability argument. At paper scale (50 M
//! ops per phase) the agent converges online from scratch; at this
//! repository's laptop scale pretraining stands in for that long warm-up
//! (EXPERIMENTS.md discusses the substitution).

use crate::ExpParams;
use adcache_core::{featurize_with, CacheDecision, RunConfig, Strategy};
use adcache_core::{ACTION_DIM, STATE_DIM};
use adcache_rl::{
    pretrain_supervised, pretrain_unsupervised, ActorCritic, AgentConfig, LabeledSample, Transition,
};
use adcache_workload::Mix;

/// Representative workload mixes used to derive pretraining targets. These
/// span the paper's evaluation space: point-heavy, scan-heavy (short and
/// long), balanced, and write-heavy.
pub fn representative_mixes() -> Vec<(&'static str, Mix)> {
    vec![
        ("point", Mix::new(100.0, 0.0, 0.0, 0.0)),
        ("short_scan", Mix::new(0.0, 100.0, 0.0, 0.0)),
        ("long_scan", Mix::new(0.0, 0.0, 100.0, 0.0)),
        ("balanced", Mix::new(33.0, 33.0, 0.0, 33.0)),
        ("write_heavy", Mix::new(10.0, 20.0, 10.0, 60.0)),
        ("scan_write", Mix::new(1.0, 49.0, 1.0, 49.0)),
    ]
}

/// Runs the controlled experiment for one mix via a staged search: sweep
/// the memory ratio first (the dominant knob), then the point-admission
/// threshold and the partial-admission parameters at the winning ratio.
/// The best steady-state hit rate wins each stage.
///
/// Returns `(best decision, states)` where the states come from **every**
/// candidate run, not just the winner's — the online controller will
/// encounter this workload while the cache is configured arbitrarily, and
/// the actor must map all of those situations to the winning action.
pub fn controlled_best(
    params: &ExpParams,
    mix: Mix,
    cache_frac: f64,
    ops: u64,
) -> (CacheDecision, Vec<Vec<f32>>) {
    // One shared engine: caches are wiped between candidates; the tree
    // itself only accumulates overwrites, which every candidate tolerates.
    let base_cfg: RunConfig = params.run_config(Strategy::AdCache, cache_frac);
    let db = adcache_core::prepare_db(&base_cfg).expect("prepare");
    let mut states: Vec<Vec<f32>> = Vec::new();

    // Cold caches favour block-granularity warm-up (each miss admits a
    // whole block), so measuring from cold would systematically misjudge
    // result caches at large sizes. Warm un-measured first, sized so the
    // candidate's cache can fully populate, then measure steady state.
    let entry_charge = (24 + params.value_size + 48) as u64;
    let warm_ops = ops.max(2 * base_cfg.total_cache_bytes as u64 / entry_charge);
    let evaluate = |candidate: CacheDecision, states: &mut Vec<Vec<f32>>| -> f64 {
        db.clear_caches();
        let mut cfg = base_cfg.clone();
        cfg.pinned_decision = Some(candidate);
        let warm = adcache_workload::Schedule {
            phases: vec![adcache_workload::Phase {
                name: "warm".into(),
                mix,
                ops: warm_ops,
            }],
        };
        adcache_core::run_schedule_on(&cfg, &warm, &db).expect("warmup run");
        let schedule = adcache_workload::Schedule {
            phases: vec![adcache_workload::Phase {
                name: "ctl".into(),
                mix,
                ops,
            }],
        };
        let r = adcache_core::run_schedule_on(&cfg, &schedule, &db).expect("controlled run");
        states.extend(
            r.windows
                .iter()
                .skip(r.windows.len() / 4)
                .map(|w| featurize_with(candidate.range_ratio, &w.summary)),
        );
        let half = r.windows.len() / 2;
        r.mean_hit_rate(half, r.windows.len())
    };

    // Stage 1: memory ratio.
    let mut best = CacheDecision {
        range_ratio: 0.0,
        point_threshold: 0.0,
        scan_a: 16,
        scan_b: 0.25,
    };
    let mut best_hit = f64::MIN;
    for &range_ratio in &[0.0, 0.25, 0.5, 0.75, 1.0] {
        let c = CacheDecision {
            range_ratio,
            ..best
        };
        let hit = evaluate(c, &mut states);
        if hit > best_hit {
            best_hit = hit;
            best = c;
        }
    }
    // Stage 2: point-admission threshold at the winning ratio.
    for &point_threshold in &[0.0005, 0.002] {
        let c = CacheDecision {
            point_threshold,
            ..best
        };
        let hit = evaluate(c, &mut states);
        if hit > best_hit {
            best_hit = hit;
            best = c;
        }
    }
    // Stage 3: partial-admission parameters.
    for &(scan_a, scan_b) in &[(24usize, 0.1f64), (64, 1.0)] {
        let c = CacheDecision {
            scan_a,
            scan_b,
            ..best
        };
        let hit = evaluate(c, &mut states);
        if hit > best_hit {
            best_hit = hit;
            best = c;
        }
    }
    (best, states)
}

/// Builds a pretrained agent from controlled experiments across the
/// representative mixes and cache sizes. Returns the agent JSON.
pub fn build_pretrained(params: &ExpParams, cache_fracs: &[f64]) -> String {
    let ops = (params.ops / 3).max(6_000);
    let mut samples: Vec<LabeledSample> = Vec::new();
    let mut replay: Vec<Transition> = Vec::new();
    for &cache_frac in cache_fracs {
        for (name, mix) in representative_mixes() {
            let (decision, states) = controlled_best(params, mix, cache_frac, ops);
            eprintln!(
                "[pretrain] {name}@{cache_frac}: ratio={:.2} thr={:.4} a={} b={:.2} ({} states)",
                decision.range_ratio,
                decision.point_threshold,
                decision.scan_a,
                decision.scan_b,
                states.len()
            );
            let target = decision.to_action();
            for s in states {
                // Critic replay: the winning decision holds its hit rate
                // steady, i.e. a mildly positive stationary reward.
                replay.push(Transition {
                    state: s.clone(),
                    action: target.clone(),
                    reward: 0.05,
                    next_state: s.clone(),
                });
                samples.push(LabeledSample {
                    state: s,
                    target: target.clone(),
                });
            }
        }
    }
    let mut agent_cfg = AgentConfig::paper_default(STATE_DIM, ACTION_DIM);
    agent_cfg.hidden = params.hidden;
    agent_cfg.seed = params.seed ^ 0xBEEF;
    let mut agent = ActorCritic::new(agent_cfg);
    // Epoch count scales inversely with the corpus so total gradient steps
    // (and wall time) stay bounded at any experiment scale.
    let epochs = (400_000 / samples.len().max(1)).clamp(30, 300);
    let mse = pretrain_supervised(&mut agent, &samples, epochs, 2e-3);
    eprintln!(
        "[pretrain] supervised fit over {} samples, final mse {mse:.5}",
        samples.len()
    );
    pretrain_unsupervised(&mut agent, &replay, 2);
    agent.to_json()
}

/// Returns the cached pretrained-agent JSON, building it on first use.
/// The cache key includes the scale parameters so `--quick`/`--full` runs
/// do not reuse a mismatched model.
pub fn ensure_pretrained(params: &ExpParams) -> String {
    let dir = std::path::PathBuf::from("results");
    std::fs::create_dir_all(&dir).expect("results dir");
    let path = dir.join(format!(
        "pretrained_k{}_v{}_h{}_s{}.json",
        params.num_keys, params.value_size, params.hidden, params.seed
    ));
    if let Ok(json) = std::fs::read_to_string(&path) {
        if ActorCritic::from_json(&json).is_ok() {
            eprintln!("[pretrain] using cached {}", path.display());
            return json;
        }
    }
    eprintln!("[pretrain] building pretrained agent (controlled experiments)...");
    // Size anchors spanning the evaluated range, so the actor learns
    // size-dependent policies (the cache_fraction feature interpolates
    // between them).
    let json = build_pretrained(params, &[0.05, 0.15, 0.4]);
    std::fs::write(&path, &json).expect("write pretrained agent");
    eprintln!("[pretrain] saved {}", path.display());
    json
}
