//! Design-choice ablations beyond the paper's Figure 11(b) — the
//! implementation decisions called out in DESIGN.md §5:
//!
//! 1. **Boundary hysteresis** (on/off): deferring sub-2% boundary moves
//!    avoids eviction churn from RL exploration jitter.
//! 2. **Adaptive learning rate** (on/off): the paper's `lr ← lr·(1−r)`
//!    rule vs a fixed actor learning rate, across a workload shift.
//! 3. **Partial range serving** (on/off): serving covered scan prefixes
//!    and reading only the tail from the LSM vs all-or-nothing lookups.
//!
//! Regenerate with:
//! `cargo run --release -p adcache-bench --bin ablation_design [-- --quick]`

use adcache_bench::{ensure_pretrained, f4, print_table, write_csv, ExpParams};
use adcache_core::{run_schedule, run_static, RunConfig, Strategy};
use adcache_workload::{Mix, Phase, Schedule};

fn shift_schedule(ops: u64) -> Schedule {
    Schedule {
        phases: vec![
            Phase {
                name: "points".into(),
                mix: Mix::new(95.0, 2.0, 1.0, 2.0),
                ops,
            },
            Phase {
                name: "scans".into(),
                mix: Mix::new(2.0, 95.0, 1.0, 2.0),
                ops,
            },
        ],
    }
}

fn main() {
    let params = ExpParams::from_args();
    let pretrained = ensure_pretrained(&params);
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut csv: Vec<Vec<String>> = Vec::new();

    // --- 1 & 2: hysteresis and adaptive-lr across a shift. ---
    for (label, hysteresis, adaptive_lr) in [
        ("baseline (hyst on, adaptive-lr on)", 0.02, true),
        ("no hysteresis", 0.0, true),
        ("fixed learning rate", 0.02, false),
    ] {
        let mut cfg: RunConfig = params.run_config(Strategy::AdCache, 0.25);
        cfg.boundary_hysteresis = hysteresis;
        cfg.controller.adaptive_lr = adaptive_lr;
        cfg.pretrained_agent = Some(pretrained.clone());
        let r = run_schedule(&cfg, &shift_schedule(params.ops)).expect("run");
        let n = r.windows.len();
        let steady = r.mean_hit_rate(n * 3 / 4, n); // post-shift steady state
        rows.push(vec![label.to_string(), f4(steady), f4(r.overall_hit_rate)]);
        csv.push(vec![
            label.to_string(),
            format!("{steady:.6}"),
            format!("{:.6}", r.overall_hit_rate),
        ]);
    }

    // --- 3: partial range serving under long scans. ---
    for (label, strategy, partial) in [
        ("range cache, partial serving", Strategy::RangeCache, true),
        ("range cache, all-or-nothing", Strategy::RangeCache, false),
        ("adcache, partial serving", Strategy::AdCache, true),
        ("adcache, all-or-nothing", Strategy::AdCache, false),
    ] {
        let mut cfg: RunConfig = params.run_config(strategy, 0.25);
        cfg.serve_partial_range = partial;
        if strategy == Strategy::AdCache {
            cfg.pretrained_agent = Some(pretrained.clone());
        }
        let mix = Mix::new(20.0, 10.0, 65.0, 5.0);
        let r = run_static(&cfg, mix, params.ops).expect("run");
        let half = r.windows.len() / 2;
        let steady = r.mean_hit_rate(half, r.windows.len());
        rows.push(vec![
            label.to_string(),
            f4(steady),
            format!("{} sst reads", r.total_sst_reads),
        ]);
        csv.push(vec![
            label.to_string(),
            format!("{steady:.6}"),
            r.total_sst_reads.to_string(),
        ]);
    }

    // --- extension: Leaper-style post-compaction prefetching on the block
    // cache, under a write-heavy mixed load where compaction invalidation
    // actually bites. ---
    for (label, depth) in [("prefetch off", 0usize), ("prefetch 4 blocks/file", 4)] {
        let mut cfg: RunConfig = params.run_config(Strategy::RocksDbBlock, 0.25);
        cfg.compaction_prefetch_blocks = depth;
        let mix = Mix::new(30.0, 15.0, 0.0, 55.0);
        let r = run_static(&cfg, mix, params.ops).expect("run");
        let half = r.windows.len() / 2;
        rows.push(vec![
            label.to_string(),
            f4(r.mean_hit_rate(half, r.windows.len())),
            format!("{} sst reads", r.total_sst_reads),
        ]);
        csv.push(vec![
            label.to_string(),
            format!("{:.6}", r.overall_hit_rate),
            r.total_sst_reads.to_string(),
        ]);
    }

    // --- 4: block compression. The cache stores decoded blocks and the
    // device model charges per block, so hit rates are untouched by
    // design; what compression buys is the on-disk footprint. ---
    for (label, compression) in [("compression off", false), ("compression on (lzss)", true)] {
        let mut cfg: RunConfig = params.run_config(Strategy::RocksDbBlock, 0.25);
        cfg.db_options.compression = compression;
        let db = adcache_core::prepare_db(&cfg).expect("prepare");
        let schedule = adcache_workload::Schedule {
            phases: vec![adcache_workload::Phase {
                name: "mix".into(),
                mix: Mix::new(40.0, 20.0, 0.0, 40.0),
                ops: params.ops / 2,
            }],
        };
        let r = adcache_core::run_schedule_on(&cfg, &schedule, &db).expect("run");
        let disk_bytes: u64 = db.db().level_summary().iter().map(|(_, _, b)| b).sum();
        let half = r.windows.len() / 2;
        rows.push(vec![
            label.to_string(),
            f4(r.mean_hit_rate(half, r.windows.len())),
            format!(
                "{} KiB on disk, write amp {:.1}x",
                disk_bytes >> 10,
                db.db().write_amplification()
            ),
        ]);
        csv.push(vec![
            label.to_string(),
            format!("{:.6}", r.overall_hit_rate),
            disk_bytes.to_string(),
        ]);
    }

    print_table(
        "Design ablations (steady-state hit rate)",
        &["variant", "steady hit", "note"],
        &rows,
    );
    write_csv("ablation_design", &["variant", "steady_hit", "note"], &csv).expect("csv");
}
