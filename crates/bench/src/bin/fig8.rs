//! Figure 8 + Table 4: throughput and hit rate of every strategy across
//! the dynamic workload phases A→F (Table 3), and the per-phase rankings.
//!
//! Regenerate with:
//! `cargo run --release -p adcache-bench --bin fig8 [-- --quick|--full]`

use adcache_bench::{ensure_pretrained, f1, f4, print_table, write_csv, ExpParams};
use adcache_core::{run_schedule, RunResult, Strategy};
use adcache_workload::paper_dynamic_schedule;

fn main() {
    let params = ExpParams::from_args();
    let ops_per_phase = params.ops / 3;
    println!(
        "Figure 8 / Table 4: dynamic phases A->F | keys={} ops/phase={} cache=25%",
        params.num_keys, ops_per_phase
    );
    let pretrained = ensure_pretrained(&params);
    let schedule = paper_dynamic_schedule(ops_per_phase);
    // The paper gives AdCache 25% cache in the dynamic experiment.
    let frac = 0.25;

    let mut results: Vec<(Strategy, RunResult)> = Vec::new();
    for strategy in Strategy::all() {
        let mut cfg = params.run_config(strategy, frac);
        if strategy == Strategy::AdCache {
            cfg.pretrained_agent = Some(pretrained.clone());
        }
        let r = run_schedule(&cfg, &schedule).expect("run");
        results.push((strategy, r));
    }

    // Per-phase means.
    let phase_names: Vec<String> = schedule.phases.iter().map(|p| p.name.clone()).collect();
    let windows_per_phase = (ops_per_phase / params.window) as usize;
    let mut hit_rows: Vec<Vec<String>> = Vec::new();
    let mut qps_rows: Vec<Vec<String>> = Vec::new();
    let mut csv: Vec<Vec<String>> = Vec::new();
    // phase_stats[phase][strategy] = (hit, qps)
    let mut phase_stats: Vec<Vec<(f64, f64)>> = vec![Vec::new(); phase_names.len()];
    for (strategy, r) in &results {
        let mut hit_row = vec![strategy.name().to_string()];
        let mut qps_row = vec![strategy.name().to_string()];
        for (pi, pname) in phase_names.iter().enumerate() {
            let from = pi * windows_per_phase;
            let to = from + windows_per_phase;
            // Skip the first fifth of each phase (transition windows) when
            // averaging, like steady-state reporting.
            let settle = from + windows_per_phase / 5;
            let hit = r.mean_hit_rate(settle, to);
            let qps = r.mean_qps(settle, to);
            phase_stats[pi].push((hit, qps));
            hit_row.push(f4(hit));
            qps_row.push(f1(qps));
            csv.push(vec![
                strategy.name().into(),
                pname.clone(),
                format!("{hit:.6}"),
                format!("{qps:.1}"),
            ]);
        }
        hit_rows.push(hit_row);
        qps_rows.push(qps_row);
    }

    let mut headers = vec!["strategy".to_string()];
    headers.extend(phase_names.iter().cloned());
    print_table("Figure 8 — hit rate per dynamic phase", &headers, &hit_rows);
    print_table(
        "Figure 8 — throughput (simulated QPS) per dynamic phase",
        &headers,
        &qps_rows,
    );

    // Extra: simulated per-op latency distribution over the whole dynamic
    // run (not in the paper's figures, but the flip side of its throughput
    // claims: saved block I/O shows up in the tail).
    let lat_rows: Vec<Vec<String>> = results
        .iter()
        .map(|(s, r)| {
            let (p50, p95, p99, max) = r.latency.summary();
            vec![
                s.name().to_string(),
                format!("{:.1}", p50 as f64 / 1000.0),
                format!("{:.1}", p95 as f64 / 1000.0),
                format!("{:.1}", p99 as f64 / 1000.0),
                format!("{:.1}", max as f64 / 1000.0),
            ]
        })
        .collect();
    print_table(
        "Simulated per-op latency across the run (µs)",
        &["strategy", "p50", "p95", "p99", "max"],
        &lat_rows,
    );

    // Table 4: rankings (throughput/hit rate), lower is better.
    let strategy_names: Vec<&str> = results.iter().map(|(s, _)| s.name()).collect();
    let mut rank_rows: Vec<Vec<String>> = Vec::new();
    let mut avg_t = vec![0.0f64; strategy_names.len()];
    let mut avg_h = vec![0.0f64; strategy_names.len()];
    for (pi, pname) in phase_names.iter().enumerate() {
        let rank_of = |values: Vec<f64>| -> Vec<usize> {
            let mut idx: Vec<usize> = (0..values.len()).collect();
            idx.sort_by(|&a, &b| values[b].partial_cmp(&values[a]).unwrap());
            let mut ranks = vec![0usize; values.len()];
            for (rank, &i) in idx.iter().enumerate() {
                ranks[i] = rank + 1;
            }
            ranks
        };
        let t_ranks = rank_of(phase_stats[pi].iter().map(|(_, q)| *q).collect());
        let h_ranks = rank_of(phase_stats[pi].iter().map(|(h, _)| *h).collect());
        let mut row = vec![pname.clone()];
        for i in 0..strategy_names.len() {
            row.push(format!("{}/{}", t_ranks[i], h_ranks[i]));
            avg_t[i] += t_ranks[i] as f64;
            avg_h[i] += h_ranks[i] as f64;
        }
        rank_rows.push(row);
    }
    let mut avg_row = vec!["Average".to_string()];
    for i in 0..strategy_names.len() {
        avg_row.push(format!(
            "{:.1}/{:.1}",
            avg_t[i] / phase_names.len() as f64,
            avg_h[i] / phase_names.len() as f64
        ));
    }
    rank_rows.push(avg_row);
    let mut rank_headers = vec!["phase".to_string()];
    rank_headers.extend(strategy_names.iter().map(|s| s.to_string()));
    print_table(
        "Table 4 — rankings (throughput/hit rate), lower is better",
        &rank_headers,
        &rank_rows,
    );

    // Window-level series for plotting Figure 8's curves.
    let mut series: Vec<Vec<String>> = Vec::new();
    for (strategy, r) in &results {
        for w in &r.windows {
            series.push(vec![
                strategy.name().into(),
                w.index.to_string(),
                w.phase.clone(),
                format!("{:.6}", w.hit_rate),
                format!("{:.1}", w.qps),
            ]);
        }
    }
    write_csv(
        "fig8_series",
        &["strategy", "window", "phase", "hit_rate", "qps"],
        &series,
    )
    .expect("csv");
    write_csv(
        "fig8_table4",
        &["strategy", "phase", "hit_rate", "qps"],
        &csv,
    )
    .expect("csv");
}
