//! Figure 11(b): ablation study under a long-scan-heavy workload —
//! Range Cache (baseline), AdCache with only admission control, AdCache
//! with only adaptive partitioning, and the full system.
//!
//! Paper shape: admission alone lifts the range cache noticeably;
//! partitioning alone lifts it much further (the controller effectively
//! converts range memory into block memory, which long scans prefer); the
//! full system is best.
//!
//! Regenerate with:
//! `cargo run --release -p adcache-bench --bin fig11b [-- --quick|--full]`

use adcache_bench::{ensure_pretrained, f4, print_table, write_csv, ExpParams};
use adcache_core::{run_static, RunConfig, Strategy};
use adcache_workload::Mix;

fn main() {
    let params = ExpParams::from_args();
    let mix = Mix::new(45.0, 5.0, 45.0, 5.0);
    println!(
        "Figure 11b: ablations under long-scan-heavy mix | keys={} ops={}",
        params.num_keys, params.ops
    );
    let pretrained = ensure_pretrained(&params);

    let variants: Vec<(&str, Strategy, bool, bool)> = vec![
        ("range-cache", Strategy::RangeCache, true, true),
        ("adcache: admission only", Strategy::AdCache, false, true),
        ("adcache: partitioning only", Strategy::AdCache, true, false),
        ("adcache: full", Strategy::AdCache, true, true),
    ];

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut csv: Vec<Vec<String>> = Vec::new();
    let mut series: Vec<Vec<String>> = Vec::new();
    let mut baseline_hit = 0.0f64;
    for (label, strategy, partition, admission) in variants {
        let mut cfg: RunConfig = params.run_config(strategy, 0.1);
        cfg.controller.enable_partition = partition;
        cfg.controller.enable_admission = admission;
        if strategy == Strategy::AdCache {
            cfg.pretrained_agent = Some(pretrained.clone());
        }
        let r = run_static(&cfg, mix, params.ops).expect("run");
        let half = r.windows.len() / 2;
        let hit = r.mean_hit_rate(half, r.windows.len());
        if label == "range-cache" {
            baseline_hit = hit;
        }
        let lift = if baseline_hit > 0.0 {
            (hit / baseline_hit - 1.0) * 100.0
        } else {
            0.0
        };
        rows.push(vec![
            label.to_string(),
            f4(hit),
            format!("{:+.1}%", lift),
            format!("{}", r.total_sst_reads),
        ]);
        csv.push(vec![
            label.to_string(),
            format!("{hit:.6}"),
            format!("{lift:.2}"),
            format!("{}", r.total_sst_reads),
        ]);
        for w in &r.windows {
            series.push(vec![
                label.to_string(),
                w.index.to_string(),
                format!("{:.6}", w.hit_rate),
            ]);
        }
    }
    print_table(
        "Figure 11b — ablation (steady-state hit rate, lift vs Range Cache)",
        &["variant", "hit_rate", "lift", "sst_reads"],
        &rows,
    );
    write_csv(
        "fig11b",
        &["variant", "hit_rate", "lift_pct", "sst_reads"],
        &csv,
    )
    .expect("csv");
    write_csv("fig11b_series", &["variant", "window", "hit_rate"], &series).expect("csv");
}
