//! Figure 10: impact of the training parameters on convergence after a
//! workload shift, in three parts:
//!
//! 1. window size ∈ {100, 1000, 10000} (α = 0.9) plus a pretrained-only
//!    model with no online learning;
//! 2. smoothing factor α ∈ {0, 0.5, 0.9} (window = 1000) plus pretrained;
//! 3. the evolution of the learned cache parameters (range ratio, point
//!    threshold, scan threshold) across the shift.
//!
//! The shift mirrors the paper: warm up under a read-heavy (point) phase,
//! then switch to a short-scan-heavy phase.
//!
//! Regenerate with:
//! `cargo run --release -p adcache-bench --bin fig10 [-- --quick|--full]`

use adcache_bench::{ensure_pretrained, write_csv, ExpParams};
use adcache_core::{run_schedule, RunConfig, Strategy};
use adcache_workload::{Mix, Phase, Schedule};

fn shift_schedule(ops_per_phase: u64) -> Schedule {
    Schedule {
        phases: vec![
            Phase {
                name: "read_heavy".into(),
                mix: Mix::new(97.0, 1.0, 1.0, 1.0),
                ops: ops_per_phase,
            },
            Phase {
                name: "short_scan_heavy".into(),
                mix: Mix::new(1.0, 97.0, 1.0, 1.0),
                ops: ops_per_phase,
            },
        ],
    }
}

fn run_variant(
    params: &ExpParams,
    pretrained: &str,
    window: u64,
    alpha: f64,
    online: bool,
    label: &str,
    csv: &mut Vec<Vec<String>>,
) {
    let ops_per_phase = params.ops;
    let mut cfg: RunConfig = params.run_config(Strategy::AdCache, 0.25);
    cfg.controller.window = window;
    cfg.controller.alpha = alpha;
    cfg.controller.online = online;
    cfg.pretrained_agent = Some(pretrained.to_string());
    let r = run_schedule(&cfg, &shift_schedule(ops_per_phase)).expect("run");
    // Aggregate to fixed 1000-op buckets so curves are comparable across
    // window sizes.
    let bucket_ops = 1000u64;
    let per_bucket = (bucket_ops / window).max(1) as usize;
    let windows_per_bucket = if window >= bucket_ops { 1 } else { per_bucket };
    let mut i = 0usize;
    let mut bucket = 0u64;
    while i < r.windows.len() {
        let end = (i + windows_per_bucket).min(r.windows.len());
        let hit: f64 = r.windows[i..end].iter().map(|w| w.hit_rate).sum::<f64>() / (end - i) as f64;
        let ops_at =
            (i as u64 + 1) * window * windows_per_bucket as u64 / windows_per_bucket as u64;
        let _ = ops_at;
        csv.push(vec![
            label.to_string(),
            (bucket * window * windows_per_bucket as u64).to_string(),
            format!("{hit:.6}"),
        ]);
        bucket += 1;
        i = end;
    }
    let shift_at = (ops_per_phase / window) as usize;
    let pre = r.mean_hit_rate(shift_at.saturating_sub(5), shift_at);
    let dip = r.windows[shift_at..(shift_at + 5).min(r.windows.len())]
        .iter()
        .map(|w| w.hit_rate)
        .fold(f64::MAX, f64::min);
    let post = r.mean_hit_rate(r.windows.len().saturating_sub(5), r.windows.len());
    println!("{label:>26}: pre-shift {pre:.3}  dip {dip:.3}  recovered {post:.3}");
}

fn main() {
    let params = ExpParams::from_args();
    println!(
        "Figure 10: convergence around a read-heavy -> short-scan shift | keys={} ops/phase={}",
        params.num_keys, params.ops
    );
    let pretrained = ensure_pretrained(&params);

    // Part 1: window size (alpha = 0.9).
    let mut csv1: Vec<Vec<String>> = Vec::new();
    for window in [100u64, 1000, 10_000] {
        if window * 4 > params.ops {
            println!("(skipping window {window}: fewer than 4 windows per phase at this scale)");
            continue;
        }
        run_variant(
            &params,
            &pretrained,
            window,
            0.9,
            true,
            &format!("window={window}"),
            &mut csv1,
        );
    }
    run_variant(
        &params,
        &pretrained,
        1000.min(params.ops / 8),
        0.9,
        false,
        "pretrained (no online)",
        &mut csv1,
    );
    write_csv("fig10_window", &["variant", "ops", "hit_rate"], &csv1).expect("csv");

    // Part 2: smoothing factor (window = 1000).
    let window = 1000.min(params.ops / 8);
    let mut csv2: Vec<Vec<String>> = Vec::new();
    for alpha in [0.0, 0.5, 0.9] {
        run_variant(
            &params,
            &pretrained,
            window,
            alpha,
            true,
            &format!("alpha={alpha}"),
            &mut csv2,
        );
    }
    write_csv("fig10_alpha", &["variant", "ops", "hit_rate"], &csv2).expect("csv");

    // Part 3: parameter evolution (window = 1000, alpha = 0.9).
    let mut cfg = params.run_config(Strategy::AdCache, 0.25);
    cfg.controller.window = window;
    cfg.pretrained_agent = Some(pretrained);
    let r = run_schedule(&cfg, &shift_schedule(params.ops)).expect("run");
    let mut csv3: Vec<Vec<String>> = Vec::new();
    println!("\nparameter evolution (window, phase, range_ratio, point_thr, scan_threshold):");
    for w in &r.windows {
        if let Some(d) = w.decision {
            let scan_threshold = if w.summary.avg_scan_len > 0.0 {
                adcache_cache::ScanAdmission::new(d.scan_a, d.scan_b)
                    .effective_threshold(w.summary.avg_scan_len)
            } else {
                d.scan_a as f64
            };
            if w.index % ((r.windows.len() / 24).max(1) as u64) == 0 {
                println!(
                    "  {:4} {:>17} ratio={:.3} thr={:.4} scan_thr={:.1}",
                    w.index, w.phase, d.range_ratio, d.point_threshold, scan_threshold
                );
            }
            csv3.push(vec![
                w.index.to_string(),
                w.phase.clone(),
                format!("{:.4}", d.range_ratio),
                format!("{:.5}", d.point_threshold),
                format!("{scan_threshold:.2}"),
            ]);
        }
    }
    write_csv(
        "fig10_params",
        &[
            "window",
            "phase",
            "range_ratio",
            "point_threshold",
            "scan_threshold",
        ],
        &csv3,
    )
    .expect("csv");
}
