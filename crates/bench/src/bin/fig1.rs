//! Figure 1 (motivation): no single static caching strategy wins across
//! workload patterns — block caching dominates lookup/scan-heavy patterns
//! with few updates, result caching dominates update-heavy patterns where
//! compaction invalidates physical blocks.
//!
//! Regenerate with:
//! `cargo run --release -p adcache-bench --bin fig1 [-- --quick|--full]`

use adcache_bench::{f4, print_table, write_csv, ExpParams};
use adcache_core::{run_static, Strategy};
use adcache_workload::Mix;

fn main() {
    let params = ExpParams::from_args();
    println!(
        "Figure 1: motivational trade-off | keys={} ops={} cache=10%",
        params.num_keys, params.ops
    );

    let patterns = [
        ("lookup_intensive", Mix::new(95.0, 0.0, 0.0, 5.0)),
        ("scan_intensive", Mix::new(0.0, 95.0, 0.0, 5.0)),
        ("update_intensive", Mix::new(40.0, 0.0, 0.0, 60.0)),
    ];
    let strategies = [Strategy::RocksDbBlock, Strategy::RangeCache];

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut csv: Vec<Vec<String>> = Vec::new();
    for strategy in strategies {
        let mut row = vec![strategy.name().to_string()];
        for (name, mix) in patterns {
            let cfg = params.run_config(strategy, 0.1);
            let r = run_static(&cfg, mix, params.ops).expect("run");
            let half = r.windows.len() / 2;
            let hit = r.mean_hit_rate(half, r.windows.len());
            row.push(f4(hit));
            csv.push(vec![
                strategy.name().into(),
                name.into(),
                format!("{hit:.6}"),
                format!("{}", r.total_sst_reads),
            ]);
        }
        rows.push(row);
    }
    print_table(
        "Figure 1 — hit rate by workload pattern (block vs result caching)",
        &[
            "strategy",
            "lookup_intensive",
            "scan_intensive",
            "update_intensive",
        ],
        &rows,
    );
    println!(
        "\nExpected shape (paper Fig. 1): block cache wins the low-update patterns,\n\
         result caching (range cache) closes the gap / wins as updates dominate."
    );
    write_csv(
        "fig1",
        &["strategy", "pattern", "hit_rate", "sst_reads"],
        &csv,
    )
    .expect("csv");
}
