//! Figure 9: hit rate vs workload skewness (Zipfian theta 0.6–1.2) under
//! the paper's mixed workload: 50% updates, 25% point lookups, 25% short
//! scans.
//!
//! Regenerate with:
//! `cargo run --release -p adcache-bench --bin fig9 [-- --quick|--full]`

use adcache_bench::{ensure_pretrained, f4, print_table, write_csv, ExpParams};
use adcache_core::{run_static, Strategy};
use adcache_workload::Mix;

fn main() {
    let mut params = ExpParams::from_args();
    let skews = [0.6, 0.8, 0.9, 1.05, 1.2];
    let mix = Mix::new(25.0, 25.0, 0.0, 50.0);
    println!(
        "Figure 9: skewness sweep | keys={} ops={} cache=25% mix=25/25/50",
        params.num_keys, params.ops
    );

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut csv: Vec<Vec<String>> = Vec::new();
    for strategy in Strategy::all() {
        let mut row = vec![strategy.name().to_string()];
        for &skew in &skews {
            params.skew = skew;
            // One pretrained model per skew bucket would leak tuning into
            // the comparison; reuse the default-skew model for all points.
            let mut cfg = params.run_config(strategy, 0.25);
            if strategy == Strategy::AdCache {
                let mut pre_params = params.clone();
                pre_params.skew = 0.9;
                cfg.pretrained_agent = Some(ensure_pretrained(&pre_params));
            }
            let r = run_static(&cfg, mix, params.ops).expect("run");
            let half = r.windows.len() / 2;
            let hit = r.mean_hit_rate(half, r.windows.len());
            row.push(f4(hit));
            csv.push(vec![
                strategy.name().into(),
                format!("{skew}"),
                format!("{hit:.6}"),
                format!("{}", r.total_sst_reads),
            ]);
        }
        rows.push(row);
    }
    let mut headers = vec!["strategy".to_string()];
    headers.extend(skews.iter().map(|s| format!("θ={s}")));
    print_table("Figure 9 — hit rate vs Zipfian skewness", &headers, &rows);
    write_csv("fig9", &["strategy", "skew", "hit_rate", "sst_reads"], &csv).expect("csv");
}
