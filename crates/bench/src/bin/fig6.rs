//! Figure 6 (analysis): the eviction footprint of scans under block-based
//! vs result-based caching.
//!
//! The paper's observation: a short scan of length 16 touches ~8 blocks
//! (one per overlapping sorted run plus data blocks) — double the "ideal"
//! `l/B = 4` — because every run contributes at least one block; and a
//! long scan of length 64 admitted into a result cache displaces 64
//! entries. This binary measures both footprints directly.
//!
//! Regenerate with: `cargo run --release -p adcache-bench --bin fig6`

use adcache_bench::{print_table, write_csv, ExpParams};
use adcache_core::{CacheDecision, CachedDb, EngineConfig, Strategy};
use adcache_lsm::{MemStorage, Options};
use adcache_workload::render_key;
use bytes::Bytes;
use std::sync::Arc;

/// Builds an engine with a multi-run tree (overwrites left uncompacted in
/// L0 so scans overlap several sorted runs, as in the paper's sketch).
fn build(strategy: Strategy, cache_bytes: usize, keys: u64) -> CachedDb {
    let mut opts = Options::small();
    // Keep several L0 runs alive.
    opts.l0_compaction_trigger = 6;
    let db = CachedDb::new(
        opts,
        Arc::new(MemStorage::new()),
        EngineConfig::new(strategy, cache_bytes),
    )
    .unwrap();
    for i in 0..keys {
        db.load(render_key(i), Bytes::from(vec![b'v'; 64])).unwrap();
    }
    db.db().flush().unwrap();
    while db.db().maybe_compact_once().unwrap() {}
    // Fresh overwrites of key slices -> overlapping L0 runs.
    for run in 0..3u64 {
        for i in (run * 97..keys).step_by(7) {
            db.load(render_key(i), Bytes::from(vec![b'w'; 64])).unwrap();
        }
        db.db().flush().unwrap();
    }
    db
}

fn main() {
    let params = ExpParams::from_args();
    let keys = params.num_keys.min(20_000);
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut csv: Vec<Vec<String>> = Vec::new();

    // --- Block cache: blocks touched by one cold scan of length 16. ---
    let db = build(Strategy::RocksDbBlock, 4 << 20, keys);
    let runs = db.db().num_runs();
    let (entries, blocks) = db.db().entries_and_blocks();
    let b = entries as f64 / blocks as f64;
    let before = db.block_cache().unwrap().stats();
    db.scan(&render_key(keys / 2), 16).unwrap();
    let after = db.block_cache().unwrap().stats();
    let touched = after.inserts - before.inserts;
    let ideal = (16.0 / b).ceil() as u64;
    rows.push(vec![
        "block cache, scan l=16".into(),
        format!("{touched} blocks admitted"),
        format!("ideal l/B = {ideal}"),
        format!("{runs} sorted runs"),
    ]);
    csv.push(vec![
        "block_scan16".into(),
        touched.to_string(),
        ideal.to_string(),
        runs.to_string(),
    ]);

    // --- Range cache: entries displaced by one long scan of length 64. ---
    let db = build(Strategy::RangeCache, 64 * (24 + 64 + 48), keys); // exactly 64 entries
                                                                     // Warm with point entries.
    for i in 0..64u64 {
        db.get(&render_key(i * 31 + 1)).unwrap();
    }
    let resident_before = db.range_cache().unwrap().len();
    let evict_before = db.range_cache().unwrap().stats().evictions;
    db.scan(&render_key(keys / 3), 64).unwrap();
    let evicted = db.range_cache().unwrap().stats().evictions - evict_before;
    rows.push(vec![
        "range cache, scan l=64".into(),
        format!("{evicted} resident entries evicted"),
        format!("{resident_before} point entries were resident"),
        "full admission".into(),
    ]);
    csv.push(vec![
        "range_scan64".into(),
        evicted.to_string(),
        resident_before.to_string(),
        "full".into(),
    ]);

    // --- AdCache: same long scan under partial admission. ---
    let db = build(Strategy::AdCache, 64 * (24 + 64 + 48), keys);
    db.apply_decision(&CacheDecision {
        range_ratio: 1.0,
        point_threshold: 0.0,
        scan_a: 16,
        scan_b: 0.25,
    });
    for i in 0..64u64 {
        db.get(&render_key(i * 31 + 1)).unwrap();
    }
    let evict_before = db.range_cache().unwrap().stats().evictions;
    db.scan(&render_key(keys / 3), 64).unwrap();
    let evicted_partial = db.range_cache().unwrap().stats().evictions - evict_before;
    rows.push(vec![
        "range cache, scan l=64".into(),
        format!("{evicted_partial} resident entries evicted"),
        format!(
            "admitted a+b(l-a) = {}",
            16 + ((64 - 16) as f64 * 0.25).ceil() as usize
        ),
        "partial admission (AdCache)".into(),
    ]);
    csv.push(vec![
        "adcache_scan64".into(),
        evicted_partial.to_string(),
        "28".into(),
        "partial".into(),
    ]);

    print_table(
        "Figure 6 — scan eviction footprint by caching strategy",
        &["configuration", "measured footprint", "reference", "note"],
        &rows,
    );
    assert!(
        evicted_partial < evicted,
        "partial admission must shrink the eviction footprint"
    );
    write_csv("fig6", &["case", "measured", "reference", "note"], &csv).expect("csv");
}
