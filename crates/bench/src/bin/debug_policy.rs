//! Developer diagnostic: pinned-decision ceilings vs the online controller
//! trajectory for one mix. Not part of the paper's figures.

use adcache_bench::{ensure_pretrained, ExpParams};
use adcache_core::{run_static, CacheDecision, Strategy};
use adcache_workload::Mix;

fn main() {
    let params = ExpParams::from_args();
    let mix = Mix::new(100.0, 0.0, 0.0, 0.0);
    let frac = 0.2;

    for (label, d) in [
        (
            "ratio=1.0 thr=0",
            CacheDecision {
                range_ratio: 1.0,
                point_threshold: 0.0,
                scan_a: 16,
                scan_b: 0.25,
            },
        ),
        (
            "ratio=1.0 thr=0.002",
            CacheDecision {
                range_ratio: 1.0,
                point_threshold: 0.002,
                scan_a: 16,
                scan_b: 0.25,
            },
        ),
        (
            "ratio=0.5 thr=0",
            CacheDecision {
                range_ratio: 0.5,
                point_threshold: 0.0,
                scan_a: 16,
                scan_b: 0.25,
            },
        ),
        (
            "ratio=0.0",
            CacheDecision {
                range_ratio: 0.0,
                point_threshold: 0.0,
                scan_a: 16,
                scan_b: 0.25,
            },
        ),
    ] {
        let mut cfg = params.run_config(Strategy::AdCache, frac);
        cfg.pinned_decision = Some(d);
        let r = run_static(&cfg, mix, params.ops).unwrap();
        let half = r.windows.len() / 2;
        println!(
            "pinned {label}: steady hit {:.4}",
            r.mean_hit_rate(half, r.windows.len())
        );
    }

    let pretrained = ensure_pretrained(&params);
    let mut cfg = params.run_config(Strategy::AdCache, frac);
    cfg.pretrained_agent = Some(pretrained);
    let r = run_static(&cfg, mix, params.ops).unwrap();
    println!("\nonline adcache trajectory (window: ratio thr a b | hit):");
    for w in &r.windows {
        if let Some(d) = w.decision {
            println!(
                "  {:3} {:.3} {:.4} {:3} {:.2} | {:.4}",
                w.index, d.range_ratio, d.point_threshold, d.scan_a, d.scan_b, w.hit_rate
            );
        }
    }
}
