//! Figure 7: hit rate of all six caching strategies under the four static
//! workloads (Point Lookup, Short Scan, Balanced, Long Scan) as the cache
//! size sweeps from a few percent to ~40% of the dataset.
//!
//! Regenerate with:
//! `cargo run --release -p adcache-bench --bin fig7 [-- --quick|--full]`

use adcache_bench::{ensure_pretrained, f4, print_table, write_csv, ExpParams};
use adcache_core::{run_static, Strategy};
use adcache_workload::static_workloads;

fn main() {
    let params = ExpParams::from_args();
    println!(
        "Figure 7: static workloads | keys={} value={}B ops={} skew={}",
        params.num_keys, params.value_size, params.ops, params.skew
    );
    let pretrained = ensure_pretrained(&params);

    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for (workload_name, mix) in static_workloads() {
        let mut rows: Vec<Vec<String>> = Vec::new();
        for strategy in Strategy::all() {
            let mut row = vec![strategy.name().to_string()];
            for &frac in &params.cache_fracs {
                let mut cfg = params.run_config(strategy, frac);
                if strategy == Strategy::AdCache {
                    cfg.pretrained_agent = Some(pretrained.clone());
                }
                let r = run_static(&cfg, mix, params.ops).expect("run failed");
                // Hit rate once warm: mean over the second half of windows.
                let half = r.windows.len() / 2;
                let hit = r.mean_hit_rate(half, r.windows.len());
                row.push(f4(hit));
                csv_rows.push(vec![
                    workload_name.to_string(),
                    strategy.name().to_string(),
                    format!("{frac}"),
                    format!("{hit:.6}"),
                    format!("{}", r.total_sst_reads),
                    format!("{:.1}", r.overall_qps),
                ]);
            }
            rows.push(row);
        }
        let mut headers = vec!["strategy".to_string()];
        headers.extend(
            params
                .cache_fracs
                .iter()
                .map(|f| format!("{:.1}%", f * 100.0)),
        );
        print_table(
            &format!("Figure 7 — {workload_name} (hit rate vs cache size)"),
            &headers,
            &rows,
        );
    }
    write_csv(
        "fig7",
        &[
            "workload",
            "strategy",
            "cache_frac",
            "hit_rate",
            "sst_reads",
            "qps",
        ],
        &csv_rows,
    )
    .expect("csv");
}
