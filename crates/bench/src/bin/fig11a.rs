//! Figure 11(a): training overhead — per-client wall-clock QPS as the
//! number of client threads grows from 1 to 32, with background RL
//! training active. The paper's claim: per-client throughput is not
//! noticeably degraded by training, because windowed training is amortized
//! and the system is I/O-bound.
//!
//! Regenerate with:
//! `cargo run --release -p adcache-bench --bin fig11a [-- --quick|--full]`

use adcache_bench::{f1, print_table, write_csv, ExpParams};
use adcache_core::{run_multiclient, RunConfig, Strategy};
use adcache_workload::Mix;

fn main() {
    let params = ExpParams::from_args();
    let mix = Mix::new(40.0, 20.0, 0.0, 40.0);
    let client_counts = [1usize, 2, 4, 8, 16, 32];
    let ops_per_client = (params.ops / 8).max(2_000);
    println!(
        "Figure 11a: per-client QPS vs client count | keys={} ops/client={}",
        params.num_keys, ops_per_client
    );

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut csv: Vec<Vec<String>> = Vec::new();
    for &clients in &client_counts {
        let mut cfg: RunConfig = params.run_config(Strategy::AdCache, 0.25);
        cfg.shards = clients.clamp(1, 16);
        // Training ON (the overhead being measured).
        let qps = run_multiclient(&cfg, mix, clients, ops_per_client).expect("run");
        let mean = qps.iter().sum::<f64>() / qps.len() as f64;
        let min = qps.iter().cloned().fold(f64::MAX, f64::min);
        let max = qps.iter().cloned().fold(0.0f64, f64::max);

        // Training OFF for the same setup (control).
        let mut cfg_off = cfg.clone();
        cfg_off.controller.online = false;
        let qps_off = run_multiclient(&cfg_off, mix, clients, ops_per_client).expect("run");
        let mean_off = qps_off.iter().sum::<f64>() / qps_off.len() as f64;

        let overhead_pct = if mean_off > 0.0 {
            (1.0 - mean / mean_off) * 100.0
        } else {
            0.0
        };
        rows.push(vec![
            clients.to_string(),
            f1(mean),
            f1(min),
            f1(max),
            f1(mean_off),
            format!("{overhead_pct:.1}%"),
        ]);
        csv.push(vec![
            clients.to_string(),
            format!("{mean:.1}"),
            format!("{min:.1}"),
            format!("{max:.1}"),
            format!("{mean_off:.1}"),
            format!("{overhead_pct:.2}"),
        ]);
    }
    print_table(
        "Figure 11a — per-client wall-clock QPS vs clients (training on/off)",
        &[
            "clients",
            "qps/client",
            "min",
            "max",
            "qps (no train)",
            "train overhead",
        ],
        &rows,
    );
    write_csv(
        "fig11a",
        &[
            "clients",
            "qps_per_client",
            "min",
            "max",
            "qps_no_training",
            "overhead_pct",
        ],
        &csv,
    )
    .expect("csv");
}
