//! Table 2: memory overhead of the reinforcement-learning model and online
//! training, measured from the actual paper-topology networks (two
//! 256-wide hidden layers each for actor and critic, f32 parameters, Adam
//! optimizer states, gradient buffers).
//!
//! Regenerate with: `cargo run --release -p adcache-bench --bin table2`

use adcache_bench::{print_table, write_csv};
use adcache_core::{ACTION_DIM, STATE_DIM};
use adcache_rl::{ActorCritic, AgentConfig};

fn kb(bytes: usize) -> String {
    format!("{:.0} KB", bytes as f64 / 1024.0)
}

fn main() {
    let agent = ActorCritic::new(AgentConfig::paper_default(STATE_DIM, ACTION_DIM));
    let (model, grads, adam) = agent.memory_breakdown();
    let total = model + grads + adam;

    let rows = vec![
        vec![
            "model parameters (actor + critic)".to_string(),
            agent.param_count().to_string(),
            kb(model),
        ],
        vec![
            "gradient buffers (backprop)".to_string(),
            agent.param_count().to_string(),
            kb(grads),
        ],
        vec![
            "Adam optimizer states (2 moments)".to_string(),
            (2 * agent.param_count()).to_string(),
            kb(adam),
        ],
        vec![
            "total during online training".to_string(),
            String::new(),
            kb(total),
        ],
    ];
    print_table(
        "Table 2 — memory overhead of the RL model and online training",
        &["component", "tensors (f32)", "memory"],
        &rows,
    );
    println!(
        "\npaper reference: ~140k parameters, ~550 KB of weights, ~4x weights (~2 MB)\n\
         during online training. measured: {} parameters, {} weights, {} total.",
        agent.param_count(),
        kb(model),
        kb(total)
    );
    write_csv(
        "table2",
        &["component", "bytes"],
        &[
            vec!["model".to_string(), model.to_string()],
            vec!["gradients".to_string(), grads.to_string()],
            vec!["adam".to_string(), adam.to_string()],
            vec!["total".to_string(), total.to_string()],
        ],
    )
    .expect("csv");

    // Hard checks: Table 2's claims must hold for our implementation.
    assert!((130_000..170_000).contains(&agent.param_count()));
    assert!((500_000..700_000).contains(&model));
    assert_eq!(adam, 2 * model);
    assert!(
        total <= 3 * 1024 * 1024,
        "training overhead stays in the low MB"
    );
}
