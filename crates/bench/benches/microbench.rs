//! Criterion microbenchmarks for the core data structures and hot paths:
//! cache policy operations, block encode/decode/seek, skiplist, bloom
//! filter, Count-Min sketch, LSM get/scan, range-cache operations, NN
//! inference and training steps, and workload generation.
//!
//! Run with `cargo bench -p adcache-bench`.

use adcache_cache::{
    BlockCache, CacheusPolicy, ChargedCache, ClockPolicy, CountMinSketch, LeCaRPolicy, LfuPolicy,
    LruPolicy, PointLookup, Policy, RangeCache, RangeLookup, TwoQPolicy,
};
use adcache_core::{CachedDb, EngineConfig, Strategy};
use adcache_lsm::{
    Block, BlockBuilder, BloomFilter, DirectProvider, Entry, LsmTree, MemStorage, Options, SkipList,
};
use adcache_rl::{ActorCritic, AgentConfig, Transition};
use adcache_workload::{render_key, Mix, WorkloadConfig, WorkloadGen};
use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::Arc;

fn bench_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy");
    let run = |p: &mut dyn Policy<u64>| {
        for i in 0..64u64 {
            p.on_insert(&i);
        }
        for i in 0..64u64 {
            p.on_hit(&(i % 16));
        }
        for _ in 0..32 {
            black_box(p.victim());
        }
    };
    g.bench_function("lru_insert_hit_evict", |b| {
        b.iter(|| {
            let mut p = LruPolicy::new();
            run(&mut p);
        })
    });
    g.bench_function("lfu_insert_hit_evict", |b| {
        b.iter(|| {
            let mut p = LfuPolicy::new();
            run(&mut p);
        })
    });
    g.bench_function("lecar_insert_hit_evict", |b| {
        b.iter(|| {
            let mut p = LeCaRPolicy::new();
            run(&mut p);
        })
    });
    g.bench_function("cacheus_insert_hit_evict", |b| {
        b.iter(|| {
            let mut p = CacheusPolicy::new();
            run(&mut p);
        })
    });
    g.bench_function("clock_insert_hit_evict", |b| {
        b.iter(|| {
            let mut p = ClockPolicy::new();
            run(&mut p);
        })
    });
    g.bench_function("twoq_insert_hit_evict", |b| {
        b.iter(|| {
            let mut p = TwoQPolicy::new();
            run(&mut p);
        })
    });
    g.finish();
}

fn bench_wal_and_histogram(c: &mut Criterion) {
    use adcache_core::Histogram;
    use adcache_lsm::{crc32, Entry, RealFs, WalWriter};
    let mut g = c.benchmark_group("durability");
    let path = std::env::temp_dir().join(format!("adcache-bench-wal-{}.log", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let mut wal = WalWriter::open(Arc::new(RealFs::new()), &path, false).unwrap();
    let value = Entry::Put(Bytes::from(vec![b'v'; 100]));
    g.bench_function("wal_append_100b", |b| {
        b.iter(|| {
            wal.append(b"user00000000000000000001", black_box(&value))
                .unwrap()
        })
    });
    let payload = vec![0xABu8; 4096];
    g.bench_function("crc32_4k", |b| b.iter(|| black_box(crc32(&payload))));
    let mut h = Histogram::new();
    g.bench_function("histogram_record", |b| {
        let mut i = 1u64;
        b.iter(|| {
            i = i.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(black_box(i % 1_000_000 + 1));
        })
    });
    g.bench_function("histogram_p99", |b| b.iter(|| black_box(h.quantile(0.99))));
    drop(wal);
    let _ = std::fs::remove_file(&path);
    g.finish();
}

fn bench_block(c: &mut Criterion) {
    let mut g = c.benchmark_group("block");
    let entries: Vec<(Bytes, Entry)> = (0..64)
        .map(|i| {
            (
                Bytes::from(format!("user{i:020}")),
                Entry::Put(Bytes::from(vec![b'v'; 64])),
            )
        })
        .collect();
    g.bench_function("encode_64_entries", |b| {
        b.iter(|| {
            let mut builder = BlockBuilder::new(16);
            for (k, e) in &entries {
                builder.add(k, e).unwrap();
            }
            black_box(builder.finish())
        })
    });
    let mut builder = BlockBuilder::new(16);
    for (k, e) in &entries {
        builder.add(k, e).unwrap();
    }
    let encoded = builder.finish();
    g.bench_function("decode", |b| {
        b.iter(|| black_box(Block::decode(encoded.clone()).unwrap()))
    });
    let block = Block::decode(encoded).unwrap();
    g.bench_function("point_get", |b| {
        b.iter(|| black_box(block.get(b"user00000000000000000031").unwrap()))
    });
    g.bench_function("seek_and_scan_16", |b| {
        b.iter(|| {
            let it = block.iter_from(b"user00000000000000000020").unwrap();
            black_box(it.take(16).count())
        })
    });
    g.finish();
}

fn bench_skiplist_and_bloom(c: &mut Criterion) {
    let mut g = c.benchmark_group("structures");
    g.bench_function("skiplist_insert_1000", |b| {
        b.iter(|| {
            let mut l = SkipList::new();
            for i in 0..1000u32 {
                l.insert(
                    Bytes::from(format!("{:08}", (i * 2654435761u32) % 100_000)),
                    i,
                );
            }
            black_box(l.len())
        })
    });
    let mut list = SkipList::new();
    for i in 0..10_000u32 {
        list.insert(Bytes::from(format!("{i:08}")), i);
    }
    g.bench_function("skiplist_get", |b| {
        b.iter(|| black_box(list.get(b"00005000")))
    });
    let keys: Vec<Vec<u8>> = (0..10_000)
        .map(|i| format!("key{i}").into_bytes())
        .collect();
    g.bench_function("bloom_build_10k", |b| {
        b.iter(|| black_box(BloomFilter::build(&keys, 10)))
    });
    let bloom = BloomFilter::build(&keys, 10);
    g.bench_function("bloom_probe", |b| {
        b.iter(|| black_box(bloom.may_contain(b"key5000") && !bloom.may_contain(b"absent")))
    });
    let mut sketch = CountMinSketch::for_keys(10_000);
    g.bench_function("cms_increment", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(sketch.increment(&i.to_le_bytes()))
        })
    });
    g.finish();
}

fn prepared_tree() -> (LsmTree, Arc<MemStorage>) {
    let storage = Arc::new(MemStorage::new());
    let db = LsmTree::new(Options::small(), storage.clone()).unwrap();
    for i in 0..20_000u64 {
        db.put(render_key(i), Bytes::from(vec![b'v'; 64])).unwrap();
    }
    db.flush().unwrap();
    while db.maybe_compact_once().unwrap() {}
    (db, storage)
}

fn bench_lsm(c: &mut Criterion) {
    let mut g = c.benchmark_group("lsm");
    g.sample_size(30);
    let (db, _storage) = prepared_tree();
    let p = DirectProvider;
    g.bench_function("get_direct", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % 20_000;
            black_box(db.get(&render_key(i), &p).unwrap())
        })
    });
    g.bench_function("scan16_direct", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % 20_000;
            black_box(db.scan(&render_key(i), 16, &p).unwrap())
        })
    });
    let cache = BlockCache::new(8 << 20, 4);
    g.bench_function("get_block_cached_warm", |b| {
        let provider = cache.provider();
        for i in 0..20_000u64 {
            db.get(&render_key(i), &provider).unwrap();
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % 20_000;
            black_box(db.get(&render_key(i), &provider).unwrap())
        })
    });
    g.finish();
}

fn bench_range_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("range_cache");
    let cache = RangeCache::new(64 << 20);
    g.bench_function("insert_scan_64", |b| {
        let mut start = 0u64;
        b.iter(|| {
            start += 64;
            let shifted: Vec<(Bytes, Bytes)> = (start..start + 64)
                .map(|i| (render_key(i), Bytes::from(vec![b'v'; 64])))
                .collect();
            cache.insert_scan(&shifted[0].0, &shifted, 64);
        })
    });
    let cache = RangeCache::new(64 << 20);
    let results: Vec<(Bytes, Bytes)> = (0..64)
        .map(|i| (render_key(i), Bytes::from(vec![b'v'; 64])))
        .collect();
    cache.insert_scan(&results[0].0, &results, 64);
    g.bench_function("range_hit_16", |b| {
        b.iter(|| match cache.get_range(&render_key(8), 16) {
            RangeLookup::Hit(v) => black_box(v.len()),
            RangeLookup::Miss => panic!(),
        })
    });
    g.bench_function("point_hit", |b| {
        b.iter(|| match cache.get_point(&render_key(10)) {
            PointLookup::Hit(v) => black_box(v.len()),
            _ => panic!(),
        })
    });
    let mut charged: ChargedCache<u64, u64> =
        ChargedCache::new(1 << 20, Box::new(LruPolicy::new()));
    g.bench_function("charged_cache_insert_get", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            charged.insert(i % 10_000, i, 64);
            black_box(charged.get(&(i % 10_000)));
        })
    });
    g.finish();
}

fn bench_rl(c: &mut Criterion) {
    let mut g = c.benchmark_group("rl");
    g.sample_size(30);
    // Paper-sized networks: this measures the real per-window tuning cost.
    let mut agent = ActorCritic::new(AgentConfig::paper_default(13, 4));
    let state = vec![0.5f32; 13];
    g.bench_function("inference_256x256", |b| {
        b.iter(|| black_box(agent.act_greedy(&state)))
    });
    let t = Transition {
        state: state.clone(),
        action: vec![0.5; 4],
        reward: 0.1,
        next_state: state.clone(),
    };
    g.bench_function("train_step_256x256", |b| {
        b.iter(|| agent.update(black_box(&t)))
    });
    g.finish();
}

fn bench_workload(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload");
    let mut gen = WorkloadGen::new(WorkloadConfig {
        num_keys: 1_000_000,
        ..Default::default()
    });
    let mix = Mix::new(40.0, 20.0, 10.0, 30.0);
    g.bench_function("next_op", |b| b.iter(|| black_box(gen.next_op(&mix))));
    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(20);
    let db = CachedDb::new(
        Options::small(),
        Arc::new(MemStorage::new()),
        EngineConfig::new(Strategy::AdCache, 4 << 20),
    )
    .unwrap();
    for i in 0..20_000u64 {
        db.load(render_key(i), Bytes::from(vec![b'v'; 64])).unwrap();
    }
    db.db().flush().unwrap();
    while db.db().maybe_compact_once().unwrap() {}
    for i in 0..20_000u64 {
        db.get(&render_key(i)).unwrap();
    }
    g.bench_function("adcache_get_warm", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % 20_000;
            black_box(db.get(&render_key(i)).unwrap())
        })
    });
    g.bench_function("adcache_scan16_warm", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 977) % 19_000;
            black_box(db.scan(&render_key(i), 16).unwrap())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_policies,
    bench_wal_and_histogram,
    bench_block,
    bench_skiplist_and_bloom,
    bench_lsm,
    bench_range_cache,
    bench_rl,
    bench_workload,
    bench_engine,
);
criterion_main!(benches);
