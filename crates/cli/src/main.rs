//! `adcache` — an interactive shell over an AdCache-managed LSM store.
//!
//! ```text
//! adcache [--dir PATH] [--cache-mb N] [--strategy NAME] [--mem]
//! ```
//!
//! With `--dir`, the store is durable: SSTables live under `PATH/sst`, the
//! WAL and manifest under `PATH/meta`, and a restart recovers everything.
//! With `--mem` (default when no `--dir` is given) the store is an
//! in-memory simulation with I/O counting.
//!
//! Commands: `put`, `get`, `del`, `scan`, `fill`, `bench`, `stats`,
//! `tune`, `flush`, `help`, `quit`.
//!
//! `adcache trace DIR` is a non-interactive mode: it summarizes a trace
//! directory (`trace.jsonl` + `metrics.json`) produced by `--trace DIR`,
//! the `ADCACHE_TRACE` environment variable, or `RunConfig::trace_dir`.
//!
//! `adcache serve` puts the same engine behind a TCP socket (see
//! `adcache-server` for the wire protocol), and `adcache loadgen` replays
//! generated workloads against it, reporting throughput and tail latency.

use adcache_core::{
    AsyncController, CachedDb, Controller, ControllerConfig, EngineConfig, Snapshot, Strategy,
};
use adcache_lsm::{FileStorage, MemStorage, Options};
use adcache_obs::{parse_jsonl_lenient, Event, Obs};
use adcache_workload::{render_key, Mix, WorkloadConfig, WorkloadGen};
use bytes::Bytes;
use std::io::{BufRead, Write};
use std::sync::Arc;

struct CliConfig {
    dir: Option<std::path::PathBuf>,
    cache_mb: usize,
    strategy: Strategy,
    trace: Option<std::path::PathBuf>,
    sketch_guard: bool,
    /// Keyspace stripes; >1 also turns on background flush/compaction
    /// workers (the serve path defaults to 16, the shell to 1).
    stripes: usize,
}

fn parse_strategy(name: &str) -> Result<Strategy, String> {
    Strategy::all()
        .into_iter()
        .find(|s| s.name() == name)
        .ok_or_else(|| {
            let names: Vec<&str> = Strategy::all().iter().map(|s| s.name()).collect();
            format!(
                "unknown strategy {name}; choose one of {}",
                names.join(", ")
            )
        })
}

fn parse_args() -> Result<CliConfig, String> {
    let mut cfg = CliConfig {
        dir: None,
        cache_mb: 64,
        strategy: Strategy::AdCache,
        trace: None,
        sketch_guard: true,
        stripes: 1,
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--dir" => {
                i += 1;
                cfg.dir = Some(args.get(i).ok_or("--dir needs a path")?.into());
            }
            "--trace" => {
                i += 1;
                cfg.trace = Some(args.get(i).ok_or("--trace needs a path")?.into());
            }
            "--cache-mb" => {
                i += 1;
                cfg.cache_mb = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--cache-mb needs a number")?;
            }
            "--strategy" => {
                i += 1;
                cfg.strategy = parse_strategy(args.get(i).ok_or("--strategy needs a name")?)?;
            }
            "--stripes" => {
                i += 1;
                cfg.stripes = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|n| *n >= 1)
                    .ok_or("--stripes needs a number >= 1")?;
            }
            "--mem" => cfg.dir = None,
            "--help" | "-h" => {
                print_help();
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
        i += 1;
    }
    Ok(cfg)
}

fn print_help() {
    println!(
        "adcache — interactive AdCache key-value shell\n\
         \n\
         usage:\n\
         \x20 adcache [flags]     interactive shell\n\
         \x20 adcache trace DIR   summarize a trace directory (trace.jsonl + metrics.json)\n\
         \x20 adcache serve [--addr HOST:PORT] [--workers N] [--fill N] [--trace DIR]\n\
         \x20                     TCP server over the engine (drain via opcode 6)\n\
         \x20 adcache loadgen [--addr HOST:PORT] [--ops N] [--connections N] [--qps Q]\n\
         \x20                     network load generator (closed loop; --qps = open loop)\n\
         \x20 adcache metrics [--addr HOST:PORT] [--format json|prom] [--summary]\n\
         \x20                     one-shot metrics export from a live server\n\
         \x20 adcache top [--addr HOST:PORT] [--interval-ms N] [--iterations N]\n\
         \x20                     polling live view: QPS, stages, locks, caches\n\
         \x20 adcache faultcheck [--cycles N] [--seed S]\n\
         \x20                     seeded crash-recover-verify fault drills\n\
         \x20 adcache advcheck [--ops N] [--keys N] [--kind KIND|all] [--assert-defenses]\n\
         \x20                     adversarial drills: attacks vs defenses, off/on\n\
         \x20 adcache tenantcheck [--ops N] [--keys N] [--tenants N] [--assert-defenses]\n\
         \x20                     noisy-neighbor drill: tenant isolation off vs on\n\
         \n\
         flags:\n\
         \x20 --dir PATH        durable store rooted at PATH (default: in-memory)\n\
         \x20 --cache-mb N      total cache budget in MiB (default 64)\n\
         \x20 --strategy NAME   rocksdb-block | kv-cache | range-cache |\n\
         \x20                   range-lecar | range-cacheus | adcache (default)\n\
         \x20 --trace PATH      record a structured trace; dumped to PATH on quit\n\
         \n\
         commands:\n\
         \x20 put <key> <value>   insert or overwrite\n\
         \x20 get <key>           point lookup\n\
         \x20 del <key>           delete\n\
         \x20 scan <key> <n>      n entries from key\n\
         \x20 fill <n>            load n synthetic keys (user000...)\n\
         \x20 bench <n> <mix>     run n ops of mix point|scan|mixed|write\n\
         \x20 stats               cache + engine statistics\n\
         \x20 tune                current AdCache decision parameters\n\
         \x20 flush               flush the memtable\n\
         \x20 help | quit"
    );
}

fn build_db(cfg: &CliConfig) -> Result<CachedDb, Box<dyn std::error::Error>> {
    let mut engine = EngineConfig::new(cfg.strategy, cfg.cache_mb << 20);
    engine.sketch_guard = cfg.sketch_guard;
    let tune = |mut opts: Options| {
        opts.stripes = cfg.stripes;
        opts.background_maintenance = cfg.stripes > 1;
        opts
    };
    let db = match &cfg.dir {
        Some(dir) => {
            let storage = Arc::new(FileStorage::open(dir.join("sst"))?);
            println!(
                "durable store at {} (strategy {}, cache {} MiB, {} stripes)",
                dir.display(),
                cfg.strategy.name(),
                cfg.cache_mb,
                cfg.stripes,
            );
            CachedDb::with_durability(tune(Options::default()), storage, dir.join("meta"), engine)?
        }
        None => {
            println!(
                "in-memory store (strategy {}, cache {} MiB, {} stripes)",
                cfg.strategy.name(),
                cfg.cache_mb,
                cfg.stripes,
            );
            CachedDb::new(tune(Options::small()), Arc::new(MemStorage::new()), engine)?
        }
    };
    Ok(db)
}

fn cmd_stats(db: &CachedDb) {
    let snap = db.snapshot();
    println!(
        "ops: {} gets, {} scans, {} writes",
        snap.points, snap.scans, snap.writes
    );
    println!(
        "cache: {} result hits, {} kv hits, {} misses",
        snap.range_hits, snap.kv_hits, snap.cache_misses
    );
    if let Some(bc) = db.block_cache() {
        let s = bc.stats();
        println!(
            "block cache: {}/{} bytes, {} blocks, {} hits / {} misses, {} invalidated",
            bc.used(),
            bc.capacity(),
            bc.len(),
            s.hits,
            s.misses,
            s.invalidations
        );
    }
    if let Some(rc) = db.range_cache() {
        let s = rc.stats();
        println!(
            "range cache: {}/{} bytes, {} entries, {} segments, {} hits / {} misses",
            rc.used(),
            rc.capacity(),
            rc.len(),
            rc.segment_count(),
            s.hits,
            s.misses
        );
    }
    println!(
        "engine: {} SST reads (queries), {} compactions, {} flushes, {} runs / {} levels",
        db.db().query_block_reads(),
        db.db().compactions(),
        db.db()
            .stats_sum(|s| s.flushes.load(std::sync::atomic::Ordering::Relaxed)),
        db.db().num_runs(),
        db.db().num_levels(),
    );
    println!("write amplification: {:.2}x", db.db().write_amplification());
    println!(
        "device: {} reads, {} writes, {:.1} ms simulated",
        db.db().storage().stats().reads(),
        db.db().storage().stats().writes(),
        db.db().storage().stats().simulated_ns() as f64 / 1e6,
    );
}

/// The shell's engine plus the background tuner: every `window` operations
/// the observed window is shipped to the tuning thread and the freshest
/// decision is applied — the online loop of the paper, driven from a REPL.
struct Shell {
    db: CachedDb,
    tuner: Option<AsyncController>,
    window: u64,
    ops_in_window: std::cell::Cell<u64>,
    win_start: std::cell::Cell<Snapshot>,
    obs: Obs,
}

impl Shell {
    fn new(db: CachedDb, obs: Obs) -> Self {
        if obs.is_enabled() {
            db.set_obs(obs.clone());
        }
        let tuner = (db.strategy() == Strategy::AdCache).then(|| {
            let mut c = Controller::new(ControllerConfig {
                window: 1000,
                hidden: 64,
                ..Default::default()
            });
            c.set_obs(obs.clone());
            AsyncController::with_controller(c)
        });
        let win_start = std::cell::Cell::new(db.snapshot());
        Shell {
            db,
            tuner,
            window: 1000,
            ops_in_window: std::cell::Cell::new(0),
            win_start,
            obs,
        }
    }

    fn exec(&self, op: &adcache_workload::Operation) -> adcache_lsm::Result<()> {
        adcache_core::execute(&self.db, op)?;
        self.tick();
        Ok(())
    }

    fn tick(&self) {
        let n = self.ops_in_window.get() + 1;
        self.ops_in_window.set(n);
        if n.is_multiple_of(self.window) {
            self.obs.set_window(n / self.window);
            if let Some(t) = &self.tuner {
                let w = self.db.window_summary(&self.win_start.get());
                t.submit(w);
                self.db.apply_decision(&t.latest_decision());
                self.win_start.set(self.db.snapshot());
            }
        }
    }
}

fn parse_mix(name: &str) -> Result<Mix, String> {
    Ok(match name {
        "point" => Mix::new(100.0, 0.0, 0.0, 0.0),
        "scan" => Mix::new(0.0, 80.0, 20.0, 0.0),
        "write" => Mix::new(0.0, 0.0, 0.0, 100.0),
        "mixed" => Mix::new(40.0, 25.0, 5.0, 30.0),
        other => return Err(format!("unknown mix {other} (point|scan|write|mixed)")),
    })
}

/// Parses a `HOT:COLD` tenant-skew weight pair, e.g. `8:1`.
fn parse_skew(spec: &str) -> Result<(u32, u32), String> {
    let bad = || format!("bad skew {spec} (expected HOT:COLD, e.g. 8:1)");
    let (hot, cold) = spec.split_once(':').ok_or_else(bad)?;
    let hot: u32 = hot.trim().parse().map_err(|_| bad())?;
    let cold: u32 = cold.trim().parse().map_err(|_| bad())?;
    if hot == 0 || cold == 0 {
        return Err(bad());
    }
    Ok((hot, cold))
}

fn cmd_bench(shell: &Shell, n: u64, mix_name: &str) -> Result<(), Box<dyn std::error::Error>> {
    let db = &shell.db;
    let mix = parse_mix(mix_name)?;
    let keys = 100_000;
    let mut gen = WorkloadGen::new(WorkloadConfig {
        num_keys: keys,
        ..Default::default()
    });
    let reads_before = db.db().query_block_reads();
    let start = std::time::Instant::now();
    for _ in 0..n {
        shell.exec(&gen.next_op(&mix))?;
    }
    let secs = start.elapsed().as_secs_f64();
    println!(
        "{n} ops in {:.2}s ({:.0} ops/s wall), {} SST reads",
        secs,
        n as f64 / secs,
        db.db().query_block_reads() - reads_before
    );
    Ok(())
}

/// Reads a counter out of a `metrics.json` snapshot (0 when absent).
fn metric_counter(metrics: &serde_json::Value, name: &str) -> u64 {
    metrics
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(serde_json::Value::as_u64)
        .unwrap_or(0)
}

fn hit_rate_line(metrics: &serde_json::Value, label: &str, prefix: &str) -> String {
    let hits = metric_counter(metrics, &format!("{prefix}.hits"));
    let misses = metric_counter(metrics, &format!("{prefix}.misses"));
    let evictions = metric_counter(metrics, &format!("{prefix}.evictions"));
    let total = hits + misses;
    if total == 0 {
        format!("  {label:<12} (no traffic)")
    } else {
        format!(
            "  {label:<12} {:>7.2}% hit ({hits} hits / {misses} misses, {evictions} evictions)",
            hits as f64 * 100.0 / total as f64
        )
    }
}

/// `adcache trace DIR` — summarizes a recorded trace directory.
fn cmd_trace(dir: &std::path::Path) -> Result<(), Box<dyn std::error::Error>> {
    let metrics: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(dir.join("metrics.json"))?)?;
    // Lenient parse: a trace written by a newer build may contain event
    // kinds this binary does not know; skip and count them instead of
    // refusing the whole file.
    let (records, skipped) =
        parse_jsonl_lenient(&std::fs::read_to_string(dir.join("trace.jsonl"))?)?;

    println!("trace: {} ({} events)", dir.display(), records.len());
    if skipped > 0 {
        println!("  ({skipped} events of unknown kind skipped — newer trace format?)");
    }
    // Journal loss: the ring drops oldest records under pressure. A
    // nonzero first seq is history lost off the front; internal seq gaps
    // would mean records vanished mid-stream (should never happen).
    if let Some(first) = records.first() {
        let head_dropped = first.seq;
        let mut internal_gaps = 0u64;
        for w in records.windows(2) {
            internal_gaps += w[1].seq.saturating_sub(w[0].seq + 1);
        }
        // Lenient-skipped lines are present in the file, just unknown —
        // they account for that many apparent gaps.
        let internal_gaps = internal_gaps.saturating_sub(skipped);
        if head_dropped > 0 || internal_gaps > 0 {
            println!(
                "  WARNING: journal lossy — {head_dropped} events dropped before the \
                 retained window, {internal_gaps} internal seq gaps"
            );
        }
    }
    for r in &records {
        if let Event::RunStart {
            strategy,
            total_cache_bytes,
        } = &r.event
        {
            println!(
                "run: strategy {strategy}, cache budget {:.1} MiB",
                *total_cache_bytes as f64 / (1 << 20) as f64
            );
        }
    }

    println!("\ncache hit rates:");
    println!("{}", hit_rate_line(&metrics, "block", "cache.block"));
    println!("{}", hit_rate_line(&metrics, "range", "cache.range"));
    println!("{}", hit_rate_line(&metrics, "kv", "cache.kv"));

    // Admission breakdown by outcome and reason, from the journal.
    let mut by_verdict: std::collections::BTreeMap<String, (u64, u64, u64)> =
        std::collections::BTreeMap::new();
    for r in &records {
        if let Event::Admission {
            cache,
            outcome,
            reason,
            requested,
            admitted,
        } = &r.event
        {
            let e = by_verdict
                .entry(format!("{cache:?}/{outcome:?}/{reason:?}"))
                .or_insert((0, 0, 0));
            e.0 += 1;
            e.1 += requested;
            e.2 += admitted;
        }
    }
    println!("\nadmission decisions (journal tail):");
    if by_verdict.is_empty() {
        println!("  (none recorded)");
    }
    for (k, (n, req, adm)) in &by_verdict {
        println!("  {k:<44} {n:>7} decisions, {adm}/{req} entries admitted");
    }
    println!(
        "  counters (whole run): {} accepts, {} rejects, {} partials",
        metric_counter(&metrics, "core.admission.accepts"),
        metric_counter(&metrics, "core.admission.rejects"),
        metric_counter(&metrics, "core.admission.partials"),
    );

    // Boundary trajectory: where the controller moved the block/range split.
    let moves: Vec<(u64, f64, bool)> = records
        .iter()
        .filter_map(|r| match &r.event {
            Event::BoundaryResize {
                range_ratio,
                applied,
                ..
            } => Some((r.window, *range_ratio, *applied)),
            _ => None,
        })
        .collect();
    println!("\nboundary trajectory ({} decisions):", moves.len());
    let tail = moves.len().saturating_sub(10);
    if tail > 0 {
        println!("  ... {tail} earlier decisions elided ...");
    }
    for (window, ratio, applied) in &moves[tail..] {
        println!(
            "  window {window:>5}: range {:>5.1}% / block {:>5.1}%{}",
            ratio * 100.0,
            (1.0 - ratio) * 100.0,
            if *applied {
                ""
            } else {
                "  (suppressed by hysteresis)"
            }
        );
    }

    // Training progress.
    let steps: Vec<(f64, f64)> = records
        .iter()
        .filter_map(|r| match &r.event {
            Event::TrainStep {
                reward, td_error, ..
            } => Some((*reward, *td_error)),
            _ => None,
        })
        .collect();
    if !steps.is_empty() {
        let mean_r = steps.iter().map(|(r, _)| r).sum::<f64>() / steps.len() as f64;
        let mean_td = steps.iter().map(|(_, td)| td.abs()).sum::<f64>() / steps.len() as f64;
        println!(
            "\ntraining: {} steps, mean reward {mean_r:+.4}, mean |td error| {mean_td:.4}, last reward {:+.4}",
            steps.len(),
            steps.last().unwrap().0
        );
    }

    // LSM maintenance counted from the journal.
    let (mut compactions, mut flushes, mut invalidations) = (0u64, 0u64, 0u64);
    for r in &records {
        match &r.event {
            Event::CompactionFinish { .. } => compactions += 1,
            Event::Flush { .. } => flushes += 1,
            Event::BlockCacheInvalidation { .. } => invalidations += 1,
            _ => {}
        }
    }
    println!(
        "\nlsm: {} flushes, {} compactions (counters: {} / {}), {} block-cache invalidations",
        flushes,
        compactions,
        metric_counter(&metrics, "lsm.flushes"),
        metric_counter(&metrics, "lsm.compactions"),
        invalidations,
    );
    let gc_rounds = metric_counter(&metrics, "lsm.group_commit.rounds");
    if gc_rounds > 0 {
        let gc_batches = metric_counter(&metrics, "lsm.group_commit.batches");
        println!(
            "  group commit: {gc_batches} batches in {gc_rounds} rounds \
             ({:.2} batches/round), {} seals, {} write stalls",
            gc_batches as f64 / gc_rounds as f64,
            metric_counter(&metrics, "lsm.seals"),
            metric_counter(&metrics, "lsm.write_stalls"),
        );
    }

    if let Some(h) = metrics
        .get("histograms")
        .and_then(|h| h.get("op.latency_ns"))
    {
        let ns = |k: &str| h.get(k).and_then(serde_json::Value::as_u64).unwrap_or(0);
        println!(
            "\nlatency (simulated): p50 {:.1}us  p95 {:.1}us  p99 {:.1}us  max {:.1}us  ({} ops)",
            ns("p50_ns") as f64 / 1e3,
            ns("p95_ns") as f64 / 1e3,
            ns("p99_ns") as f64 / 1e3,
            ns("max_ns") as f64 / 1e3,
            ns("count"),
        );
    }

    // Serving summary (present only for traces from `adcache serve`).
    let served = metric_counter(&metrics, "server.requests");
    if served > 0 {
        let (mut accepted, mut closed, mut overloads) = (0u64, 0u64, 0u64);
        let mut close_causes: std::collections::BTreeMap<String, u64> =
            std::collections::BTreeMap::new();
        let mut sampled: std::collections::BTreeMap<String, (u64, u64)> =
            std::collections::BTreeMap::new();
        for r in &records {
            match &r.event {
                Event::ConnAccepted { .. } => accepted += 1,
                Event::ConnClosed { cause, .. } => {
                    closed += 1;
                    *close_causes.entry(format!("{cause:?}")).or_insert(0) += 1;
                }
                Event::ServerOverload { .. } => overloads += 1,
                Event::RequestServed {
                    opcode, latency_ns, ..
                } => {
                    let e = sampled.entry(opcode.clone()).or_insert((0, 0));
                    e.0 += 1;
                    e.1 += latency_ns;
                }
                _ => {}
            }
        }
        println!(
            "\nserving: {served} requests, {} protocol errors, {} MiB in / {} MiB out",
            metric_counter(&metrics, "server.protocol_errors"),
            metric_counter(&metrics, "server.bytes_in") >> 20,
            metric_counter(&metrics, "server.bytes_out") >> 20,
        );
        let causes = close_causes
            .iter()
            .map(|(k, n)| format!("{n} {k}"))
            .collect::<Vec<_>>()
            .join(", ");
        println!(
            "  connections: {accepted} accepted, {closed} closed{}{}",
            if causes.is_empty() {
                String::new()
            } else {
                format!(" ({causes})")
            },
            if overloads > 0 {
                format!(", {overloads} overload refusals")
            } else {
                String::new()
            }
        );
        for op in ["get", "put", "delete", "scan", "ping", "stats"] {
            if let Some(h) = metrics
                .get("histograms")
                .and_then(|h| h.get(&format!("server.latency.{op}")))
            {
                let ns = |k: &str| h.get(k).and_then(serde_json::Value::as_u64).unwrap_or(0);
                if ns("count") == 0 {
                    continue;
                }
                println!(
                    "  {op:<7} p50 {:>8.1}us  p95 {:>8.1}us  p99 {:>8.1}us  max {:>8.1}us  ({} ops)",
                    ns("p50_ns") as f64 / 1e3,
                    ns("p95_ns") as f64 / 1e3,
                    ns("p99_ns") as f64 / 1e3,
                    ns("max_ns") as f64 / 1e3,
                    ns("count"),
                );
            }
        }
        if !sampled.is_empty() {
            let line = sampled
                .iter()
                .map(|(op, (n, total))| {
                    format!("{op} {n}x ~{:.1}us", *total as f64 / *n as f64 / 1e3)
                })
                .collect::<Vec<_>>()
                .join(", ");
            println!("  journal samples: {line}");
        }

        // Per-request stage breakdown (whole run, from the registry).
        let (total_count, total_sum, _, _) = hist_stats(&metrics, "server.stage.total");
        if total_count > 0 {
            println!("\nstage breakdown ({total_count} requests):");
            for label in STAGE_LABELS {
                let (count, sum, _, p99) = hist_stats(&metrics, &format!("server.stage.{label}"));
                if count == 0 {
                    continue;
                }
                let share = if total_sum > 0 && label != "recv" {
                    sum as f64 * 100.0 / total_sum as f64
                } else {
                    0.0
                };
                println!(
                    "  {label:<12} {share:>5.1}%  mean {:>8.1}us  p99 {:>8.1}us{}",
                    sum as f64 / count as f64 / 1e3,
                    p99 as f64 / 1e3,
                    if label == "recv" {
                        "  (overlaps batches; outside total)"
                    } else {
                        ""
                    },
                );
            }
        }

        // Engine lock accounting and contention events.
        let lock_lines: Vec<String> = ["read", "write", "flush", "compaction"]
            .iter()
            .filter_map(|path| {
                let acq = metric_counter(&metrics, &format!("engine.lock.{path}.acquisitions"));
                if acq == 0 {
                    return None;
                }
                let wait = metric_counter(&metrics, &format!("engine.lock.{path}.wait_ns"));
                let hold = metric_counter(&metrics, &format!("engine.lock.{path}.hold_ns"));
                Some(format!(
                    "  {path:<12} {acq:>9} acquisitions, wait {:>9.2}ms, hold {:>9.2}ms",
                    wait as f64 / 1e6,
                    hold as f64 / 1e6
                ))
            })
            .collect();
        if !lock_lines.is_empty() {
            println!("\nengine lock accounting:");
            for l in &lock_lines {
                println!("{l}");
            }
            let contentions = records
                .iter()
                .filter(|r| matches!(r.event, Event::LockContention { .. }))
                .count();
            if contentions > 0 {
                println!("  {contentions} over-budget waits journaled (LockContention)");
            }
        }

        // Per-stripe accounting: lock traffic, queue depths, backlog.
        // Stripe rows exist only when the engine ran with stripes > 1.
        let stripe_rows: Vec<(usize, u64, u64, i64, i64)> = (0..)
            .map(|i| {
                let mut acq = 0u64;
                let mut wait = 0u64;
                for path in ["read", "write", "flush", "compaction"] {
                    acq += metric_counter(
                        &metrics,
                        &format!("engine.stripe.{i}.lock.{path}.acquisitions"),
                    );
                    wait +=
                        metric_counter(&metrics, &format!("engine.stripe.{i}.lock.{path}.wait_ns"));
                }
                let depth = metric_gauge(&metrics, &format!("engine.stripe.{i}.flush_queue_depth"));
                let backlog =
                    metric_gauge(&metrics, &format!("engine.stripe.{i}.compaction_backlog"));
                (i, acq, wait, depth, backlog)
            })
            .take_while(|(i, acq, ..)| {
                *acq > 0
                    || metrics
                        .get("gauges")
                        .and_then(|g| g.get(&format!("engine.stripe.{i}.flush_queue_depth")))
                        .is_some()
            })
            .collect();
        if !stripe_rows.is_empty() {
            let total_wait: u64 = stripe_rows.iter().map(|(_, _, w, _, _)| w).sum();
            println!("\nstripes ({}):", stripe_rows.len());
            for (i, acq, wait, depth, backlog) in &stripe_rows {
                println!(
                    "  stripe {i:>2}: {acq:>9} lock acquisitions, wait {:>9.2}ms ({:>5.1}%), \
                     flush queue {depth}, compaction backlog {backlog}",
                    *wait as f64 / 1e6,
                    if total_wait > 0 {
                        *wait as f64 * 100.0 / total_wait as f64
                    } else {
                        0.0
                    },
                );
            }
            if let Some((i, _, wait, ..)) = stripe_rows.iter().max_by_key(|(_, _, w, _, _)| *w) {
                println!(
                    "  hottest: stripe {i} with {:.2}ms lock wait",
                    *wait as f64 / 1e6
                );
            }
        }

        // Per-tenant accounting. Tenant rows exist only when connections
        // authenticated (the default tenant 0 is always present once the
        // cache telemetry flag is on).
        let mut tenant_ids: Vec<u64> = metrics
            .get("counters")
            .and_then(serde_json::Value::as_object)
            .map(|c| {
                c.iter()
                    .filter_map(|(k, _)| {
                        k.strip_prefix("cache.tenant.")
                            .and_then(|rest| rest.strip_suffix(".hits"))
                            .and_then(|id| id.parse().ok())
                    })
                    .collect()
            })
            .unwrap_or_default();
        tenant_ids.sort_unstable();
        if tenant_ids.len() > 1 {
            let mut bound: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
            let mut resizes: std::collections::BTreeMap<u64, (u64, f64)> =
                std::collections::BTreeMap::new();
            for r in &records {
                match &r.event {
                    Event::TenantBound { tenant, .. } => *bound.entry(*tenant).or_insert(0) += 1,
                    Event::TenantShareResized { tenant, share, .. } => {
                        let e = resizes.entry(*tenant).or_insert((0, 0.0));
                        e.0 += 1;
                        e.1 = *share;
                    }
                    _ => {}
                }
            }
            println!("\ntenants ({}):", tenant_ids.len());
            for id in &tenant_ids {
                let hits = metric_counter(&metrics, &format!("cache.tenant.{id}.hits"));
                let misses = metric_counter(&metrics, &format!("cache.tenant.{id}.misses"));
                let bytes = metric_gauge(&metrics, &format!("cache.tenant.{id}.bytes"));
                let throttled =
                    metric_counter(&metrics, &format!("server.tenant.{id}.quota.throttled"));
                let total = hits + misses;
                let (n_resizes, share) = resizes.get(id).copied().unwrap_or((0, 0.0));
                println!(
                    "  tenant {id:>3}: hit rate {:>5.1}% ({hits}/{total}), {:>8} KiB resident, \
                     {} conns bound, {n_resizes} share moves{}{}",
                    if total > 0 {
                        hits as f64 * 100.0 / total as f64
                    } else {
                        0.0
                    },
                    bytes >> 10,
                    bound.get(id).copied().unwrap_or(0),
                    if n_resizes > 0 {
                        format!(" (last share {share:.2})")
                    } else {
                        String::new()
                    },
                    if throttled > 0 {
                        format!(", {throttled} quota-throttled")
                    } else {
                        String::new()
                    },
                );
            }
        }

        // Slowest journaled requests, worst first.
        let mut slow: Vec<&adcache_obs::JournalRecord> = records
            .iter()
            .filter(|r| matches!(r.event, Event::SlowRequest { .. }))
            .collect();
        slow.sort_by_key(|r| match &r.event {
            Event::SlowRequest { total_ns, .. } => std::cmp::Reverse(*total_ns),
            _ => std::cmp::Reverse(0),
        });
        if !slow.is_empty() {
            println!("\nslow requests ({} journaled, worst 5):", slow.len());
            for r in slow.iter().take(5) {
                if let Event::SlowRequest {
                    conn,
                    opcode,
                    status,
                    total_ns,
                    queue_ns,
                    lock_wait_ns,
                    engine_ns,
                    cache_ns,
                    key,
                    ..
                } = &r.event
                {
                    println!(
                        "  {:>9.1}us {opcode} ({status}) conn {conn} key {key:?} — queue \
                         {:.1}us, lock {:.1}us, engine {:.1}us, cache {:.1}us",
                        *total_ns as f64 / 1e3,
                        *queue_ns as f64 / 1e3,
                        *lock_wait_ns as f64 / 1e3,
                        *engine_ns as f64 / 1e3,
                        *cache_ns as f64 / 1e3,
                    );
                }
            }
        }
    }

    // Rolling time-series, if the run snapshotted one (`serve
    // --snapshot-ms`). Absent for plain shell traces.
    let ts_path = dir.join("timeseries.jsonl");
    if let Ok(text) = std::fs::read_to_string(&ts_path) {
        let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
        println!(
            "\ntimeseries: {} snapshots in {}",
            lines.len(),
            ts_path.display()
        );
        let tail = lines.len().saturating_sub(5);
        if tail > 0 {
            println!("  ... {tail} earlier snapshots elided ...");
        }
        for line in &lines[tail..] {
            let Ok(v) = serde_json::from_str::<serde_json::Value>(line) else {
                println!("  (malformed snapshot line)");
                continue;
            };
            let seq = v
                .get("seq")
                .and_then(serde_json::Value::as_u64)
                .unwrap_or(0);
            let interval_ms = v
                .get("interval_ms")
                .and_then(serde_json::Value::as_u64)
                .unwrap_or(0);
            let reqs = v
                .get("counters")
                .and_then(|c| c.get("server.requests"))
                .and_then(serde_json::Value::as_u64)
                .unwrap_or(0);
            let hits = v
                .get("counters")
                .and_then(|c| c.get("cache.block.hits"))
                .and_then(serde_json::Value::as_u64)
                .unwrap_or(0);
            let qps = if interval_ms > 0 {
                reqs as f64 * 1e3 / interval_ms as f64
            } else {
                0.0
            };
            println!(
                "  snapshot {seq:>4}: {qps:>9.0} ops/s over {interval_ms} ms, \
                 {hits} block-cache hits"
            );
        }
    }
    Ok(())
}

/// `adcache serve`: put the engine behind a TCP socket and run until a
/// client sends the `Shutdown` opcode (CI drives drain that way; an
/// operator can use `adcache loadgen --shutdown --ops 0`).
/// 4 stripes per core, clamped to [2, 16]: enough to spread lock and
/// flush contention without making 16-way scan merges on a small box.
fn default_serve_stripes() -> usize {
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    (cores * 4).clamp(2, 16)
}

fn cmd_serve(argv: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let usage = "usage: adcache serve [--addr HOST:PORT] [--cache-mb N] [--strategy NAME] \
                 [--dir PATH] [--workers N] [--max-conns N] [--idle-timeout-secs N] \
                 [--fill N] [--trace DIR] [--no-telemetry] [--snapshot-ms N] [--slow-us N] \
                 [--quota-ops N] [--quota-burst N] [--tenant-quota-ops N] \
                 [--tenant-quota-burst N] [--no-sketch-guard] [--stripes N]";
    let mut cli = CliConfig {
        dir: None,
        cache_mb: 64,
        strategy: Strategy::AdCache,
        trace: None,
        sketch_guard: true,
        // Serving defaults to a striped engine with background
        // maintenance, sized to the machine (cross-stripe scans cost a
        // per-stripe setup, so more stripes than the hardware can run in
        // parallel only taxes the read path). `--stripes N` overrides;
        // `--stripes 1` restores the inline single-stripe write path.
        stripes: default_serve_stripes(),
    };
    let mut server_cfg = adcache_server::ServerConfig::default();
    let mut fill = 0u64;
    let mut telemetry = true;
    let mut snapshot_ms = 0u64;
    let mut i = 2;
    let next = |argv: &[String], i: &mut usize, what: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i).cloned().ok_or(format!("{what} needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => server_cfg.addr = next(argv, &mut i, "--addr")?,
            "--cache-mb" => cli.cache_mb = next(argv, &mut i, "--cache-mb")?.parse()?,
            "--strategy" => cli.strategy = parse_strategy(&next(argv, &mut i, "--strategy")?)?,
            "--dir" => cli.dir = Some(next(argv, &mut i, "--dir")?.into()),
            "--workers" => server_cfg.workers = next(argv, &mut i, "--workers")?.parse()?,
            "--max-conns" => server_cfg.max_conns = next(argv, &mut i, "--max-conns")?.parse()?,
            "--idle-timeout-secs" => {
                server_cfg.idle_timeout = std::time::Duration::from_secs(
                    next(argv, &mut i, "--idle-timeout-secs")?.parse()?,
                )
            }
            "--fill" => fill = next(argv, &mut i, "--fill")?.parse()?,
            "--trace" => cli.trace = Some(next(argv, &mut i, "--trace")?.into()),
            "--no-telemetry" => telemetry = false,
            "--snapshot-ms" => snapshot_ms = next(argv, &mut i, "--snapshot-ms")?.parse()?,
            "--slow-us" => {
                server_cfg.slow_request_ns =
                    next(argv, &mut i, "--slow-us")?.parse::<u64>()? * 1_000
            }
            "--quota-ops" => server_cfg.quota_ops = next(argv, &mut i, "--quota-ops")?.parse()?,
            "--quota-burst" => {
                server_cfg.quota_burst = next(argv, &mut i, "--quota-burst")?.parse()?
            }
            "--tenant-quota-ops" => {
                server_cfg.tenant_quota_ops = next(argv, &mut i, "--tenant-quota-ops")?.parse()?
            }
            "--tenant-quota-burst" => {
                server_cfg.tenant_quota_burst =
                    next(argv, &mut i, "--tenant-quota-burst")?.parse()?
            }
            "--no-sketch-guard" => cli.sketch_guard = false,
            "--stripes" => {
                cli.stripes = next(argv, &mut i, "--stripes")?.parse()?;
                if cli.stripes == 0 {
                    return Err("--stripes needs a number >= 1".into());
                }
            }
            other => return Err(format!("unknown serve flag {other}\n{usage}").into()),
        }
        i += 1;
    }

    if snapshot_ms > 0 && cli.trace.is_none() {
        return Err(
            "--snapshot-ms needs --trace DIR (snapshots land in DIR/timeseries.jsonl)"
                .to_string()
                .into(),
        );
    }
    let db = build_db(&cli)?;
    // Telemetry is on by default: the registry backs the METRICS opcode
    // and stage histograms. `--no-telemetry` strips all of it for
    // overhead baselines.
    let obs = if telemetry {
        Obs::enabled()
    } else {
        Obs::disabled()
    };
    obs.emit(|| Event::RunStart {
        strategy: cli.strategy.name().into(),
        total_cache_bytes: (cli.cache_mb as u64) << 20,
    });
    db.set_obs(obs.clone());
    if fill > 0 {
        for k in 0..fill {
            db.load(render_key(k), Bytes::from(format!("value-{k}")))?;
        }
        db.db().flush()?;
        println!("preloaded {fill} keys");
    }

    let snapshotter = match (&cli.trace, snapshot_ms) {
        (Some(dir), ms) if ms > 0 => {
            std::fs::create_dir_all(dir)?;
            let snap = adcache_obs::Snapshotter::start(
                obs.clone(),
                &dir.join("timeseries.jsonl"),
                std::time::Duration::from_millis(ms),
            )?;
            println!(
                "snapshotting metric deltas every {ms} ms to {}",
                dir.join("timeseries.jsonl").display()
            );
            Some(snap)
        }
        _ => None,
    };

    let db = Arc::new(db);
    let server = adcache_server::Server::start(db.clone(), server_cfg)?;
    println!(
        "serving on {} (shutdown: protocol opcode 6)",
        server.local_addr()
    );
    // Share-arbitration ticker: while serving, re-learn the tenant cache
    // split once a second. A no-op until a second tenant authenticates,
    // so single-tenant serving pays nothing but the clock.
    let arbiter_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let arbiter = {
        let db = db.clone();
        let stop = arbiter_stop.clone();
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                std::thread::sleep(std::time::Duration::from_millis(1_000));
                db.rebalance_tenants();
            }
        })
    };
    let report = server.wait();
    arbiter_stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let _ = arbiter.join();
    if let Some(snap) = snapshotter {
        let lines = snap.stop();
        println!("snapshot thread stopped after {lines} timeseries lines");
    }
    println!(
        "drained: {} requests ({} protocol errors), {}/{} connections closed, \
         {} refused, {} quota-throttled, {} MiB in / {} MiB out",
        report.requests,
        report.protocol_errors,
        report.conns_closed,
        report.conns_accepted,
        report.conns_refused,
        report.quota_throttled,
        report.bytes_in >> 20,
        report.bytes_out >> 20,
    );
    if let Some(dir) = &cli.trace {
        obs.dump_to_dir(dir)?;
        println!(
            "trace dumped to {} (summarize: adcache trace)",
            dir.display()
        );
    }
    Ok(())
}

/// Connects to a serving instance and fetches its metrics registry as a
/// parsed JSON tree (the `METRICS` opcode, JSON format).
fn fetch_metrics_value(addr: &str) -> Result<serde_json::Value, Box<dyn std::error::Error>> {
    let mut c = adcache_server::Client::connect(addr)?;
    let json = c.metrics(adcache_server::MetricsFormat::Json)?;
    Ok(serde_json::from_str(&json)?)
}

/// `(count, sum_ns, p50_ns, p99_ns)` of one named histogram in a metrics
/// snapshot; zeros when absent.
fn hist_stats(metrics: &serde_json::Value, name: &str) -> (u64, u64, u64, u64) {
    let h = metrics.get("histograms").and_then(|h| h.get(name));
    let f = |k: &str| {
        h.and_then(|h| h.get(k))
            .and_then(serde_json::Value::as_u64)
            .unwrap_or(0)
    };
    (f("count"), f("sum_ns"), f("p50_ns"), f("p99_ns"))
}

fn metric_gauge(metrics: &serde_json::Value, name: &str) -> i64 {
    metrics
        .get("gauges")
        .and_then(|g| g.get(name))
        .and_then(serde_json::Value::as_i64)
        .unwrap_or(0)
}

/// The per-request stage labels the server records, in pipeline order.
/// `recv` overlaps every frame of a batched read, so it is excluded from
/// the total and from share-of-total math.
const STAGE_LABELS: [&str; 7] = [
    "recv",
    "parse",
    "queue_wait",
    "lock_wait",
    "engine_exec",
    "cache_layer",
    "reply_flush",
];

/// `adcache metrics`: one-shot export of a live server's registry. Raw
/// JSON / Prometheus text by default; `--summary` renders a greppable
/// per-stage breakdown plus the engine lock-wait share.
fn cmd_metrics(argv: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let usage = "usage: adcache metrics [--addr HOST:PORT] [--format json|prom] [--summary]";
    let mut addr = "127.0.0.1:4400".to_string();
    let mut format = adcache_server::MetricsFormat::Json;
    let mut summary = false;
    let mut i = 2;
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => {
                i += 1;
                addr = argv.get(i).ok_or("--addr needs a value")?.clone();
            }
            "--format" => {
                i += 1;
                format = match argv.get(i).map(String::as_str) {
                    Some("json") => adcache_server::MetricsFormat::Json,
                    Some("prom" | "prometheus") => adcache_server::MetricsFormat::Prometheus,
                    other => return Err(format!("--format json|prom, got {other:?}").into()),
                };
            }
            "--summary" => summary = true,
            other => return Err(format!("unknown metrics flag {other}\n{usage}").into()),
        }
        i += 1;
    }
    if !summary {
        let mut c = adcache_server::Client::connect(&addr)?;
        let text = c.metrics(format)?;
        // The export already ends with its own newline (both formats);
        // print it byte-exact so piped output matches the wire payload.
        print!("{text}");
        if !text.ends_with('\n') {
            println!();
        }
        return Ok(());
    }

    let m = fetch_metrics_value(&addr)?;
    let requests = metric_counter(&m, "server.requests");
    println!("requests {requests}");
    let (total_count, total_sum, total_p50, total_p99) = hist_stats(&m, "server.stage.total");
    for label in STAGE_LABELS {
        let (count, sum, _, p99) = hist_stats(&m, &format!("server.stage.{label}"));
        let mean_us = if count > 0 {
            sum as f64 / count as f64 / 1e3
        } else {
            0.0
        };
        let share = if total_sum > 0 && label != "recv" {
            sum as f64 * 100.0 / total_sum as f64
        } else {
            0.0
        };
        println!(
            "stage {label} count {count} mean_us {mean_us:.1} p99_us {:.1} share_pct {share:.1}",
            p99 as f64 / 1e3
        );
    }
    println!(
        "stage total count {total_count} mean_us {:.1} p50_us {:.1} p99_us {:.1}",
        if total_count > 0 {
            total_sum as f64 / total_count as f64 / 1e3
        } else {
            0.0
        },
        total_p50 as f64 / 1e3,
        total_p99 as f64 / 1e3,
    );
    let (_, lock_sum, _, _) = hist_stats(&m, "server.stage.lock_wait");
    let lock_share = if total_sum > 0 {
        lock_sum as f64 * 100.0 / total_sum as f64
    } else {
        0.0
    };
    println!("lock_wait_share_pct {lock_share:.2}");
    for path in ["read", "write", "flush", "compaction"] {
        println!(
            "lock {path} acquisitions {} wait_ns {} hold_ns {}",
            metric_counter(&m, &format!("engine.lock.{path}.acquisitions")),
            metric_counter(&m, &format!("engine.lock.{path}.wait_ns")),
            metric_counter(&m, &format!("engine.lock.{path}.hold_ns")),
        );
    }
    let gc_rounds = metric_counter(&m, "lsm.group_commit.rounds");
    let gc_batches = metric_counter(&m, "lsm.group_commit.batches");
    println!(
        "group_commit rounds {gc_rounds} batches {gc_batches} mean_batch {:.2} seals {} write_stalls {}",
        if gc_rounds > 0 {
            gc_batches as f64 / gc_rounds as f64
        } else {
            0.0
        },
        metric_counter(&m, "lsm.seals"),
        metric_counter(&m, "lsm.write_stalls"),
    );
    Ok(())
}

/// `adcache top`: a polling live view over the wire. Each tick fetches
/// the registry, diffs it against the previous tick, and prints QPS,
/// per-opcode interval latency, the stage breakdown as bars, the engine
/// lock-wait share, cache hit rates, and the RL boundary position.
fn cmd_top(argv: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let usage = "usage: adcache top [--addr HOST:PORT] [--interval-ms N] [--iterations N]";
    let mut addr = "127.0.0.1:4400".to_string();
    let mut interval_ms = 1_000u64;
    let mut iterations = 0u64; // 0 = until the connection breaks
    let mut i = 2;
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => {
                i += 1;
                addr = argv.get(i).ok_or("--addr needs a value")?.clone();
            }
            "--interval-ms" => {
                i += 1;
                interval_ms = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--interval-ms needs a number")?;
            }
            "--iterations" => {
                i += 1;
                iterations = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--iterations needs a number")?;
            }
            other => return Err(format!("unknown top flag {other}\n{usage}").into()),
        }
        i += 1;
    }
    let interval = std::time::Duration::from_millis(interval_ms.max(50));

    let mut prev = fetch_metrics_value(&addr)?;
    let mut prev_at = std::time::Instant::now();
    let mut tick = 0u64;
    loop {
        std::thread::sleep(interval);
        let cur = fetch_metrics_value(&addr)?;
        let now = std::time::Instant::now();
        let secs = now.duration_since(prev_at).as_secs_f64().max(1e-9);
        tick += 1;
        render_top_tick(&cur, &prev, secs, tick, &addr);
        prev = cur;
        prev_at = now;
        if iterations > 0 && tick >= iterations {
            return Ok(());
        }
    }
}

/// One `adcache top` frame: everything derived from the delta between
/// two registry snapshots `secs` apart.
fn render_top_tick(
    cur: &serde_json::Value,
    prev: &serde_json::Value,
    secs: f64,
    tick: u64,
    addr: &str,
) {
    let dc = |name: &str| metric_counter(cur, name).saturating_sub(metric_counter(prev, name));
    // Interval (count, sum) of one histogram.
    let dh = |name: &str| {
        let (cc, cs, _, _) = hist_stats(cur, name);
        let (pc, ps, _, _) = hist_stats(prev, name);
        (cc.saturating_sub(pc), cs.saturating_sub(ps))
    };

    let qps = dc("server.requests") as f64 / secs;
    println!("\n== adcache top @ {addr} — tick {tick} — {qps:.0} ops/s ==");

    // Per-opcode interval mean (delta sum / delta count) plus cumulative
    // tail quantiles (quantiles are not delta-decomposable from the
    // summary export).
    for op in ["get", "put", "delete", "scan", "ping", "stats", "metrics"] {
        let name = format!("server.latency.{op}");
        let (dcount, dsum) = dh(&name);
        if dcount == 0 {
            continue;
        }
        let (_, _, p50, p99) = hist_stats(cur, &name);
        println!(
            "  {op:<7} {:>8.0}/s  mean {:>8.1}us  p50 {:>8.1}us  p99 {:>8.1}us",
            dcount as f64 / secs,
            dsum as f64 / dcount as f64 / 1e3,
            p50 as f64 / 1e3,
            p99 as f64 / 1e3,
        );
    }

    // Stage breakdown: interval share of the summed request lifetime,
    // rendered as bars. `recv` is shown but not part of the total.
    let (_, total_dsum) = dh("server.stage.total");
    println!("  stage breakdown (interval):");
    for label in STAGE_LABELS {
        let (dcount, dsum) = dh(&format!("server.stage.{label}"));
        let mean_us = if dcount > 0 {
            dsum as f64 / dcount as f64 / 1e3
        } else {
            0.0
        };
        let share = if total_dsum > 0 && label != "recv" {
            dsum as f64 / total_dsum as f64
        } else {
            0.0
        };
        let bar = "#".repeat((share * 30.0).round() as usize);
        println!(
            "    {label:<12} {:>6.1}% {:>9.1}us  {bar}",
            share * 100.0,
            mean_us
        );
    }
    let (_, lock_dsum) = dh("server.stage.lock_wait");
    let lock_share = if total_dsum > 0 {
        lock_dsum as f64 * 100.0 / total_dsum as f64
    } else {
        0.0
    };
    let lock_waits: u64 = ["read", "write", "flush", "compaction"]
        .iter()
        .map(|p| dc(&format!("engine.lock.{p}.wait_ns")))
        .sum();
    println!(
        "  lock: {lock_share:.1}% of request time waiting; engine lock wait {:.1}ms/s",
        lock_waits as f64 / secs / 1e6
    );

    // Hottest stripe over the interval (striped engines only): most
    // interval lock wait, with its queue gauges.
    let stripe_wait = |i: usize| -> u64 {
        ["read", "write", "flush", "compaction"]
            .iter()
            .map(|p| dc(&format!("engine.stripe.{i}.lock.{p}.wait_ns")))
            .sum()
    };
    let has_stripe = |i: usize| {
        cur.get("gauges")
            .and_then(|g| g.get(&format!("engine.stripe.{i}.flush_queue_depth")))
            .is_some()
    };
    if has_stripe(0) {
        let n = (0..).take_while(|i| has_stripe(*i)).count();
        if let Some(hot) = (0..n).max_by_key(|i| stripe_wait(*i)) {
            println!(
                "  hottest stripe: {hot}/{n} with {:.2}ms/s lock wait, flush queue {}, \
                 compaction backlog {}",
                stripe_wait(hot) as f64 / secs / 1e6,
                metric_gauge(cur, &format!("engine.stripe.{hot}.flush_queue_depth")),
                metric_gauge(cur, &format!("engine.stripe.{hot}.compaction_backlog")),
            );
        }
    }

    // Hottest tenant over the interval (multi-tenant serving only):
    // most cache traffic, with its interval hit rate and residency.
    let tenant_ids: Vec<u64> = cur
        .get("counters")
        .and_then(serde_json::Value::as_object)
        .map(|c| {
            c.iter()
                .filter_map(|(k, _)| {
                    k.strip_prefix("cache.tenant.")
                        .and_then(|rest| rest.strip_suffix(".hits"))
                        .and_then(|id| id.parse().ok())
                })
                .collect()
        })
        .unwrap_or_default();
    if tenant_ids.len() > 1 {
        let traffic = |id: u64| {
            dc(&format!("cache.tenant.{id}.hits")) + dc(&format!("cache.tenant.{id}.misses"))
        };
        if let Some(&hot) = tenant_ids.iter().max_by_key(|id| traffic(**id)) {
            let hits = dc(&format!("cache.tenant.{hot}.hits"));
            let total = traffic(hot);
            let throttled = dc(&format!("server.tenant.{hot}.quota.throttled"));
            println!(
                "  hottest tenant: {hot}/{} with {:.0} lookups/s, {:.1}% hit, {} KiB resident{}",
                tenant_ids.len(),
                total as f64 / secs,
                if total > 0 {
                    hits as f64 * 100.0 / total as f64
                } else {
                    0.0
                },
                metric_gauge(cur, &format!("cache.tenant.{hot}.bytes")) >> 10,
                if throttled > 0 {
                    format!(", {throttled} throttled this tick")
                } else {
                    String::new()
                },
            );
        }
    }

    // Cache hit rates over the interval.
    for (label, prefix) in [
        ("block", "cache.block"),
        ("range", "cache.range"),
        ("kv", "cache.kv"),
    ] {
        let hits = dc(&format!("{prefix}.hits"));
        let misses = dc(&format!("{prefix}.misses"));
        if hits + misses > 0 {
            println!(
                "  cache {label:<6} {:>6.2}% hit ({hits} hits / {misses} misses)",
                hits as f64 * 100.0 / (hits + misses) as f64
            );
        }
    }

    // Where the controller has the block/range boundary right now.
    let block = metric_gauge(cur, "core.boundary.block_bytes");
    let range = metric_gauge(cur, "core.boundary.range_bytes");
    if block + range > 0 {
        println!(
            "  boundary: range {:.1}% / block {:.1}% of {} MiB",
            range as f64 * 100.0 / (block + range) as f64,
            block as f64 * 100.0 / (block + range) as f64,
            (block + range) >> 20,
        );
    }
}

/// `adcache loadgen`: replay a generated workload against a running
/// server and report throughput + tail latency. Exits nonzero if any
/// reply was lost, misordered, or undecodable.
fn cmd_loadgen(argv: &[String]) -> Result<bool, Box<dyn std::error::Error>> {
    let usage = "usage: adcache loadgen [--addr HOST:PORT] [--ops N] [--connections N] \
                 [--mix point|scan|write|mixed] [--keys N] [--value-size N] [--seed S] \
                 [--qps Q] [--batch N] [--adversary KIND] [--adversary-frac F] \
                 [--tenants N] [--skew HOT:COLD] [--shutdown]\n\
                 --batch N groups N ops per wire frame (1 = off, max 1024)\n\
                 --tenants N authenticates connections as tenants 1..=N; \
                 --skew HOT:COLD weights tenant 1 vs the rest (default 1:1)\n\
                 adversary kinds: scan-flood | one-hit-wonder | key-churn | sketch-collision";
    let mut cfg = adcache_server::LoadgenConfig::default();
    let mut workload = WorkloadConfig {
        num_keys: 100_000,
        ..Default::default()
    };
    let mut adversary_kind: Option<adcache_workload::AdversaryKind> = None;
    let mut shutdown_after = false;
    let mut i = 2;
    let next = |argv: &[String], i: &mut usize, what: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i).cloned().ok_or(format!("{what} needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => cfg.addr = next(argv, &mut i, "--addr")?,
            "--ops" => cfg.ops = next(argv, &mut i, "--ops")?.parse()?,
            "--connections" => cfg.connections = next(argv, &mut i, "--connections")?.parse()?,
            "--mix" => cfg.mix = parse_mix(&next(argv, &mut i, "--mix")?)?,
            "--keys" => workload.num_keys = next(argv, &mut i, "--keys")?.parse()?,
            "--value-size" => workload.value_size = next(argv, &mut i, "--value-size")?.parse()?,
            "--seed" => workload.seed = next(argv, &mut i, "--seed")?.parse()?,
            "--qps" => cfg.target_qps = Some(next(argv, &mut i, "--qps")?.parse()?),
            "--batch" => cfg.batch = next(argv, &mut i, "--batch")?.parse()?,
            "--adversary" => {
                let name = next(argv, &mut i, "--adversary")?;
                adversary_kind = Some(
                    adcache_workload::AdversaryKind::parse(&name)
                        .ok_or(format!("unknown adversary kind {name}\n{usage}"))?,
                );
            }
            "--adversary-frac" => {
                cfg.adversary_frac = next(argv, &mut i, "--adversary-frac")?.parse()?
            }
            "--tenants" => cfg.tenants = next(argv, &mut i, "--tenants")?.parse()?,
            "--skew" => cfg.tenant_skew = parse_skew(&next(argv, &mut i, "--skew")?)?,
            "--shutdown" => shutdown_after = true,
            other => return Err(format!("unknown loadgen flag {other}\n{usage}").into()),
        }
        i += 1;
    }
    if let Some(kind) = adversary_kind {
        // Default to half the connections when the fraction is left unset.
        if cfg.adversary_frac <= 0.0 {
            cfg.adversary_frac = 0.5;
        }
        cfg.adversary = Some(adcache_workload::AdversaryConfig::new(
            kind,
            workload.num_keys,
            workload.seed,
        ));
        println!(
            "adversary: {} on {:.0}% of connections",
            kind.name(),
            cfg.adversary_frac * 100.0
        );
    }
    cfg.workload = workload;

    let report = if cfg.ops > 0 {
        let report = adcache_server::loadgen::run(&cfg)?;
        println!(
            "{} connections, {} loop{}:",
            cfg.connections,
            if cfg.target_qps.is_some() {
                "open"
            } else {
                "closed"
            },
            if cfg.batch > 1 {
                format!(", batch {}", cfg.batch)
            } else {
                String::new()
            }
        );
        println!("{}", report.render());
        Some(report)
    } else {
        // `--ops 0` is a connectivity probe: one Ping round-trip.
        if !shutdown_after {
            let mut c = adcache_server::Client::connect(&cfg.addr)?;
            match c.call(&adcache_server::Request::Ping)? {
                adcache_server::Response::Ok => println!("pong from {}", cfg.addr),
                other => return Err(format!("ping answered {other:?}").into()),
            }
        }
        None
    };
    if shutdown_after {
        let mut c = adcache_server::Client::connect(&cfg.addr)?;
        c.shutdown_server()?;
        println!("server shutdown acknowledged");
    }
    Ok(report.is_none_or(|r| r.protocol_errors == 0))
}

/// One attack kind × defense mode measurement from the advcheck drill.
struct AdvOutcome {
    /// Legit hit rate before the attack (phase A).
    base_hit: f64,
    /// Legit p99 before the attack, ns (phase A).
    base_p99: u64,
    /// Legit p99 while under attack, ns (phase B).
    attack_p99: u64,
    /// Legit hit rate after the attack (phase C).
    post_hit: f64,
    /// Quota rejections the attack drew during phase B.
    quota_errors: u64,
    /// Sketch-guard resets when the same attack stream hits the engine
    /// directly — no quota in front, so the column shows what the guard
    /// alone detects (behind the wire, quota shedding also starves the
    /// sketch of attack pressure, which is the layering working).
    sketch_resets: u64,
}

impl AdvOutcome {
    /// Hit-rate loss the attack inflicted on legitimate traffic.
    fn hit_drop(&self) -> f64 {
        (self.base_hit - self.post_hit).max(0.0)
    }

    /// p99 inflation while under attack, as a ratio over `base` ns.
    ///
    /// The baseline is passed in rather than taken from `self` so the
    /// off/on rows of one attack can share a pooled baseline: the
    /// defenses do not touch idle-state latency, so the two base phases
    /// measure the same quantity twice, and dividing each attack p99 by
    /// its own noisy copy can flip the off/on comparison on baseline
    /// jitter alone.
    fn p99_inflation(&self, base: f64) -> f64 {
        self.attack_p99 as f64 / base.max(1.0)
    }
}

/// Cache hit rate from the deltas of two engine stats snapshots.
fn adv_hit_rate(
    before: &adcache_core::EngineStatsReport,
    after: &adcache_core::EngineStatsReport,
) -> f64 {
    let hits = (after.range_hits + after.kv_hits) - (before.range_hits + before.kv_hits);
    let total = hits + (after.cache_misses - before.cache_misses);
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

/// Runs one attack kind against a fresh in-process engine + server,
/// defenses on or off, and measures the legitimate traffic's experience
/// before (A), during (B), and after (C) the attack.
fn adv_drill(
    kind: adcache_workload::AdversaryKind,
    defenses: bool,
    ops: u64,
    keys: u64,
    seed: u64,
) -> Result<AdvOutcome, Box<dyn std::error::Error>> {
    let mut engine = EngineConfig::new(Strategy::AdCache, 256 << 10);
    engine.expected_keys = keys as usize;
    engine.sketch_guard = defenses;
    let db = CachedDb::new(Options::small(), Arc::new(MemStorage::new()), engine)?;
    db.set_obs(Obs::enabled());
    // No controller runs inside the drill, so pin a small admission
    // threshold: frequency admission must actually gate the KV cache for
    // pollution attacks to have a defended surface.
    db.apply_decision(&adcache_core::CacheDecision {
        point_threshold: 0.0005,
        ..Default::default()
    });
    for k in 0..keys {
        db.load(render_key(k), Bytes::from(vec![0x5A; 100]))?;
    }
    db.db().flush()?;
    let db = Arc::new(db);
    let server = adcache_server::Server::start(
        db.clone(),
        adcache_server::ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            // 6000 tokens/s per connection: a legit client paced at 2000
            // ops/s (× avg cost ~2.4 under the 70/10/0/20 mix with
            // 16-entry short scans ≈ 4900) keeps ~20% headroom, while
            // write-churn rounds (avg cost ≥ 5), one-hit PUT storms
            // (~6.5), and 512-entry scan floods (257/op) overrun it and
            // get shed. The burst covers a full in-flight window of
            // legit ops (128 × ~2.4 ≈ 300) so a post-stall catch-up
            // burst is not misread as hostile.
            quota_ops: if defenses { 6_000 } else { 0 },
            quota_burst: if defenses { 400 } else { 0 },
            ..Default::default()
        },
    )?;
    let addr = server.local_addr().to_string();
    // Every phase runs open-loop at 2000 ops/s per connection, so legit
    // p99 numbers compare like for like across phases AND per-connection
    // token demand is deterministic (closed-loop rates float with RTT,
    // which made quota pressure a coin flip). The blended phase adds 2
    // attack connections paced the same but spending far more tokens per
    // op — and doubles total ops so the legit share stays constant.
    let legit = |adversary: Option<adcache_workload::AdversaryConfig>| {
        let blended = adversary.is_some();
        adcache_server::LoadgenConfig {
            addr: addr.clone(),
            connections: if blended { 4 } else { 2 },
            ops: if blended { ops * 2 } else { ops },
            mix: Mix::new(70.0, 10.0, 0.0, 20.0),
            workload: WorkloadConfig {
                num_keys: keys,
                value_size: 100,
                seed,
                ..Default::default()
            },
            target_qps: Some(if blended { 8_000 } else { 4_000 }),
            batch: 0,
            adversary_frac: if blended { 0.5 } else { 0.0 },
            adversary,
            tenants: 0,
            tenant_skew: (1, 1),
        }
    };

    // Warm the caches so the phase-A baseline is a steady state.
    adcache_server::loadgen::run(&legit(None))?;

    let s0 = db.stats_report();
    let a = adcache_server::loadgen::run(&legit(None))?;
    let s1 = db.stats_report();

    let attack = adcache_workload::AdversaryConfig::new(kind, keys, seed ^ 0xA11);
    let b = adcache_server::loadgen::run(&legit(Some(attack)))?;

    let s2 = db.stats_report();
    let c = adcache_server::loadgen::run(&legit(None))?;
    let s3 = db.stats_report();

    let report = server.shutdown();
    if a.protocol_errors + b.protocol_errors + c.protocol_errors > 0 {
        return Err("protocol errors during drill — defenses must stay frame-clean".into());
    }
    if report.conns_accepted != report.conns_closed {
        return Err("drill server did not drain cleanly".into());
    }
    Ok(AdvOutcome {
        base_hit: adv_hit_rate(&s0, &s1),
        base_p99: a.legit_latency.quantile(0.99),
        attack_p99: b.legit_latency.quantile(0.99),
        post_hit: adv_hit_rate(&s2, &s3),
        quota_errors: b.errors_by_cause.get("quota").copied().unwrap_or(0),
        sketch_resets: adv_guard_drill(kind, keys, seed, defenses)?,
    })
}

/// The sketch-guard sub-drill: drives a fixed-size attack stream straight
/// into a fresh engine (no server, no quota) and reports how many times
/// the anomaly guard reset the admission sketch. Deterministic: no
/// network timing is involved, so the resets column is reproducible.
fn adv_guard_drill(
    kind: adcache_workload::AdversaryKind,
    keys: u64,
    seed: u64,
    defenses: bool,
) -> Result<u64, Box<dyn std::error::Error>> {
    let mut engine = EngineConfig::new(Strategy::AdCache, 256 << 10);
    engine.expected_keys = keys as usize;
    engine.sketch_guard = defenses;
    let db = CachedDb::new(Options::small(), Arc::new(MemStorage::new()), engine)?;
    db.apply_decision(&adcache_core::CacheDecision {
        point_threshold: 0.0005,
        ..Default::default()
    });
    for k in 0..keys {
        db.load(render_key(k), Bytes::from(vec![0x5A; 100]))?;
    }
    db.db().flush()?;
    let cfg = adcache_workload::AdversaryConfig::new(kind, keys, seed ^ 0xA11);
    let plan = adcache_workload::AttackPlan::build(&cfg);
    let mut gen = adcache_workload::AdversaryGen::new(cfg, plan);
    for _ in 0..60_000u64 {
        match gen.next_op() {
            adcache_workload::Operation::Get { key } => {
                let _ = db.get(&key);
            }
            adcache_workload::Operation::Put { key, value } => db.put(key, value)?,
            adcache_workload::Operation::Delete { key } => db.delete(key)?,
            adcache_workload::Operation::Scan { from, len } => {
                let _ = db.scan(&from, len);
            }
        }
    }
    Ok(db.sketch_resets())
}

/// The controller-layer sub-drill: a reward-poisoning window (estimated
/// hit rate collapsing to zero) against the adversarial guard, on vs
/// off. Returns `(reward_on, reward_off, adversarial_windows_on)`.
fn adv_controller_drill() -> (f64, f64, u64) {
    let run = |guarded: bool| {
        let mut cfg = ControllerConfig {
            hidden: 16,
            alpha: 0.5,
            ..Default::default()
        };
        cfg.adversarial_guard = guarded;
        let mut c = Controller::new(cfg);
        c.set_obs(Obs::enabled());
        for _ in 0..5 {
            c.end_of_window(&adcache_core::WindowSummary {
                points: 1000,
                io_miss: 100,
                entries_per_block: 4.0,
                levels: 3,
                r0_max: 8,
                runs: 5,
                ..Default::default()
            });
        }
        c.end_of_window(&adcache_core::WindowSummary {
            points: 1000,
            io_miss: 1000,
            entries_per_block: 4.0,
            levels: 3,
            r0_max: 8,
            runs: 5,
            ..Default::default()
        });
        let reward = c.history().last().map(|r| r.reward).unwrap_or(0.0);
        (reward, c.adversarial_windows())
    };
    let (on, windows) = run(true);
    let (off, _) = run(false);
    (on, off, windows)
}

/// `adcache advcheck`: the adversarial-robustness drill. Every attack
/// kind runs against a fresh in-process engine + TCP server twice —
/// defenses off, then on — and the legit traffic's hit-rate loss and p99
/// inflation are compared side by side. `--assert-defenses` exits
/// nonzero unless defenses-on degrades strictly less on both axes.
fn cmd_advcheck(argv: &[String]) -> Result<bool, Box<dyn std::error::Error>> {
    let usage = "usage: adcache advcheck [--ops N] [--keys N] [--seed S] [--kind KIND|all] \
                 [--assert-defenses]";
    let mut ops = 4_000u64;
    let mut keys = 4_000u64;
    let mut seed = 1u64;
    let mut kinds: Vec<adcache_workload::AdversaryKind> =
        adcache_workload::AdversaryKind::ALL.to_vec();
    let mut assert_defenses = false;
    let mut i = 2;
    let next = |argv: &[String], i: &mut usize, what: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i).cloned().ok_or(format!("{what} needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--ops" => ops = next(argv, &mut i, "--ops")?.parse()?,
            "--keys" => keys = next(argv, &mut i, "--keys")?.parse()?,
            "--seed" => seed = next(argv, &mut i, "--seed")?.parse()?,
            "--kind" => {
                let name = next(argv, &mut i, "--kind")?;
                if name != "all" {
                    kinds = vec![adcache_workload::AdversaryKind::parse(&name)
                        .ok_or(format!("unknown adversary kind {name}\n{usage}"))?];
                }
            }
            "--assert-defenses" => assert_defenses = true,
            other => return Err(format!("unknown advcheck flag {other}\n{usage}").into()),
        }
        i += 1;
    }

    println!(
        "advcheck: {} ops/phase over {} keys, seed {}\n\
         {:<17} {:>4}  {:>9} {:>9} {:>9} {:>9}  {:>10} {:>7}",
        ops,
        keys,
        seed,
        "attack",
        "def",
        "hit-drop",
        "base-p99",
        "atk-p99",
        "p99-infl",
        "quota-errs",
        "resets"
    );
    let mut all_bounded = true;
    for kind in kinds {
        let off = adv_drill(kind, false, ops, keys, seed)?;
        let on = adv_drill(kind, true, ops, keys, seed)?;
        let base = (off.base_p99 + on.base_p99) as f64 / 2.0;
        for (label, o) in [("off", &off), ("on", &on)] {
            println!(
                "{:<17} {:>4}  {:>8.1}pp {:>7.2}ms {:>7.2}ms {:>8.2}x  {:>10} {:>7}",
                kind.name(),
                label,
                o.hit_drop() * 100.0,
                o.base_p99 as f64 / 1e6,
                o.attack_p99 as f64 / 1e6,
                o.p99_inflation(base),
                o.quota_errors,
                o.sketch_resets
            );
        }
        // p99 containment must be strict (over the pooled baseline this
        // is exactly "defended legit p99 under attack is lower").
        // Hit-drop gets a 1pp allowance: both sides are often near zero,
        // and a guard re-salt deliberately erases legit frequency state
        // along with the attacker's, which costs a transient fraction of
        // a point while admission re-learns — the price of the defense,
        // not unbounded degradation.
        let bounded = on.hit_drop() <= off.hit_drop() + 0.01
            && on.p99_inflation(base) < off.p99_inflation(base);
        all_bounded &= bounded;
        println!(
            "{:<17} {:>4}  degradation bounded: {}",
            kind.name(),
            "=>",
            if bounded { "yes" } else { "NO" }
        );
    }

    let (reward_on, reward_off, windows) = adv_controller_drill();
    println!(
        "controller        reward poisoning: guarded {reward_on:+.3} vs raw {reward_off:+.3} \
         ({windows} adversarial windows flagged)"
    );
    let controller_ok = reward_on.abs() < reward_off.abs() && windows > 0;
    all_bounded &= controller_ok;

    if assert_defenses && !all_bounded {
        eprintln!("advcheck: defenses failed to bound degradation");
        return Ok(false);
    }
    Ok(true)
}

/// One defense-mode measurement from the tenantcheck drill: the quiet
/// tenants' experience before (A), during (B), and after (C) a noisy
/// neighbor on tenant 1.
struct TenantOutcome {
    /// Engine-wide hit rate in the all-legit baseline phase (A).
    base_hit: f64,
    /// Quiet-tenant (tenants >= 2) p99 in phase A, ns.
    base_p99: u64,
    /// Quiet-tenant p99 while tenant 1 runs its attack (phase B), ns.
    noisy_p99: u64,
    /// Engine-wide hit rate after the attack (phase C): how much of the
    /// quiet tenants' warm state the neighbor managed to evict.
    post_hit: f64,
    /// Tenant-quota rejections the noisy tenant drew during the drill.
    throttled: u64,
    /// The share split in force when the drill ended.
    shares: Vec<(u32, f64)>,
}

impl TenantOutcome {
    /// Hit-rate loss the noisy neighbor inflicted on the cache.
    fn hit_drop(&self) -> f64 {
        (self.base_hit - self.post_hit).max(0.0)
    }

    /// Quiet-tenant p99 inflation under the noisy phase, over a pooled
    /// baseline (see [`AdvOutcome::p99_inflation`] for why it is pooled).
    fn p99_inflation(&self, base: f64) -> f64 {
        self.noisy_p99 as f64 / base.max(1.0)
    }
}

/// Merged quiet-tenant (id >= 2) latency p99 from a load report, ns.
fn quiet_p99(report: &adcache_server::LoadReport) -> u64 {
    let mut h = adcache_obs::Histogram::new();
    for (tenant, lat) in &report.latency_by_tenant {
        if *tenant >= 2 {
            h.merge(lat);
        }
    }
    h.quantile(0.99)
}

/// Runs the noisy-neighbor drill against a fresh in-process engine +
/// server: 1 noisy tenant + `tenants - 1` quiet ones, each tenant two
/// connections. Defenses on = partitioned per-tenant caches, learned
/// share arbitration, and aggregated per-tenant quotas; off = tenants
/// are labels on one shared cache with no tenant quota.
fn tenant_drill(
    defenses: bool,
    ops: u64,
    keys: u64,
    seed: u64,
    tenants: u32,
) -> Result<TenantOutcome, Box<dyn std::error::Error>> {
    let mut engine = EngineConfig::new(Strategy::AdCache, 256 << 10);
    engine.expected_keys = keys as usize;
    engine.tenant_partitioning = defenses;
    let db = CachedDb::new(Options::small(), Arc::new(MemStorage::new()), engine)?;
    db.set_obs(Obs::enabled());
    // No controller runs inside the drill; pin a small admission
    // threshold so frequency admission actually gates the KV cache (new
    // tenant partitions inherit it at registration).
    db.apply_decision(&adcache_core::CacheDecision {
        point_threshold: 0.0005,
        ..Default::default()
    });
    for k in 0..keys {
        db.load(render_key(k), Bytes::from(vec![0x5A; 100]))?;
    }
    db.db().flush()?;
    let db = Arc::new(db);
    let server = adcache_server::Server::start(
        db.clone(),
        adcache_server::ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            // Same sizing logic as the advcheck quota (see `adv_drill`):
            // each tenant runs 2 connections at 1000 ops/s, avg token
            // cost ~2.4 under the 70/10/0/20 mix ≈ 4900 tokens/s per
            // tenant, so 6000/s leaves legit headroom while scan floods
            // (257 tokens/op) overrun immediately. Aggregated per
            // tenant: both of a tenant's connections drain one bucket.
            tenant_quota_ops: if defenses { 6_000 } else { 0 },
            tenant_quota_burst: if defenses { 400 } else { 0 },
            ..Default::default()
        },
    )?;
    let addr = server.local_addr().to_string();
    let conns = 2 * tenants as usize;
    let load = |adversary: Option<adcache_workload::AdversaryConfig>| {
        adcache_server::LoadgenConfig {
            addr: addr.clone(),
            connections: conns,
            ops,
            mix: Mix::new(70.0, 10.0, 0.0, 20.0),
            workload: WorkloadConfig {
                num_keys: keys,
                value_size: 100,
                seed,
                ..Default::default()
            },
            // 1000 ops/s per connection: open loop so quiet-tenant p99
            // compares like for like across phases and per-tenant token
            // demand is deterministic.
            target_qps: Some(1_000 * conns as u64),
            batch: 0,
            // With equal skew, tenant 1 owns exactly the first
            // `conns / tenants` connections — the same prefix the
            // adversary fraction claims, so the noisy tenant and the
            // attack connections coincide.
            adversary_frac: if adversary.is_some() {
                1.0 / tenants as f64
            } else {
                0.0
            },
            adversary,
            tenants,
            tenant_skew: (1, 1),
        }
    };

    // Share-arbitration ticker, as `adcache serve` runs it (fast-forward
    // cadence so the split re-learns within drill timescales).
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let arbiter = {
        let db = db.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                std::thread::sleep(std::time::Duration::from_millis(100));
                db.rebalance_tenants();
            }
        })
    };

    let run = |cfg: &adcache_server::LoadgenConfig| adcache_server::loadgen::run(cfg);
    // Warm the caches so the phase-A baseline is a steady state.
    run(&load(None))?;

    let s0 = db.stats_report();
    let a = run(&load(None))?;
    let s1 = db.stats_report();

    let attack = adcache_workload::AdversaryConfig::new(
        adcache_workload::AdversaryKind::ScanFlood,
        keys,
        seed ^ 0xA11,
    );
    let b = run(&load(Some(attack)))?;

    let s2 = db.stats_report();
    let c = run(&load(None))?;
    let s3 = db.stats_report();

    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let _ = arbiter.join();
    let shares = db
        .tenant_reports()
        .iter()
        .map(|r| (r.tenant, r.share))
        .collect();
    let report = server.shutdown();
    if a.protocol_errors + b.protocol_errors + c.protocol_errors > 0 {
        return Err("protocol errors during drill — isolation must stay frame-clean".into());
    }
    Ok(TenantOutcome {
        base_hit: adv_hit_rate(&s0, &s1),
        base_p99: quiet_p99(&a),
        noisy_p99: quiet_p99(&b),
        post_hit: adv_hit_rate(&s2, &s3),
        throttled: report.tenant_throttled,
        shares,
    })
}

/// `adcache tenantcheck`: the noisy-neighbor isolation drill. One hot
/// tenant attacks while quiet tenants run a paced legit mix; the drill
/// runs twice — tenant defenses off, then on — and compares the quiet
/// tenants' p99 inflation and post-attack hit-rate loss side by side.
/// `--assert-defenses` exits nonzero unless defenses-on bounds both axes
/// and actually throttled the neighbor.
fn cmd_tenantcheck(argv: &[String]) -> Result<bool, Box<dyn std::error::Error>> {
    let usage = "usage: adcache tenantcheck [--ops N] [--keys N] [--seed S] [--tenants N] \
                 [--assert-defenses]";
    let mut ops = 16_000u64;
    let mut keys = 4_000u64;
    let mut seed = 1u64;
    let mut tenants = 4u32;
    let mut assert_defenses = false;
    let mut i = 2;
    let next = |argv: &[String], i: &mut usize, what: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i).cloned().ok_or(format!("{what} needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--ops" => ops = next(argv, &mut i, "--ops")?.parse()?,
            "--keys" => keys = next(argv, &mut i, "--keys")?.parse()?,
            "--seed" => seed = next(argv, &mut i, "--seed")?.parse()?,
            "--tenants" => tenants = next(argv, &mut i, "--tenants")?.parse()?,
            "--assert-defenses" => assert_defenses = true,
            other => return Err(format!("unknown tenantcheck flag {other}\n{usage}").into()),
        }
        i += 1;
    }
    if tenants < 2 {
        return Err("tenantcheck needs --tenants >= 2 (one noisy, one quiet)".into());
    }

    println!(
        "tenantcheck: 1 noisy + {} quiet tenants, {} ops/phase over {} keys, seed {}\n\
         {:<10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        tenants - 1,
        ops,
        keys,
        seed,
        "defenses",
        "base-hit",
        "post-hit",
        "hit-drop",
        "base-p99",
        "noisy-p99",
        "p99-infl"
    );
    let off = tenant_drill(false, ops, keys, seed, tenants)?;
    let on = tenant_drill(true, ops, keys, seed, tenants)?;
    let base = (off.base_p99 + on.base_p99) as f64 / 2.0;
    for (label, o) in [("off", &off), ("on", &on)] {
        println!(
            "{:<10} {:>8.1}% {:>8.1}% {:>8.1}pp {:>7.2}ms {:>7.2}ms {:>8.2}x",
            label,
            o.base_hit * 100.0,
            o.post_hit * 100.0,
            o.hit_drop() * 100.0,
            o.base_p99 as f64 / 1e6,
            o.noisy_p99 as f64 / 1e6,
            o.p99_inflation(base)
        );
    }
    println!(
        "defended: neighbor throttled {} times; final shares {}",
        on.throttled,
        on.shares
            .iter()
            .map(|(t, s)| format!("t{t}={s:.2}"))
            .collect::<Vec<_>>()
            .join(" ")
    );

    // Bounded means: the quiet tenants' p99 inflation is strictly lower
    // with defenses on, the hit-rate loss is no worse (1pp allowance —
    // both sides are often near zero and partitions re-learn admission
    // after resizes), and the quota actually fired at the neighbor.
    let bounded = on.p99_inflation(base) < off.p99_inflation(base)
        && on.hit_drop() <= off.hit_drop() + 0.01
        && on.throttled > 0;
    println!(
        "tenantcheck: quiet-tenant degradation bounded: {}",
        if bounded { "yes" } else { "NO" }
    );
    if assert_defenses && !bounded {
        eprintln!("tenantcheck: defenses failed to bound the noisy neighbor");
        return Ok(false);
    }
    Ok(true)
}

/// Deterministic splitmix64 step for the fault-drill harness RNG.
fn fc_mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Outcome counters for [`cmd_faultcheck`].
#[derive(Default)]
struct FaultCheckReport {
    crashes_fired: u64,
    faults_injected: u64,
    unsynced_files_dropped: u64,
    lost_acked_writes: u64,
    failed_opens: u64,
    unstable_reopens: u64,
    orphan_leftovers: u64,
    id_collisions: u64,
    nonfinite_updates: u64,
}

impl FaultCheckReport {
    /// Whether every guarantee held.
    fn ok(&self) -> bool {
        self.lost_acked_writes == 0
            && self.failed_opens == 0
            && self.unstable_reopens == 0
            && self.orphan_leftovers == 0
            && self.id_collisions == 0
            && self.nonfinite_updates == 0
    }
}

/// One crash-recover-verify cycle, entirely in memory: a durable tree
/// over write-back-modeling fault storage (SSTs) and a simulated
/// filesystem (WAL + manifest) takes writes under a fault storm with one
/// armed crash point; the process "crashes" — the tree drops AND every
/// completed-but-unsynced write is torn out of both device models — then
/// the store reopens and every key is checked against what the configured
/// sync policy actually promised.
fn faultcheck_cycle(
    cycle: u64,
    seed: u64,
    sync: adcache_lsm::SyncPolicy,
    misplace: Option<adcache_lsm::FsyncSite>,
    report: &mut FaultCheckReport,
) -> Result<(), Box<dyn std::error::Error>> {
    use adcache_lsm::{
        CrashController, CrashPoint, DirectProvider, FaultPlan, FaultStorage, LsmTree, SimFs,
        Storage, SyncPolicy,
    };
    use std::sync::atomic::Ordering;

    let cseed = fc_mix(seed ^ cycle.wrapping_mul(0x517C_C1B7_2722_0A95));
    let fs = Arc::new(SimFs::new());
    let storage = Arc::new(FaultStorage::new(
        Arc::new(MemStorage::new()),
        cseed,
        FaultPlan::none(),
    ));
    storage.enable_write_back();
    let crash = CrashController::new();
    // Tiny memtable + padded values so a 200-op cycle crosses several
    // flush and compaction seams — that is where the crash points live.
    let mut opts = Options::small();
    opts.memtable_size = 2 << 10;
    opts.sync = sync;
    opts.misplaced_fsync = misplace;
    let meta_dir = std::path::PathBuf::from("/faultcheck/meta");
    let key_space = 48u64;
    let kb = |k: u64| Bytes::from(format!("k{k:04}"));
    let pad = "x".repeat(48);
    // Per-key write history, in order: (value-or-tombstone, acked?,
    // global sequence number). A failed op may still have reached the WAL
    // before the injected error, so unacked writes are *candidates*, not
    // forbidden states.
    let mut history: Vec<Vec<(Option<Bytes>, bool, u64)>> = vec![Vec::new(); key_space as usize];
    let mut seq = 0u64;
    // Highest sequence number covered by a fully *successful* flush — the
    // `on_flush` policy's durability floor. (A flush that errored past the
    // counter bump may have synced nothing, so only acked flushes count.)
    let mut flushed_seq = 0u64;
    let mut rng = cseed | 1;
    let mut next = move || {
        rng = fc_mix(rng);
        rng
    };
    {
        let db = LsmTree::with_durability_fs(opts.clone(), storage.clone(), &meta_dir, fs.clone())?;
        db.set_crash_controller(crash.clone());
        let mut flushes_seen = 0u64;
        // Baseline data lands cleanly so the faulted phase reads and
        // compacts real tables.
        for k in 0..key_space {
            let v = Bytes::from(format!("base-{cycle}-{k}-{pad}"));
            seq += 1;
            let acked = db.put(kb(k), v.clone()).is_ok();
            history[k as usize].push((Some(v), acked, seq));
            if acked {
                let f = db.stats().flushes.load(Ordering::Relaxed);
                if f > flushes_seen {
                    flushes_seen = f;
                    flushed_seq = seq;
                }
            }
        }
        if db.flush().is_ok() {
            flushes_seen = db.stats().flushes.load(Ordering::Relaxed);
            flushed_seq = seq;
        }

        // Storm on, one crash point armed somewhere in the cycle.
        storage.set_plan(FaultPlan::storm());
        let points = CrashPoint::all();
        crash.arm(
            points[(next() % points.len() as u64) as usize],
            next() % 3 + 1,
        );
        for i in 0..200u64 {
            let k = next() % key_space;
            match next() % 100 {
                0..=59 => {
                    let v = Bytes::from(format!("c{cycle}-i{i}-{pad}"));
                    seq += 1;
                    let acked = db.put(kb(k), v.clone()).is_ok();
                    history[k as usize].push((Some(v), acked, seq));
                    if acked {
                        let f = db.stats().flushes.load(Ordering::Relaxed);
                        if f > flushes_seen {
                            flushes_seen = f;
                            flushed_seq = seq;
                        }
                    }
                }
                60..=69 => {
                    seq += 1;
                    let acked = db.delete(kb(k)).is_ok();
                    history[k as usize].push((None, acked, seq));
                    if acked {
                        let f = db.stats().flushes.load(Ordering::Relaxed);
                        if f > flushes_seen {
                            flushes_seen = f;
                            flushed_seq = seq;
                        }
                    }
                }
                70..=74 => {
                    let _ = db.maybe_compact_once();
                }
                _ => {
                    let _ = db.get(&kb(k), &DirectProvider);
                }
            }
            if crash.fired() {
                break;
            }
        }
        if crash.fired() {
            report.crashes_fired += 1;
        }
        report.faults_injected += storage.fault_stats().total();
        // The tree drops here: the simulated crash...
    }

    // ...and the crash also tears every completed-but-unsynced write out
    // of both device models: SST files from the storage write-back cache,
    // WAL/manifest bytes and directory entries from the simulated fs.
    storage.set_active(false);
    let (sst_files, _) = storage.crash_drop_unsynced(fc_mix(cseed ^ 0xA5A5));
    let meta_loss = fs.crash(fc_mix(cseed ^ 0x5A5A));
    report.unsynced_files_dropped += sst_files + meta_loss.files;

    // Recovery runs against a quiet device. "Acked" now means "acked
    // under the configured sync policy": with `always` every acked write
    // must survive; with `on_flush` every acked write up to the last
    // successful flush must; with `never` nothing is promised beyond
    // serving only values that were actually written.
    let reopen =
        || LsmTree::with_durability_fs(opts.clone(), storage.clone(), &meta_dir, fs.clone());
    let db = match reopen() {
        Ok(db) => db,
        Err(e) => {
            report.failed_opens += 1;
            eprintln!("cycle {cycle}: reopen failed: {e}");
            return Ok(());
        }
    };
    let mut state = Vec::with_capacity(key_space as usize);
    for k in 0..key_space {
        let got = db.get(&kb(k), &DirectProvider)?;
        let h = &history[k as usize];
        let strong = match sync {
            SyncPolicy::Always => h.iter().rposition(|(_, acked, _)| *acked),
            SyncPolicy::OnFlush => h
                .iter()
                .rposition(|(_, acked, s)| *acked && *s <= flushed_seq),
            SyncPolicy::Never => None,
        };
        let matches = |want: &Option<Bytes>| got.as_deref() == want.as_deref();
        let ok = match strong {
            // The recovered value must be the newest sync-covered acked
            // write or any candidate issued after it — never older.
            Some(idx) => h[idx..].iter().any(|(v, _, _)| matches(v)),
            None => got.is_none() || h.iter().any(|(v, _, _)| matches(v)),
        };
        if !ok {
            report.lost_acked_writes += 1;
            eprintln!(
                "cycle {cycle}: key k{k:04} recovered {:?}, not justified under sync={}",
                got.as_ref()
                    .map(|v| String::from_utf8_lossy(v).into_owned()),
                sync.name(),
            );
        }
        state.push(got);
    }
    // The recovery sweep must leave no table on the device that the
    // recovered version does not reference.
    let live: usize = db.level_summary().iter().map(|(_, files, _)| files).sum();
    let on_device = storage.table_count();
    if on_device > live {
        report.orphan_leftovers += (on_device - live) as u64;
        eprintln!("cycle {cycle}: {on_device} tables on device, only {live} referenced");
    }
    drop(db);

    // Recovery must be idempotent: a second reopen (same quiet device)
    // yields the identical state — nothing is applied twice or re-lost.
    let db = match reopen() {
        Ok(db) => db,
        Err(e) => {
            report.failed_opens += 1;
            eprintln!("cycle {cycle}: second reopen failed: {e}");
            return Ok(());
        }
    };
    for k in 0..key_space {
        if db.get(&kb(k), &DirectProvider)? != state[k as usize] {
            report.unstable_reopens += 1;
            eprintln!("cycle {cycle}: key k{k:04} changed between reopens");
        }
    }
    // The recovered store must still be writable: fresh keys flushed to
    // new tables. A file-id collision with a leftover orphan (the bug the
    // recovery sweep exists to prevent) surfaces here as a write error.
    for j in 0..key_space {
        let v = Bytes::from(format!("post-{cycle}-{j}-{pad}"));
        if db.put(Bytes::from(format!("z{j:04}")), v).is_err() {
            report.id_collisions += 1;
        }
    }
    if db.flush().is_err() {
        report.id_collisions += 1;
        eprintln!("cycle {cycle}: post-recovery flush failed (file-id collision?)");
    }
    drop(db);
    Ok(())
}

/// The striped variant of [`faultcheck_cycle`]: a [`StripedDb`] with
/// background maintenance on, so flushes and compactions run on worker
/// threads and the armed crash point can fire *inside a background job*
/// (which poisons that stripe, exactly like a process kill the foreground
/// cannot observe). The `on_flush` durability floor comes from explicit
/// synchronous `flush()` calls — background flush completions are
/// asynchronous and promise nothing about when they covered a given ack.
fn faultcheck_cycle_striped(
    cycle: u64,
    seed: u64,
    sync: adcache_lsm::SyncPolicy,
    misplace: Option<adcache_lsm::FsyncSite>,
    stripes: usize,
    report: &mut FaultCheckReport,
) -> Result<(), Box<dyn std::error::Error>> {
    use adcache_lsm::{
        CrashController, CrashPoint, DirectProvider, FaultPlan, FaultStorage, SimFs, Storage,
        StripedDb, SyncPolicy,
    };

    let cseed = fc_mix(seed ^ cycle.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let fs = Arc::new(SimFs::new());
    let storage = Arc::new(FaultStorage::new(
        Arc::new(MemStorage::new()),
        cseed,
        FaultPlan::none(),
    ));
    storage.enable_write_back();
    let crash = CrashController::new();
    let mut opts = Options::small();
    opts.memtable_size = 2 << 10;
    opts.sync = sync;
    opts.misplaced_fsync = misplace;
    opts.stripes = stripes;
    opts.background_maintenance = true;
    let meta_dir = std::path::PathBuf::from("/faultcheck/striped");
    let key_space = 64u64;
    let kb = |k: u64| Bytes::from(format!("k{k:04}"));
    let pad = "x".repeat(48);
    let mut history: Vec<Vec<(Option<Bytes>, bool, u64)>> = vec![Vec::new(); key_space as usize];
    let mut seq = 0u64;
    let mut flushed_seq = 0u64;
    let mut rng = cseed | 1;
    let mut next = move || {
        rng = fc_mix(rng);
        rng
    };
    {
        let db =
            StripedDb::with_durability_fs(opts.clone(), storage.clone(), &meta_dir, fs.clone())?;
        db.set_crash_controller(crash.clone());
        for k in 0..key_space {
            let v = Bytes::from(format!("base-{cycle}-{k}-{pad}"));
            seq += 1;
            let acked = db.put(kb(k), v.clone()).is_ok();
            history[k as usize].push((Some(v), acked, seq));
        }
        if db.flush().is_ok() {
            flushed_seq = seq;
        }

        storage.set_plan(FaultPlan::storm());
        let points = CrashPoint::all();
        crash.arm(
            points[(next() % points.len() as u64) as usize],
            next() % 3 + 1,
        );
        for i in 0..300u64 {
            let k = next() % key_space;
            match next() % 100 {
                0..=54 => {
                    let v = Bytes::from(format!("c{cycle}-i{i}-{pad}"));
                    seq += 1;
                    let acked = db.put(kb(k), v.clone()).is_ok();
                    history[k as usize].push((Some(v), acked, seq));
                }
                55..=64 => {
                    seq += 1;
                    let acked = db.delete(kb(k)).is_ok();
                    history[k as usize].push((None, acked, seq));
                }
                65..=69 => {
                    // Explicit synchronous flush: the only event that may
                    // raise the on_flush durability floor in this drill.
                    if db.flush().is_ok() {
                        flushed_seq = seq;
                    }
                }
                70..=74 => {
                    let _ = db.maybe_compact_once();
                }
                75..=79 => {
                    let _ = db.scan(&kb(k), 8, &DirectProvider);
                }
                _ => {
                    let _ = db.get(&kb(k), &DirectProvider);
                }
            }
            if crash.fired() {
                break;
            }
        }
        // Give in-flight background jobs a moment to hit the armed point.
        if !crash.fired() {
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        if crash.fired() {
            report.crashes_fired += 1;
        }
        report.faults_injected += storage.fault_stats().total();
        // Dropping the StripedDb joins the worker pool — the "process"
        // is fully dead before the device models crash below.
    }

    storage.set_active(false);
    let (sst_files, _) = storage.crash_drop_unsynced(fc_mix(cseed ^ 0xA5A5));
    let meta_loss = fs.crash(fc_mix(cseed ^ 0x5A5A));
    report.unsynced_files_dropped += sst_files + meta_loss.files;

    // Reopen with background maintenance off: recovery is identical (the
    // option only affects the write path), and the verification reads are
    // deterministic.
    let mut verify_opts = opts.clone();
    verify_opts.background_maintenance = false;
    let reopen = || {
        StripedDb::with_durability_fs(verify_opts.clone(), storage.clone(), &meta_dir, fs.clone())
    };
    let db = match reopen() {
        Ok(db) => db,
        Err(e) => {
            report.failed_opens += 1;
            eprintln!("striped cycle {cycle}: reopen failed: {e}");
            return Ok(());
        }
    };
    let mut state = Vec::with_capacity(key_space as usize);
    for k in 0..key_space {
        let got = db.get(&kb(k), &DirectProvider)?;
        let h = &history[k as usize];
        let strong = match sync {
            SyncPolicy::Always => h.iter().rposition(|(_, acked, _)| *acked),
            SyncPolicy::OnFlush => h
                .iter()
                .rposition(|(_, acked, s)| *acked && *s <= flushed_seq),
            SyncPolicy::Never => None,
        };
        let matches = |want: &Option<Bytes>| got.as_deref() == want.as_deref();
        let ok = match strong {
            Some(idx) => h[idx..].iter().any(|(v, _, _)| matches(v)),
            None => got.is_none() || h.iter().any(|(v, _, _)| matches(v)),
        };
        if !ok {
            report.lost_acked_writes += 1;
            eprintln!(
                "striped cycle {cycle}: key k{k:04} recovered {:?}, not justified under sync={}",
                got.as_ref()
                    .map(|v| String::from_utf8_lossy(v).into_owned()),
                sync.name(),
            );
        }
        state.push(got);
    }
    // Per-stripe orphan sweeps must jointly leave no unreferenced table.
    let live: usize = db.level_summary().iter().map(|(_, files, _)| files).sum();
    let on_device = storage.table_count();
    if on_device > live {
        report.orphan_leftovers += (on_device - live) as u64;
        eprintln!("striped cycle {cycle}: {on_device} tables on device, only {live} referenced");
    }
    drop(db);

    let db = match reopen() {
        Ok(db) => db,
        Err(e) => {
            report.failed_opens += 1;
            eprintln!("striped cycle {cycle}: second reopen failed: {e}");
            return Ok(());
        }
    };
    for k in 0..key_space {
        if db.get(&kb(k), &DirectProvider)? != state[k as usize] {
            report.unstable_reopens += 1;
            eprintln!("striped cycle {cycle}: key k{k:04} changed between reopens");
        }
    }
    // Post-recovery writability across every stripe (stride-allocated file
    // ids must not collide with any leftover).
    for j in 0..key_space {
        let v = Bytes::from(format!("post-{cycle}-{j}-{pad}"));
        if db.put(Bytes::from(format!("z{j:04}")), v).is_err() {
            report.id_collisions += 1;
        }
    }
    if db.flush().is_err() {
        report.id_collisions += 1;
        eprintln!("striped cycle {cycle}: post-recovery flush failed (file-id collision?)");
    }
    drop(db);
    Ok(())
}

/// `adcache faultcheck` — runs N seeded crash-recover-verify cycles plus
/// an RL storm drill; exits nonzero on any violated guarantee.
fn cmd_faultcheck(
    cycles: u64,
    seed: u64,
    sync: adcache_lsm::SyncPolicy,
    misplace: Option<adcache_lsm::FsyncSite>,
    stripes: usize,
) -> Result<bool, Box<dyn std::error::Error>> {
    use adcache_core::{prepare_db_with_storage, run_schedule_on, RunConfig};
    use adcache_lsm::{FaultPlan, FaultStorage};
    use adcache_workload::{Phase, Schedule};

    let mut report = FaultCheckReport::default();
    for cycle in 0..cycles {
        if stripes > 1 {
            faultcheck_cycle_striped(cycle, seed, sync, misplace, stripes, &mut report)?;
        } else {
            faultcheck_cycle(cycle, seed, sync, misplace, &mut report)?;
        }
    }

    // RL guarantee: a full engine + controller run under a fault storm
    // keeps training finite (failed reads become misses, never NaN).
    let mut cfg = RunConfig::new(
        Strategy::AdCache,
        128 << 10,
        WorkloadConfig {
            num_keys: 3000,
            value_size: 64,
            seed,
            ..Default::default()
        },
    );
    cfg.controller.window = 200;
    cfg.controller.hidden = 16;
    cfg.controller.seed = seed;
    cfg.continue_on_error = true;
    let faulty = Arc::new(FaultStorage::new(
        Arc::new(MemStorage::new()),
        seed,
        FaultPlan::none(),
    ));
    let db = prepare_db_with_storage(&cfg, faulty.clone())?;
    faulty.set_plan(FaultPlan::storm());
    let schedule = Schedule {
        phases: vec![Phase {
            name: "storm".into(),
            mix: Mix::new(40.0, 25.0, 15.0, 20.0),
            ops: 4000,
        }],
    };
    let run = run_schedule_on(&cfg, &schedule, &db)?;
    report.nonfinite_updates = run.nonfinite_repairs;
    let storm_errors = run.op_errors;
    if !run.overall_hit_rate.is_finite() || !run.overall_qps.is_finite() {
        report.nonfinite_updates += 1;
    }

    println!(
        "faultcheck: {cycles} cycles (seed {seed}, sync {}{}, stripes {stripes}), {} crash points fired, {} faults injected",
        sync.name(),
        misplace.map_or(String::new(), |m| format!(", misplaced fsync at {}", m.label())),
        report.crashes_fired,
        report.faults_injected
    );
    println!(
        "  crash model: {} unsynced files dropped",
        report.unsynced_files_dropped
    );
    println!(
        "  storage:  {} lost acked writes, {} failed opens, {} unstable reopens",
        report.lost_acked_writes, report.failed_opens, report.unstable_reopens
    );
    println!(
        "  sweep:    {} orphan tables left behind, {} post-recovery id collisions",
        report.orphan_leftovers, report.id_collisions
    );
    println!(
        "  rl storm: {} op errors absorbed, {} non-finite controller updates",
        storm_errors, report.nonfinite_updates
    );
    let ok = report.ok();
    println!("{}", if ok { "PASS" } else { "FAIL" });
    Ok(ok)
}

fn handle(shell: &Shell, line: &str) -> Result<bool, Box<dyn std::error::Error>> {
    let db = &shell.db;
    let parts: Vec<&str> = line.split_whitespace().collect();
    match parts.as_slice() {
        [] => {}
        ["quit" | "exit"] => return Ok(false),
        ["help"] => print_help(),
        ["put", key, value] => {
            db.put(
                Bytes::copy_from_slice(key.as_bytes()),
                Bytes::copy_from_slice(value.as_bytes()),
            )?;
            shell.tick();
            println!("ok");
        }
        ["get", key] => {
            let got = db.get(key.as_bytes())?;
            shell.tick();
            match got {
                Some(v) => println!("{}", String::from_utf8_lossy(&v)),
                None => println!("(not found)"),
            }
        }
        ["del", key] => {
            db.delete(Bytes::copy_from_slice(key.as_bytes()))?;
            println!("ok");
        }
        ["scan", key, n] => {
            let n: usize = n.parse()?;
            let page = db.scan(key.as_bytes(), n)?;
            shell.tick();
            for (k, v) in page {
                println!(
                    "{} = {}",
                    String::from_utf8_lossy(&k),
                    String::from_utf8_lossy(&v)
                );
            }
        }
        ["fill", n] => {
            let n: u64 = n.parse()?;
            for i in 0..n {
                db.put(render_key(i), Bytes::from(format!("value-{i}")))?;
            }
            println!("loaded {n} keys (user000... series)");
        }
        ["bench", n, mix] => cmd_bench(shell, n.parse()?, mix)?,
        ["stats"] => cmd_stats(db),
        ["tune"] => {
            if db.strategy() == Strategy::AdCache {
                let s = db.snapshot();
                println!(
                    "strategy adcache; observed so far: {} gets / {} scans / {} writes",
                    s.points, s.scans, s.writes
                );
                if let (Some(bc), Some(rc)) = (db.block_cache(), db.range_cache()) {
                    let total = (bc.capacity() + rc.capacity()).max(1);
                    println!(
                        "boundary: {:.0}% block / {:.0}% range",
                        bc.capacity() as f64 * 100.0 / total as f64,
                        rc.capacity() as f64 * 100.0 / total as f64
                    );
                }
                if let Some(t) = &shell.tuner {
                    let d = t.latest_decision();
                    println!(
                        "latest decision: range_ratio {:.2}, point threshold {:.4}, a {}, b {:.2} ({} windows tuned)",
                        d.range_ratio,
                        d.point_threshold,
                        d.scan_a,
                        d.scan_b,
                        t.history().len()
                    );
                }
            } else {
                println!("strategy {} has no tunable boundary", db.strategy().name());
            }
        }
        ["flush"] => {
            db.db().flush()?;
            println!("flushed");
        }
        _ => println!("unrecognized command (try help)"),
    }
    Ok(true)
}

fn main() {
    // Non-interactive subcommand: `adcache trace DIR`.
    let argv: Vec<String> = std::env::args().collect();
    if argv.get(1).map(String::as_str) == Some("trace") {
        let Some(dir) = argv.get(2) else {
            eprintln!("usage: adcache trace DIR");
            std::process::exit(2);
        };
        if let Err(e) = cmd_trace(std::path::Path::new(dir)) {
            eprintln!("error reading trace: {e}");
            std::process::exit(1);
        }
        return;
    }
    // Non-interactive subcommand: `adcache serve [flags]`.
    if argv.get(1).map(String::as_str) == Some("serve") {
        if let Err(e) = cmd_serve(&argv) {
            eprintln!("serve error: {e}");
            std::process::exit(1);
        }
        return;
    }
    // Non-interactive subcommand: `adcache metrics [flags]`.
    if argv.get(1).map(String::as_str) == Some("metrics") {
        if let Err(e) = cmd_metrics(&argv) {
            eprintln!("metrics error: {e}");
            std::process::exit(1);
        }
        return;
    }
    // Non-interactive subcommand: `adcache top [flags]`.
    if argv.get(1).map(String::as_str) == Some("top") {
        if let Err(e) = cmd_top(&argv) {
            eprintln!("top error: {e}");
            std::process::exit(1);
        }
        return;
    }
    // Non-interactive subcommand: `adcache loadgen [flags]`.
    if argv.get(1).map(String::as_str) == Some("loadgen") {
        match cmd_loadgen(&argv) {
            Ok(true) => return,
            Ok(false) => {
                eprintln!("loadgen: protocol errors detected");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("loadgen error: {e}");
                std::process::exit(1);
            }
        }
    }
    // Non-interactive subcommand: `adcache advcheck [flags]`.
    if argv.get(1).map(String::as_str) == Some("advcheck") {
        match cmd_advcheck(&argv) {
            Ok(true) => return,
            Ok(false) => std::process::exit(1),
            Err(e) => {
                eprintln!("advcheck error: {e}");
                std::process::exit(1);
            }
        }
    }
    // Non-interactive subcommand: `adcache tenantcheck [flags]`.
    if argv.get(1).map(String::as_str) == Some("tenantcheck") {
        match cmd_tenantcheck(&argv) {
            Ok(true) => return,
            Ok(false) => std::process::exit(1),
            Err(e) => {
                eprintln!("tenantcheck error: {e}");
                std::process::exit(1);
            }
        }
    }
    // Non-interactive subcommand:
    // `adcache faultcheck [--cycles N] [--seed S] [--sync POLICY] [--misplace SITE]`.
    if argv.get(1).map(String::as_str) == Some("faultcheck") {
        let usage = "usage: adcache faultcheck [--cycles N] [--seed S] \
             [--sync always|on_flush|never] [--misplace wal_append|wal_reset|manifest_dir|sst_dir] \
             [--stripes N]";
        let mut cycles = 50u64;
        let mut seed = 42u64;
        let mut sync = adcache_lsm::SyncPolicy::Always;
        let mut misplace = None;
        let mut stripes = 1usize;
        let mut i = 2;
        while i < argv.len() {
            match argv[i].as_str() {
                "--cycles" => {
                    i += 1;
                    cycles = argv.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--cycles needs a number");
                        std::process::exit(2);
                    });
                }
                "--seed" => {
                    i += 1;
                    seed = argv.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--seed needs a number");
                        std::process::exit(2);
                    });
                }
                "--sync" => {
                    i += 1;
                    sync = argv
                        .get(i)
                        .and_then(|s| adcache_lsm::SyncPolicy::parse(s))
                        .unwrap_or_else(|| {
                            eprintln!("--sync needs one of: always, on_flush, never");
                            std::process::exit(2);
                        });
                }
                "--misplace" => {
                    i += 1;
                    misplace = Some(
                        argv.get(i)
                            .and_then(|s| adcache_lsm::FsyncSite::parse(s))
                            .unwrap_or_else(|| {
                                eprintln!(
                                    "--misplace needs one of: wal_append, wal_reset, \
                                     manifest_dir, sst_dir"
                                );
                                std::process::exit(2);
                            }),
                    );
                }
                "--stripes" => {
                    i += 1;
                    stripes = argv
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .filter(|n| *n >= 1)
                        .unwrap_or_else(|| {
                            eprintln!("--stripes needs a number >= 1");
                            std::process::exit(2);
                        });
                }
                other => {
                    eprintln!("unknown faultcheck flag {other}");
                    eprintln!("{usage}");
                    std::process::exit(2);
                }
            }
            i += 1;
        }
        match cmd_faultcheck(cycles, seed, sync, misplace, stripes) {
            Ok(true) => return,
            Ok(false) => std::process::exit(1),
            Err(e) => {
                eprintln!("faultcheck error: {e}");
                std::process::exit(1);
            }
        }
    }
    let cfg = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let db = match build_db(&cfg) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("error opening store: {e}");
            std::process::exit(1);
        }
    };
    let obs = if cfg.trace.is_some() {
        Obs::enabled()
    } else {
        Obs::disabled()
    };
    obs.emit(|| Event::RunStart {
        strategy: cfg.strategy.name().into(),
        total_cache_bytes: (cfg.cache_mb as u64) << 20,
    });
    let shell = Shell::new(db, obs);
    println!("type 'help' for commands");
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("adcache> ");
        let _ = out.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => match handle(&shell, line.trim()) {
                Ok(true) => {}
                Ok(false) => break,
                Err(e) => println!("error: {e}"),
            },
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
    }
    if let Some(dir) = &cfg.trace {
        match shell.obs.dump_to_dir(dir) {
            Ok(true) => println!(
                "trace written to {} (summarize with: adcache trace {})",
                dir.display(),
                dir.display()
            ),
            Ok(false) => {}
            Err(e) => eprintln!("error writing trace: {e}"),
        }
    }
    println!("bye");
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcache_lsm::MemStorage;

    fn mem_shell(strategy: Strategy) -> Shell {
        mem_shell_obs(strategy, Obs::disabled())
    }

    fn mem_shell_obs(strategy: Strategy, obs: Obs) -> Shell {
        let db = CachedDb::new(
            Options::small(),
            Arc::new(MemStorage::new()),
            EngineConfig::new(strategy, 1 << 20),
        )
        .unwrap();
        Shell::new(db, obs)
    }

    #[test]
    fn strategy_names_parse() {
        for s in Strategy::all() {
            assert_eq!(parse_strategy(s.name()).unwrap(), s);
        }
        let err = parse_strategy("bogus").unwrap_err();
        assert!(err.contains("rocksdb-block"), "error lists choices: {err}");
    }

    #[test]
    fn handle_put_get_scan_del() {
        let shell = mem_shell(Strategy::AdCache);
        assert!(handle(&shell, "put alpha one").unwrap());
        assert!(handle(&shell, "put beta two").unwrap());
        assert!(handle(&shell, "get alpha").unwrap());
        assert!(handle(&shell, "scan alpha 2").unwrap());
        assert!(handle(&shell, "del alpha").unwrap());
        assert!(handle(&shell, "stats").unwrap());
        assert!(handle(&shell, "tune").unwrap());
        assert!(handle(&shell, "flush").unwrap());
        assert!(handle(&shell, "").unwrap());
        assert!(handle(&shell, "nonsense command").unwrap());
        assert!(!handle(&shell, "quit").unwrap());
        // Engine state reflects the commands.
        assert!(shell.db.get(b"alpha").unwrap().is_none());
        assert_eq!(shell.db.get(b"beta").unwrap().unwrap().as_ref(), b"two");
    }

    #[test]
    fn handle_fill_and_bench_drive_the_tuner() {
        let shell = mem_shell(Strategy::AdCache);
        assert!(handle(&shell, "fill 3000").unwrap());
        assert!(handle(&shell, "bench 2500 mixed").unwrap());
        // At least two windows crossed -> the tuner saw summaries.
        assert!(shell.tuner.as_ref().unwrap().history().len() >= 2);
        // Bad mix errors but the shell keeps going.
        assert!(handle(&shell, "bench 10 bogus").is_err());
        assert!(handle(&shell, "get user00000000000000000001").unwrap());
    }

    #[test]
    fn traced_shell_dumps_and_trace_subcommand_parses_it() {
        let shell = mem_shell_obs(Strategy::AdCache, Obs::enabled());
        assert!(handle(&shell, "fill 2000").unwrap());
        assert!(handle(&shell, "bench 2500 mixed").unwrap());
        let dir = std::env::temp_dir().join(format!("adcache-cli-trace-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        assert!(shell.obs.dump_to_dir(&dir).unwrap());
        let trace = std::fs::read_to_string(dir.join("trace.jsonl")).unwrap();
        assert!(trace.contains("\"Admission\""));
        // The summarizer must parse its own dump end to end.
        cmd_trace(&dir).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn faultcheck_cycles_hold_guarantees_under_every_sync_policy() {
        for sync in adcache_lsm::SyncPolicy::all() {
            let mut report = FaultCheckReport::default();
            for cycle in 0..6 {
                faultcheck_cycle(cycle, 7, sync, None, &mut report).unwrap();
            }
            assert!(
                report.ok(),
                "guarantees violated under sync={}: {} lost acked, {} failed opens, \
                 {} unstable, {} orphans, {} collisions",
                sync.name(),
                report.lost_acked_writes,
                report.failed_opens,
                report.unstable_reopens,
                report.orphan_leftovers,
                report.id_collisions,
            );
            assert!(report.faults_injected > 0, "the storm plan must bite");
            assert!(report.crashes_fired > 0, "crash points must fire");
        }
    }

    #[test]
    fn striped_faultcheck_holds_guarantees_with_background_crash_points() {
        // The striped drill runs with background maintenance on, so the
        // armed crash point fires inside a pool worker (poisoning that
        // stripe) rather than on the writer's own stack.
        for sync in adcache_lsm::SyncPolicy::all() {
            let mut report = FaultCheckReport::default();
            for cycle in 0..6 {
                faultcheck_cycle_striped(cycle, 7, sync, None, 8, &mut report).unwrap();
            }
            assert!(
                report.ok(),
                "striped guarantees violated under sync={}: {} lost acked, {} failed opens, \
                 {} unstable, {} orphans, {} collisions",
                sync.name(),
                report.lost_acked_writes,
                report.failed_opens,
                report.unstable_reopens,
                report.orphan_leftovers,
                report.id_collisions,
            );
            assert!(report.faults_injected > 0, "the storm plan must bite");
            assert!(report.crashes_fired > 0, "crash points must fire");
        }
    }

    #[test]
    fn faultcheck_goes_red_when_the_manifest_dir_fsync_is_misplaced() {
        use adcache_lsm::{FsyncSite, SyncPolicy};
        // The guarded hook omits exactly one fsync (the directory sync
        // after the manifest rename). Under `always` that single hole
        // must make the drill fail — proving it can detect a real
        // regression in fsync placement, not just pass vacuously.
        let mut report = FaultCheckReport::default();
        for cycle in 0..6 {
            faultcheck_cycle(
                cycle,
                7,
                SyncPolicy::Always,
                Some(FsyncSite::ManifestDir),
                &mut report,
            )
            .unwrap();
        }
        assert!(
            !report.ok(),
            "a misplaced manifest-directory fsync must lose acked writes"
        );
    }

    #[test]
    fn faultcheck_goes_red_when_the_wal_reset_sync_is_misplaced() {
        use adcache_lsm::{FsyncSite, SyncPolicy};
        // Under `on_flush` the WAL truncation must be sync-bracketed;
        // without it a stale pre-flush segment can resurrect after a
        // crash and shadow newer flushed data on replay.
        let mut report = FaultCheckReport::default();
        let mut any_red = false;
        for cycle in 0..12 {
            faultcheck_cycle(
                cycle,
                7,
                SyncPolicy::OnFlush,
                Some(FsyncSite::WalReset),
                &mut report,
            )
            .unwrap();
            any_red |= !report.ok();
        }
        assert!(
            any_red,
            "an unsynced WAL truncation must eventually resurrect stale records"
        );
    }

    #[test]
    fn baselines_have_no_tuner() {
        let shell = mem_shell(Strategy::RocksDbBlock);
        assert!(shell.tuner.is_none());
        assert!(handle(&shell, "tune").unwrap());
    }
}
