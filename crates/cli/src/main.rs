//! `adcache` — an interactive shell over an AdCache-managed LSM store.
//!
//! ```text
//! adcache [--dir PATH] [--cache-mb N] [--strategy NAME] [--mem]
//! ```
//!
//! With `--dir`, the store is durable: SSTables live under `PATH/sst`, the
//! WAL and manifest under `PATH/meta`, and a restart recovers everything.
//! With `--mem` (default when no `--dir` is given) the store is an
//! in-memory simulation with I/O counting.
//!
//! Commands: `put`, `get`, `del`, `scan`, `fill`, `bench`, `stats`,
//! `tune`, `flush`, `help`, `quit`.

use adcache_core::{
    AsyncController, CachedDb, ControllerConfig, EngineConfig, Snapshot, Strategy,
};
use adcache_lsm::{FileStorage, MemStorage, Options};
use adcache_workload::{render_key, Mix, WorkloadConfig, WorkloadGen};
use bytes::Bytes;
use std::io::{BufRead, Write};
use std::sync::Arc;

struct CliConfig {
    dir: Option<std::path::PathBuf>,
    cache_mb: usize,
    strategy: Strategy,
}

fn parse_strategy(name: &str) -> Result<Strategy, String> {
    Strategy::all()
        .into_iter()
        .find(|s| s.name() == name)
        .ok_or_else(|| {
            let names: Vec<&str> = Strategy::all().iter().map(|s| s.name()).collect();
            format!("unknown strategy {name}; choose one of {}", names.join(", "))
        })
}

fn parse_args() -> Result<CliConfig, String> {
    let mut cfg =
        CliConfig { dir: None, cache_mb: 64, strategy: Strategy::AdCache };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--dir" => {
                i += 1;
                cfg.dir = Some(args.get(i).ok_or("--dir needs a path")?.into());
            }
            "--cache-mb" => {
                i += 1;
                cfg.cache_mb = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--cache-mb needs a number")?;
            }
            "--strategy" => {
                i += 1;
                cfg.strategy = parse_strategy(args.get(i).ok_or("--strategy needs a name")?)?;
            }
            "--mem" => cfg.dir = None,
            "--help" | "-h" => {
                print_help();
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
        i += 1;
    }
    Ok(cfg)
}

fn print_help() {
    println!(
        "adcache — interactive AdCache key-value shell\n\
         \n\
         flags:\n\
         \x20 --dir PATH        durable store rooted at PATH (default: in-memory)\n\
         \x20 --cache-mb N      total cache budget in MiB (default 64)\n\
         \x20 --strategy NAME   rocksdb-block | kv-cache | range-cache |\n\
         \x20                   range-lecar | range-cacheus | adcache (default)\n\
         \n\
         commands:\n\
         \x20 put <key> <value>   insert or overwrite\n\
         \x20 get <key>           point lookup\n\
         \x20 del <key>           delete\n\
         \x20 scan <key> <n>      n entries from key\n\
         \x20 fill <n>            load n synthetic keys (user000...)\n\
         \x20 bench <n> <mix>     run n ops of mix point|scan|mixed|write\n\
         \x20 stats               cache + engine statistics\n\
         \x20 tune                current AdCache decision parameters\n\
         \x20 flush               flush the memtable\n\
         \x20 help | quit"
    );
}

fn build_db(cfg: &CliConfig) -> Result<CachedDb, Box<dyn std::error::Error>> {
    let engine = EngineConfig::new(cfg.strategy, cfg.cache_mb << 20);
    let db = match &cfg.dir {
        Some(dir) => {
            let storage = Arc::new(FileStorage::open(dir.join("sst"))?);
            println!(
                "durable store at {} (strategy {}, cache {} MiB)",
                dir.display(),
                cfg.strategy.name(),
                cfg.cache_mb
            );
            CachedDb::with_durability(Options::default(), storage, dir.join("meta"), engine)?
        }
        None => {
            println!(
                "in-memory store (strategy {}, cache {} MiB)",
                cfg.strategy.name(),
                cfg.cache_mb
            );
            CachedDb::new(Options::small(), Arc::new(MemStorage::new()), engine)?
        }
    };
    Ok(db)
}

fn cmd_stats(db: &CachedDb) {
    let snap = db.snapshot();
    println!(
        "ops: {} gets, {} scans, {} writes",
        snap.points, snap.scans, snap.writes
    );
    println!(
        "cache: {} result hits, {} kv hits, {} misses",
        snap.range_hits, snap.kv_hits, snap.cache_misses
    );
    if let Some(bc) = db.block_cache() {
        let s = bc.stats();
        println!(
            "block cache: {}/{} bytes, {} blocks, {} hits / {} misses, {} invalidated",
            bc.used(),
            bc.capacity(),
            bc.len(),
            s.hits,
            s.misses,
            s.invalidations
        );
    }
    if let Some(rc) = db.range_cache() {
        let s = rc.stats();
        println!(
            "range cache: {}/{} bytes, {} entries, {} segments, {} hits / {} misses",
            rc.used(),
            rc.capacity(),
            rc.len(),
            rc.segment_count(),
            s.hits,
            s.misses
        );
    }
    println!(
        "engine: {} SST reads (queries), {} compactions, {} flushes, {} runs / {} levels",
        db.db().query_block_reads(),
        db.db().stats().compactions(),
        db.db().stats().flushes.load(std::sync::atomic::Ordering::Relaxed),
        db.db().num_runs(),
        db.db().num_levels(),
    );
    println!("write amplification: {:.2}x", db.db().write_amplification());
    println!(
        "device: {} reads, {} writes, {:.1} ms simulated",
        db.db().storage().stats().reads(),
        db.db().storage().stats().writes(),
        db.db().storage().stats().simulated_ns() as f64 / 1e6,
    );
}

/// The shell's engine plus the background tuner: every `window` operations
/// the observed window is shipped to the tuning thread and the freshest
/// decision is applied — the online loop of the paper, driven from a REPL.
struct Shell {
    db: CachedDb,
    tuner: Option<AsyncController>,
    window: u64,
    ops_in_window: std::cell::Cell<u64>,
    win_start: std::cell::Cell<Snapshot>,
}

impl Shell {
    fn new(db: CachedDb) -> Self {
        let tuner = (db.strategy() == Strategy::AdCache).then(|| {
            AsyncController::new(ControllerConfig { window: 1000, hidden: 64, ..Default::default() })
        });
        let win_start = std::cell::Cell::new(db.snapshot());
        Shell { db, tuner, window: 1000, ops_in_window: std::cell::Cell::new(0), win_start }
    }

    fn exec(&self, op: &adcache_workload::Operation) -> adcache_lsm::Result<()> {
        adcache_core::execute(&self.db, op)?;
        self.tick();
        Ok(())
    }

    fn tick(&self) {
        let n = self.ops_in_window.get() + 1;
        self.ops_in_window.set(n);
        if n.is_multiple_of(self.window) {
            if let Some(t) = &self.tuner {
                let w = self.db.window_summary(&self.win_start.get());
                t.submit(w);
                self.db.apply_decision(&t.latest_decision());
                self.win_start.set(self.db.snapshot());
            }
        }
    }
}

fn cmd_bench(shell: &Shell, n: u64, mix_name: &str) -> Result<(), Box<dyn std::error::Error>> {
    let db = &shell.db;
    let mix = match mix_name {
        "point" => Mix::new(100.0, 0.0, 0.0, 0.0),
        "scan" => Mix::new(0.0, 80.0, 20.0, 0.0),
        "write" => Mix::new(0.0, 0.0, 0.0, 100.0),
        "mixed" => Mix::new(40.0, 25.0, 5.0, 30.0),
        other => return Err(format!("unknown mix {other} (point|scan|write|mixed)").into()),
    };
    let keys = 100_000;
    let mut gen = WorkloadGen::new(WorkloadConfig { num_keys: keys, ..Default::default() });
    let reads_before = db.db().query_block_reads();
    let start = std::time::Instant::now();
    for _ in 0..n {
        shell.exec(&gen.next_op(&mix))?;
    }
    let secs = start.elapsed().as_secs_f64();
    println!(
        "{n} ops in {:.2}s ({:.0} ops/s wall), {} SST reads",
        secs,
        n as f64 / secs,
        db.db().query_block_reads() - reads_before
    );
    Ok(())
}

fn handle(shell: &Shell, line: &str) -> Result<bool, Box<dyn std::error::Error>> {
    let db = &shell.db;
    let parts: Vec<&str> = line.split_whitespace().collect();
    match parts.as_slice() {
        [] => {}
        ["quit" | "exit"] => return Ok(false),
        ["help"] => print_help(),
        ["put", key, value] => {
            db.put(Bytes::copy_from_slice(key.as_bytes()), Bytes::copy_from_slice(value.as_bytes()))?;
            shell.tick();
            println!("ok");
        }
        ["get", key] => {
            let got = db.get(key.as_bytes())?;
            shell.tick();
            match got {
                Some(v) => println!("{}", String::from_utf8_lossy(&v)),
                None => println!("(not found)"),
            }
        }
        ["del", key] => {
            db.delete(Bytes::copy_from_slice(key.as_bytes()))?;
            println!("ok");
        }
        ["scan", key, n] => {
            let n: usize = n.parse()?;
            let page = db.scan(key.as_bytes(), n)?;
            shell.tick();
            for (k, v) in page {
                println!("{} = {}", String::from_utf8_lossy(&k), String::from_utf8_lossy(&v));
            }
        }
        ["fill", n] => {
            let n: u64 = n.parse()?;
            for i in 0..n {
                db.put(render_key(i), Bytes::from(format!("value-{i}")))?;
            }
            println!("loaded {n} keys (user000... series)");
        }
        ["bench", n, mix] => cmd_bench(shell, n.parse()?, mix)?,
        ["stats"] => cmd_stats(db),
        ["tune"] => {
            if db.strategy() == Strategy::AdCache {
                let s = db.snapshot();
                println!(
                    "strategy adcache; observed so far: {} gets / {} scans / {} writes",
                    s.points, s.scans, s.writes
                );
                if let (Some(bc), Some(rc)) = (db.block_cache(), db.range_cache()) {
                    let total = (bc.capacity() + rc.capacity()).max(1);
                    println!(
                        "boundary: {:.0}% block / {:.0}% range",
                        bc.capacity() as f64 * 100.0 / total as f64,
                        rc.capacity() as f64 * 100.0 / total as f64
                    );
                }
                if let Some(t) = &shell.tuner {
                    let d = t.latest_decision();
                    println!(
                        "latest decision: range_ratio {:.2}, point threshold {:.4}, a {}, b {:.2} ({} windows tuned)",
                        d.range_ratio,
                        d.point_threshold,
                        d.scan_a,
                        d.scan_b,
                        t.history().len()
                    );
                }
            } else {
                println!("strategy {} has no tunable boundary", db.strategy().name());
            }
        }
        ["flush"] => {
            db.db().flush()?;
            println!("flushed");
        }
        _ => println!("unrecognized command (try help)"),
    }
    Ok(true)
}

fn main() {
    let cfg = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let db = match build_db(&cfg) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("error opening store: {e}");
            std::process::exit(1);
        }
    };
    let shell = Shell::new(db);
    println!("type 'help' for commands");
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("adcache> ");
        let _ = out.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => match handle(&shell, line.trim()) {
                Ok(true) => {}
                Ok(false) => break,
                Err(e) => println!("error: {e}"),
            },
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
    }
    println!("bye");
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcache_lsm::MemStorage;

    fn mem_shell(strategy: Strategy) -> Shell {
        let db = CachedDb::new(
            Options::small(),
            Arc::new(MemStorage::new()),
            EngineConfig::new(strategy, 1 << 20),
        )
        .unwrap();
        Shell::new(db)
    }

    #[test]
    fn strategy_names_parse() {
        for s in Strategy::all() {
            assert_eq!(parse_strategy(s.name()).unwrap(), s);
        }
        let err = parse_strategy("bogus").unwrap_err();
        assert!(err.contains("rocksdb-block"), "error lists choices: {err}");
    }

    #[test]
    fn handle_put_get_scan_del() {
        let shell = mem_shell(Strategy::AdCache);
        assert!(handle(&shell, "put alpha one").unwrap());
        assert!(handle(&shell, "put beta two").unwrap());
        assert!(handle(&shell, "get alpha").unwrap());
        assert!(handle(&shell, "scan alpha 2").unwrap());
        assert!(handle(&shell, "del alpha").unwrap());
        assert!(handle(&shell, "stats").unwrap());
        assert!(handle(&shell, "tune").unwrap());
        assert!(handle(&shell, "flush").unwrap());
        assert!(handle(&shell, "").unwrap());
        assert!(handle(&shell, "nonsense command").unwrap());
        assert!(!handle(&shell, "quit").unwrap());
        // Engine state reflects the commands.
        assert!(shell.db.get(b"alpha").unwrap().is_none());
        assert_eq!(shell.db.get(b"beta").unwrap().unwrap().as_ref(), b"two");
    }

    #[test]
    fn handle_fill_and_bench_drive_the_tuner() {
        let shell = mem_shell(Strategy::AdCache);
        assert!(handle(&shell, "fill 3000").unwrap());
        assert!(handle(&shell, "bench 2500 mixed").unwrap());
        // At least two windows crossed -> the tuner saw summaries.
        assert!(shell.tuner.as_ref().unwrap().history().len() >= 2);
        // Bad mix errors but the shell keeps going.
        assert!(handle(&shell, "bench 10 bogus").is_err());
        assert!(handle(&shell, "get user00000000000000000001").unwrap());
    }

    #[test]
    fn baselines_have_no_tuner() {
        let shell = mem_shell(Strategy::RocksDbBlock);
        assert!(shell.tuner.is_none());
        assert!(handle(&shell, "tune").unwrap());
    }
}
