//! Error types for the LSM-tree engine.

use std::fmt;

/// Errors surfaced by the storage engine.
///
/// The engine never panics on malformed input or storage failures; every
/// fallible path returns [`Result`] so that callers (including the cache
/// layer) can propagate or inject failures deterministically in tests.
#[derive(Debug)]
pub enum LsmError {
    /// An operating-system I/O error from the file-backed storage.
    Io(std::io::Error),
    /// A block, index, or table footer failed to decode.
    Corruption(String),
    /// A table or block was requested that does not exist.
    NotFound(String),
    /// The engine was used in an unsupported way (e.g. out-of-order build).
    InvalidArgument(String),
    /// Fault injected by a test harness.
    Injected(String),
}

impl fmt::Display for LsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LsmError::Io(e) => write!(f, "io error: {e}"),
            LsmError::Corruption(m) => write!(f, "corruption: {m}"),
            LsmError::NotFound(m) => write!(f, "not found: {m}"),
            LsmError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            LsmError::Injected(m) => write!(f, "injected fault: {m}"),
        }
    }
}

impl std::error::Error for LsmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LsmError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for LsmError {
    fn from(e: std::io::Error) -> Self {
        LsmError::Io(e)
    }
}

/// Result alias used throughout the engine.
pub type Result<T> = std::result::Result<T, LsmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_variants() {
        let e = LsmError::Corruption("bad block".into());
        assert_eq!(e.to_string(), "corruption: bad block");
        let e = LsmError::NotFound("table 3".into());
        assert_eq!(e.to_string(), "not found: table 3");
        let e = LsmError::InvalidArgument("x".into());
        assert_eq!(e.to_string(), "invalid argument: x");
        let e = LsmError::Injected("y".into());
        assert_eq!(e.to_string(), "injected fault: y");
    }

    #[test]
    fn io_error_converts_and_sources() {
        let io = std::io::Error::other("disk on fire");
        let e: LsmError = io.into();
        assert!(e.to_string().contains("disk on fire"));
        use std::error::Error;
        assert!(e.source().is_some());
        assert!(LsmError::Corruption("x".into()).source().is_none());
    }
}
