//! Keyspace-striped engine router with a background maintenance pool.
//!
//! [`StripedDb`] shards the keyspace into N independent [`LsmTree`] stripes
//! (hash of key → stripe), each with its own memtable, WAL segment set,
//! Level-0..L stack and manifest shard, all over one shared storage device.
//! File ids never collide because each stripe allocates from its own
//! residue class (`id % stripes == stripe_index`).
//!
//! With [`Options::background_maintenance`] on, a seal hands flush and
//! compaction work to a small worker pool through a per-stripe queue: a
//! foreground `put` on stripe B never waits on stripe A's flush, and a
//! writer stalls only when its *own* stripe's sealed memtable is still in
//! flight and the active one has blown its hard budget. Group commit lives
//! one layer down in [`LsmTree`]: concurrent writers to the same stripe
//! share a single WAL push + fsync per leader round.
//!
//! Cross-stripe scans merge per-stripe range reads under an optimistic
//! write-epoch fence: writers bump the epoch before *and* after their
//! stripe commit, and the merge retries (bounded, once) when the two fence
//! reads differ. A quiescent scan is therefore a consistent snapshot; the
//! guarantee is best-effort, not airtight — a write whose commit spans the
//! *entire* merge (pre-bump before the first fence read, post-bump after
//! the second), or contention past the single retry, degrades the result
//! to per-stripe consistency instead of livelocking the scan.

use crate::compaction::CompactionListener;
use crate::db::{DbStats, LsmTree};
use crate::error::Result;
use crate::fault::CrashController;
use crate::fs::{MetaFs, RealFs};
use crate::options::Options;
use crate::sstable::BlockProvider;
use crate::storage::Storage;
use crate::types::{Entry, FileId, Key, Value};
use adcache_obs::{Gauge, Obs};
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// FNV-1a over the key — stable across runs and platforms, so a reopened
/// store routes every key to the stripe that owns its data.
fn stripe_of(key: &[u8], stripes: usize) -> usize {
    if stripes <= 1 {
        return 0;
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % stripes as u64) as usize
}

/// Shared state of the background maintenance pool: a dedup'd per-stripe
/// work queue (a stripe is enqueued at most once; workers re-enqueue it
/// themselves if more work remains). A stripe whose last round failed with
/// a non-crash error sits in `delayed` until its backoff deadline — kicks
/// during that window are absorbed, so a persistent I/O failure (disk
/// full) retries on a bounded schedule instead of spinning a worker at
/// 100% CPU and minting a partial SST per iteration.
struct PoolState {
    queue: VecDeque<usize>,
    scheduled: Vec<bool>,
    /// Backoff deadline per stripe; `Some` suppresses kicks until then.
    delayed: Vec<Option<std::time::Instant>>,
    shutdown: bool,
}

struct Pool {
    state: Mutex<PoolState>,
    cv: Condvar,
    /// Consecutive failed maintenance rounds per stripe (backoff exponent).
    err_streak: Vec<AtomicU64>,
}

impl Pool {
    fn new(stripes: usize) -> Self {
        Pool {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                scheduled: vec![false; stripes],
                delayed: vec![None; stripes],
                shutdown: false,
            }),
            cv: Condvar::new(),
            err_streak: (0..stripes).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn kick(&self, stripe: usize) {
        let mut st = self.state.lock().unwrap();
        if !st.shutdown && !st.scheduled[stripe] && st.delayed[stripe].is_none() {
            st.scheduled[stripe] = true;
            st.queue.push_back(stripe);
            self.cv.notify_one();
        }
    }

    /// Schedules `stripe` no earlier than `deadline`, superseding any
    /// immediate enqueue. Used by workers after a failed round.
    fn kick_after(&self, stripe: usize, deadline: std::time::Instant) {
        let mut st = self.state.lock().unwrap();
        if st.shutdown {
            return;
        }
        if st.scheduled[stripe] {
            st.queue.retain(|&s| s != stripe);
            st.scheduled[stripe] = false;
        }
        st.delayed[stripe] = Some(st.delayed[stripe].map_or(deadline, |d| d.max(deadline)));
        // Wake a waiter so it recomputes its sleep against the new deadline.
        self.cv.notify_one();
    }

    /// Blocks for the next stripe to maintain; `None` means shut down.
    fn next(&self) -> Option<usize> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(stripe) = st.queue.pop_front() {
                st.scheduled[stripe] = false;
                return Some(stripe);
            }
            if st.shutdown {
                return None;
            }
            // Promote delayed stripes whose deadline has passed; sleep
            // until the nearest remaining one (or a notify) otherwise.
            let now = std::time::Instant::now();
            let mut nearest: Option<std::time::Instant> = None;
            let due: Vec<usize> = st
                .delayed
                .iter()
                .enumerate()
                .filter_map(|(i, d)| match d {
                    Some(dl) if *dl <= now => Some(i),
                    Some(dl) => {
                        nearest = Some(nearest.map_or(*dl, |n| n.min(*dl)));
                        None
                    }
                    None => None,
                })
                .collect();
            for i in due {
                st.delayed[i] = None;
                st.scheduled[i] = true;
                st.queue.push_back(i);
            }
            if !st.queue.is_empty() {
                continue;
            }
            st = match nearest {
                Some(dl) => self.cv.wait_timeout(st, dl - now).unwrap().0,
                None => self.cv.wait(st).unwrap(),
            };
        }
    }

    fn depth(&self) -> usize {
        self.state.lock().unwrap().queue.len()
    }
}

/// Per-stripe telemetry gauges, installed by [`StripedDb::set_obs`].
#[derive(Default)]
struct StripeGauges {
    flush_queue_depth: Gauge,
    compaction_backlog: Gauge,
}

/// The striped engine router. Mirrors the [`LsmTree`] surface the engine
/// layer uses (get/put/delete/write_batch/scan/flush/stats/…), routing each
/// key to its stripe and aggregating across stripes where the answer is
/// global.
pub struct StripedDb {
    stripes: Vec<Arc<LsmTree>>,
    storage: Arc<dyn Storage>,
    opts: Options,
    /// Bumped once per committed write; the scan fence reads it before and
    /// after a cross-stripe merge.
    write_epoch: AtomicU64,
    pool: Option<Arc<Pool>>,
    workers: Vec<JoinHandle<()>>,
    gauges: Arc<parking_lot::RwLock<Vec<StripeGauges>>>,
}

impl StripedDb {
    /// Builds a non-durable striped engine over `storage` (see
    /// [`LsmTree::new`]). `opts.stripes` controls the stripe count;
    /// `opts.stripe_index` is ignored (each stripe gets its own).
    pub fn new(opts: Options, storage: Arc<dyn Storage>) -> Result<Self> {
        Self::build(opts, storage, None, None)
    }

    /// Durable striped engine: stripe `i` keeps its WAL segments and
    /// manifest shard under `dir/stripe-<i>` (plain `dir` when
    /// `stripes == 1`, so existing single-stripe layouts keep working).
    pub fn with_durability(
        opts: Options,
        storage: Arc<dyn Storage>,
        dir: impl Into<PathBuf>,
    ) -> Result<Self> {
        Self::build(
            opts,
            storage,
            Some(dir.into()),
            Some(Arc::new(RealFs::new())),
        )
    }

    /// [`StripedDb::with_durability`] over an explicit [`MetaFs`] — the
    /// seam crash drills use to interpose a simulated write-back cache
    /// under every stripe's WAL and manifest.
    pub fn with_durability_fs(
        opts: Options,
        storage: Arc<dyn Storage>,
        dir: impl Into<PathBuf>,
        fs: Arc<dyn MetaFs>,
    ) -> Result<Self> {
        Self::build(opts, storage, Some(dir.into()), Some(fs))
    }

    fn build(
        opts: Options,
        storage: Arc<dyn Storage>,
        dir: Option<PathBuf>,
        fs: Option<Arc<dyn MetaFs>>,
    ) -> Result<Self> {
        opts.validate()
            .map_err(crate::error::LsmError::InvalidArgument)?;
        let n = opts.stripes.max(1);
        let mut stripes = Vec::with_capacity(n);
        for i in 0..n {
            let mut o = opts.clone();
            o.stripe_index = i;
            let tree = match (&dir, &fs) {
                (Some(dir), Some(fs)) => {
                    let stripe_dir = if n == 1 {
                        dir.clone()
                    } else {
                        dir.join(format!("stripe-{i}"))
                    };
                    LsmTree::with_durability_fs(o, storage.clone(), stripe_dir, fs.clone())?
                }
                _ => LsmTree::new(o, storage.clone())?,
            };
            stripes.push(Arc::new(tree));
        }
        let gauges = Arc::new(parking_lot::RwLock::new(
            (0..n).map(|_| StripeGauges::default()).collect::<Vec<_>>(),
        ));
        let mut db = StripedDb {
            stripes,
            storage,
            opts,
            write_epoch: AtomicU64::new(0),
            pool: None,
            workers: Vec::new(),
            gauges,
        };
        if db.opts.background_maintenance {
            db.spawn_pool();
        }
        Ok(db)
    }

    /// Starts the worker pool and wires each stripe's maintenance hook to
    /// its queue. Workers poison a stripe whose background job trips a
    /// crash point — the foreground then fails exactly as if the process
    /// had died — and otherwise leave transient errors for the next kick.
    fn spawn_pool(&mut self) {
        let n = self.stripes.len();
        let pool = Arc::new(Pool::new(n));
        for (i, tree) in self.stripes.iter().enumerate() {
            let p = pool.clone();
            tree.set_maintenance_hook(Arc::new(move || p.kick(i)));
        }
        // One worker per stripe up to the machine's parallelism: extra
        // threads on a small box only add context switches, never overlap.
        let cores = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1);
        let workers = n.min(cores).clamp(1, 8);
        for _ in 0..workers {
            let p = pool.clone();
            let trees = self.stripes.clone();
            let gauges = self.gauges.clone();
            self.workers.push(std::thread::spawn(move || {
                while let Some(stripe) = p.next() {
                    let tree = &trees[stripe];
                    let mut failed = false;
                    match tree.maintain_once() {
                        Ok(_) => {
                            p.err_streak[stripe].store(0, Ordering::Relaxed);
                        }
                        Err(_) if tree.crash_fired() => tree.poison(),
                        // Transient (e.g. injected) error: the imm is still
                        // sealed; retry below, with backoff.
                        Err(_) => failed = true,
                    }
                    // Work can arrive while a round runs; re-enqueue until
                    // the stripe is clean. A failed round re-enqueues on an
                    // exponential backoff (1 ms doubling to ~512 ms) so a
                    // persistent error — disk full, say — cannot spin this
                    // worker, and each retry's fresh file id / partial SST
                    // is minted at a bounded rate.
                    if !tree.is_poisoned() && (tree.flush_pending() || tree.compaction_due()) {
                        if failed {
                            let streak = p.err_streak[stripe].fetch_add(1, Ordering::Relaxed);
                            let delay = std::time::Duration::from_millis(1 << streak.min(9));
                            p.kick_after(stripe, std::time::Instant::now() + delay);
                        } else {
                            p.kick(stripe);
                        }
                    }
                    let g = gauges.read();
                    g[stripe].flush_queue_depth.set(tree.flush_pending() as i64);
                    g[stripe]
                        .compaction_backlog
                        .set(tree.compaction_due() as i64);
                }
            }));
        }
        self.pool = Some(pool);
    }

    /// The stripe that owns `key`.
    pub fn stripe_for(&self, key: &[u8]) -> usize {
        stripe_of(key, self.stripes.len())
    }

    /// Number of stripes.
    pub fn num_stripes(&self) -> usize {
        self.stripes.len()
    }

    /// Direct handle to stripe `i` (drills and tests).
    pub fn stripe(&self, i: usize) -> &Arc<LsmTree> {
        &self.stripes[i]
    }

    /// The shared storage device.
    pub fn storage(&self) -> &Arc<dyn Storage> {
        &self.storage
    }

    /// The router's options (stripe 0's view; `stripe_index` is 0).
    pub fn options(&self) -> &Options {
        &self.opts
    }

    /// Inserts or overwrites `key` on its stripe.
    pub fn put(&self, key: Key, value: Value) -> Result<()> {
        let s = self.stripe_for(&key);
        // Seqlock-style fence: bump before AND after the commit, so a scan
        // overlapping either edge of this write sees the epoch move.
        self.write_epoch.fetch_add(1, Ordering::Release);
        self.stripes[s].put(key, value)?;
        self.write_epoch.fetch_add(1, Ordering::Release);
        Ok(())
    }

    /// Deletes `key` (tombstone) on its stripe.
    pub fn delete(&self, key: Key) -> Result<()> {
        let s = self.stripe_for(&key);
        self.write_epoch.fetch_add(1, Ordering::Release);
        self.stripes[s].delete(key)?;
        self.write_epoch.fetch_add(1, Ordering::Release);
        Ok(())
    }

    /// Applies a batch, grouped per stripe. Atomicity holds within each
    /// stripe (single WAL push under one lock); a crash between stripe
    /// sub-batches can persist one stripe's half without another's — the
    /// cross-stripe contract is documented, not hidden.
    pub fn write_batch(&self, batch: Vec<(Key, Entry)>) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let n = self.stripes.len();
        if n == 1 {
            self.stripes[0].write_batch(batch)?;
            self.write_epoch.fetch_add(1, Ordering::Release);
            return Ok(());
        }
        let mut per: Vec<Vec<(Key, Entry)>> = (0..n).map(|_| Vec::new()).collect();
        for (key, entry) in batch {
            per[stripe_of(&key, n)].push((key, entry));
        }
        self.write_epoch.fetch_add(1, Ordering::Release);
        for (i, sub) in per.into_iter().enumerate() {
            if !sub.is_empty() {
                self.stripes[i].write_batch(sub)?;
            }
        }
        self.write_epoch.fetch_add(1, Ordering::Release);
        Ok(())
    }

    /// Point lookup on the owning stripe.
    pub fn get(&self, key: &[u8], provider: &dyn BlockProvider) -> Result<Option<Value>> {
        self.stripes[self.stripe_for(key)].get(key, provider)
    }

    /// Point lookups for many keys, grouped per owning stripe so each
    /// stripe's read lock is acquired **once** per group rather than once
    /// per key. Results are positional: `out[i]` answers `keys[i]`.
    pub fn multi_get(
        &self,
        keys: &[&[u8]],
        provider: &dyn BlockProvider,
    ) -> Result<Vec<Option<Value>>> {
        let n = self.stripes.len();
        if n == 1 || keys.len() == 1 {
            if keys.len() == 1 {
                return Ok(vec![self.get(keys[0], provider)?]);
            }
            return self.stripes[0].multi_get(keys, provider);
        }
        // Group key *indices* by stripe, probe each group under one lock,
        // then scatter the answers back into request order.
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, key) in keys.iter().enumerate() {
            groups[stripe_of(key, n)].push(i);
        }
        let mut out: Vec<Option<Value>> = vec![None; keys.len()];
        for (stripe, idxs) in groups.iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            let group: Vec<&[u8]> = idxs.iter().map(|&i| keys[i]).collect();
            let answers = self.stripes[stripe].multi_get(&group, provider)?;
            for (&i, v) in idxs.iter().zip(answers) {
                out[i] = v;
            }
        }
        Ok(out)
    }

    /// Range scan: merges per-stripe scans under the write-epoch fence.
    /// A merge that raced a commit is redone once (each stripe is still
    /// individually consistent either way); retrying more than once under
    /// a sustained write load would never converge and only burn CPU.
    ///
    /// Consistency is best-effort across stripes: writers bump the epoch
    /// on both sides of their commit, so any write overlapping either
    /// fence read triggers the retry — but a commit in flight across the
    /// *whole* merge (both bumps outside both fence reads) is invisible to
    /// the fence, and the single retry's result is accepted as-is. In both
    /// residual cases the scan is consistent per stripe, not globally.
    pub fn scan(
        &self,
        from: &[u8],
        limit: usize,
        provider: &dyn BlockProvider,
    ) -> Result<Vec<(Key, Value)>> {
        if self.stripes.len() == 1 {
            return self.stripes[0].scan(from, limit, provider);
        }
        let before = self.write_epoch.load(Ordering::Acquire);
        let merged = self.scan_once(from, limit, provider)?;
        let after = self.write_epoch.load(Ordering::Acquire);
        if before == after {
            return Ok(merged);
        }
        self.scan_once(from, limit, provider)
    }

    fn scan_once(
        &self,
        from: &[u8],
        limit: usize,
        provider: &dyn BlockProvider,
    ) -> Result<Vec<(Key, Value)>> {
        // Each stripe owns a disjoint key set, so the merge is a plain
        // k-way sorted union — no cross-stripe shadowing to resolve. Hash
        // routing spreads any contiguous range uniformly, so each stripe
        // holds ~limit/n of the result: fetch that plus slack, and refill
        // (doubling) the rare stripe that runs hotter than the hash
        // suggests. Naively fetching `limit` from every stripe would make
        // the scan cost n× the single-engine path.
        struct Cur {
            buf: std::collections::VecDeque<(Key, Value)>,
            /// The fetch filled `want`, so the stripe may hold more.
            truncated: bool,
            want: usize,
            /// Strict successor of the last fetched key: where a refill
            /// resumes.
            next_from: Vec<u8>,
        }
        let n = self.stripes.len();
        let want0 = (limit / n + 4).min(limit.max(1));
        let mut curs = Vec::with_capacity(n);
        for tree in &self.stripes {
            let got = tree.scan(from, want0, provider)?;
            let truncated = got.len() == want0;
            let next_from = match got.last() {
                Some((k, _)) => {
                    let mut nf = k.to_vec();
                    nf.push(0);
                    nf
                }
                None => from.to_vec(),
            };
            curs.push(Cur {
                buf: got.into(),
                truncated,
                want: want0,
                next_from,
            });
        }
        let mut out = Vec::with_capacity(limit);
        while out.len() < limit {
            // A drained-but-truncated cursor may still hold the global
            // minimum; refill it before choosing.
            for (i, tree) in self.stripes.iter().enumerate() {
                let c = &mut curs[i];
                while c.buf.is_empty() && c.truncated {
                    c.want = (c.want * 2).min(limit.max(1));
                    let got = tree.scan(&c.next_from, c.want, provider)?;
                    c.truncated = got.len() == c.want;
                    if let Some((k, _)) = got.last() {
                        c.next_from = k.to_vec();
                        c.next_from.push(0);
                    }
                    c.buf = got.into();
                }
            }
            let mut min: Option<usize> = None;
            for (i, c) in curs.iter().enumerate() {
                if let Some((k, _)) = c.buf.front() {
                    if min.is_none_or(|m| *k < curs[m].buf.front().unwrap().0) {
                        min = Some(i);
                    }
                }
            }
            let Some(i) = min else { break };
            out.push(curs[i].buf.pop_front().unwrap());
        }
        Ok(out)
    }

    /// Flushes every stripe (sealed memtables included) and runs due
    /// compactions.
    pub fn flush(&self) -> Result<()> {
        for tree in &self.stripes {
            tree.flush()?;
        }
        Ok(())
    }

    /// Runs at most one due compaction somewhere; returns whether one ran.
    pub fn maybe_compact_once(&self) -> Result<bool> {
        for tree in &self.stripes {
            if tree.maybe_compact_once()? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Stripe 0's counters when single-striped (bit-compatible with the
    /// old single-engine `stats()`); use [`StripedDb::stats_sum`] for
    /// cross-stripe aggregates.
    pub fn stats(&self) -> &DbStats {
        self.stripes[0].stats()
    }

    /// Sums a counter across stripes via `f`.
    pub fn stats_sum(&self, f: impl Fn(&DbStats) -> u64) -> u64 {
        self.stripes.iter().map(|t| f(t.stats())).sum()
    }

    /// Total compactions across stripes.
    pub fn compactions(&self) -> u64 {
        self.stats_sum(|s| s.compactions())
    }

    /// Group-commit `(rounds, batches)` summed across stripes.
    pub fn group_commit(&self) -> (u64, u64) {
        let mut rounds = 0;
        let mut batches = 0;
        for t in &self.stripes {
            let (r, b) = t.stats().group_commit();
            rounds += r;
            batches += b;
        }
        (rounds, batches)
    }

    /// Query-path SST block reads: device reads minus every stripe's
    /// compaction reads.
    pub fn query_block_reads(&self) -> u64 {
        self.storage
            .stats()
            .reads()
            .saturating_sub(self.stats_sum(|s| s.compaction_block_reads.load(Ordering::Relaxed)))
    }

    /// Write amplification across the device: all blocks written per block
    /// of fresh data flushed (any stripe).
    pub fn write_amplification(&self) -> f64 {
        let flushed = self.stats_sum(|s| s.flush_block_writes.load(Ordering::Relaxed));
        if flushed == 0 {
            return 0.0;
        }
        self.storage.stats().writes() as f64 / flushed as f64
    }

    /// Total sorted runs across stripes (a scan opens iterators in every
    /// stripe, so the sum is the real seek fan-out).
    pub fn num_runs(&self) -> usize {
        self.stripes.iter().map(|t| t.num_runs()).sum()
    }

    /// Deepest non-empty level over any stripe.
    pub fn num_levels(&self) -> usize {
        self.stripes
            .iter()
            .map(|t| t.num_levels())
            .max()
            .unwrap_or(0)
    }

    /// `(level, files, bytes)` aggregated across stripes.
    pub fn level_summary(&self) -> Vec<(usize, usize, u64)> {
        let mut agg: Vec<(usize, usize, u64)> =
            (0..self.opts.max_levels).map(|l| (l, 0, 0)).collect();
        for tree in &self.stripes {
            for (l, files, bytes) in tree.level_summary() {
                agg[l].1 += files;
                agg[l].2 += bytes;
            }
        }
        agg
    }

    /// Entries buffered across every stripe's memtables.
    pub fn memtable_len(&self) -> usize {
        self.stripes.iter().map(|t| t.memtable_len()).sum()
    }

    /// `(total entries, total blocks)` across all stripes' live tables.
    pub fn entries_and_blocks(&self) -> (u64, u64) {
        let mut entries = 0;
        let mut blocks = 0;
        for tree in &self.stripes {
            let (e, b) = tree.entries_and_blocks();
            entries += e;
            blocks += b;
        }
        (entries, blocks)
    }

    /// Quarantined block addresses across stripes, sorted.
    pub fn quarantined(&self) -> Vec<(FileId, u32)> {
        let mut v: Vec<_> = self.stripes.iter().flat_map(|t| t.quarantined()).collect();
        v.sort_unstable();
        v
    }

    /// Registers a compaction observer on every stripe (file ids are
    /// globally unique, so one listener serves all).
    pub fn add_compaction_listener(&self, l: Arc<dyn CompactionListener>) {
        for tree in &self.stripes {
            tree.add_compaction_listener(l.clone());
        }
    }

    /// Installs one crash controller across every stripe — background
    /// workers hit the same armed points foreground paths do.
    pub fn set_crash_controller(&self, cc: Arc<CrashController>) {
        for tree in &self.stripes {
            tree.set_crash_controller(cc.clone());
        }
    }

    /// Whether any stripe was poisoned by a background crash injection.
    pub fn is_poisoned(&self) -> bool {
        self.stripes.iter().any(|t| t.is_poisoned())
    }

    /// Attaches observability to every stripe: lock counters register both
    /// the shared `engine.lock.*` aggregate and per-stripe
    /// `engine.stripe.<i>.lock.*` sets (when striped), plus per-stripe
    /// `flush_queue_depth` / `compaction_backlog` gauges.
    pub fn set_obs(&self, obs: Obs) {
        for tree in &self.stripes {
            tree.set_obs(obs.clone());
        }
        if self.stripes.len() > 1 {
            let mut g = self.gauges.write();
            for (i, sg) in g.iter_mut().enumerate() {
                sg.flush_queue_depth = obs.gauge(&format!("engine.stripe.{i}.flush_queue_depth"));
                sg.compaction_backlog = obs.gauge(&format!("engine.stripe.{i}.compaction_backlog"));
            }
        }
    }

    /// Background queue depth (stripes currently scheduled), 0 without a
    /// pool.
    pub fn maintenance_queue_depth(&self) -> usize {
        self.pool.as_ref().map_or(0, |p| p.depth())
    }
}

impl Drop for StripedDb {
    fn drop(&mut self) {
        if let Some(pool) = &self.pool {
            {
                let mut st = pool.state.lock().unwrap();
                st.shutdown = true;
            }
            pool.cv.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sstable::DirectProvider;
    use crate::storage::MemStorage;
    use bytes::Bytes;

    fn kb(i: u32) -> Key {
        Bytes::from(format!("key-{i:05}"))
    }

    #[test]
    fn routes_are_stable_and_cover_all_stripes() {
        let mut seen = [false; 8];
        for i in 0..1000u32 {
            let s = stripe_of(&kb(i), 8);
            assert_eq!(s, stripe_of(&kb(i), 8));
            seen[s] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "1000 keys should touch all 8 stripes"
        );
    }

    #[test]
    fn striped_put_get_scan_roundtrip() {
        let mut opts = Options::small();
        opts.stripes = 4;
        let db = StripedDb::new(opts, Arc::new(MemStorage::new())).unwrap();
        for i in 0..200u32 {
            db.put(kb(i), Bytes::from(format!("v{i}"))).unwrap();
        }
        for i in (0..200u32).step_by(3) {
            db.delete(kb(i)).unwrap();
        }
        let got = db.get(&kb(1), &DirectProvider).unwrap();
        assert_eq!(got.unwrap().as_ref(), b"v1");
        assert_eq!(db.get(&kb(3), &DirectProvider).unwrap(), None);
        let scanned = db.scan(b"key-00000", 500, &DirectProvider).unwrap();
        let expect: Vec<u32> = (0..200).filter(|i| i % 3 != 0).collect();
        assert_eq!(scanned.len(), expect.len());
        let mut sorted = scanned.clone();
        sorted.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(scanned, sorted, "merged scan must be key-ordered");
    }

    #[test]
    fn background_pool_flushes_without_explicit_calls() {
        let mut opts = Options::small();
        opts.stripes = 2;
        opts.background_maintenance = true;
        opts.memtable_size = 1 << 10;
        let db = StripedDb::new(opts, Arc::new(MemStorage::new())).unwrap();
        for i in 0..2000u32 {
            db.put(kb(i), Bytes::from(vec![b'x'; 64])).unwrap();
        }
        // The pool should have flushed something in the background.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while db.stats_sum(|s| s.flushes.load(Ordering::Relaxed)) == 0 {
            assert!(std::time::Instant::now() < deadline, "no background flush");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        db.flush().unwrap();
        for i in (0..2000u32).step_by(97) {
            let got = db.get(&kb(i), &DirectProvider).unwrap();
            assert_eq!(got.unwrap().as_ref(), vec![b'x'; 64].as_slice());
        }
        assert!(db.stats_sum(|s| s.seals()) > 0, "writes should have sealed");
    }
}
