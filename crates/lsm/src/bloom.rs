//! Bloom filter with double hashing.
//!
//! One filter is built per SSTable over every user key in the table, at a
//! configurable bits-per-key budget (the paper uses 10 bits/key, which it
//! treats as driving the false-positive rate "close to zero" in the reward
//! model). The probe count is derived as `k = bits_per_key * ln 2`, clamped
//! to `[1, 30]`, and probes use the Kirsch–Mitzenmacher double-hashing
//! scheme over a single 64-bit hash.

/// A serializable Bloom filter over byte-string keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: u64,
    num_probes: u32,
}

/// 64-bit FNV-1a; fast, dependency-free, and adequate for filter probing.
fn hash64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    // Final avalanche (splitmix64 tail) to decorrelate low bits.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

impl BloomFilter {
    /// Builds a filter sized for `keys.len()` keys at `bits_per_key`.
    ///
    /// An empty key set or a zero budget produces a degenerate filter that
    /// reports nothing present.
    pub fn build<K: AsRef<[u8]>>(keys: &[K], bits_per_key: usize) -> Self {
        if keys.is_empty() || bits_per_key == 0 {
            return BloomFilter {
                bits: Vec::new(),
                num_bits: 0,
                num_probes: 0,
            };
        }
        let num_bits = (keys.len() * bits_per_key).max(64) as u64;
        let num_words = num_bits.div_ceil(64) as usize;
        let num_bits = (num_words * 64) as u64;
        let num_probes =
            ((bits_per_key as f64 * std::f64::consts::LN_2).round() as u32).clamp(1, 30);
        let mut filter = BloomFilter {
            bits: vec![0u64; num_words],
            num_bits,
            num_probes,
        };
        for key in keys {
            filter.insert(key.as_ref());
        }
        filter
    }

    fn insert(&mut self, key: &[u8]) {
        let h = hash64(key);
        let (h1, mut h2) = (h, h.rotate_left(32) | 1);
        let mut pos = h1;
        for _ in 0..self.num_probes {
            let bit = pos % self.num_bits;
            self.bits[(bit / 64) as usize] |= 1u64 << (bit % 64);
            pos = pos.wrapping_add(h2);
            h2 = h2.wrapping_add(1);
        }
    }

    /// Returns `false` when the key is definitely absent; `true` when it may
    /// be present.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        if self.num_bits == 0 {
            return false;
        }
        let h = hash64(key);
        let (h1, mut h2) = (h, h.rotate_left(32) | 1);
        let mut pos = h1;
        for _ in 0..self.num_probes {
            let bit = pos % self.num_bits;
            if self.bits[(bit / 64) as usize] & (1u64 << (bit % 64)) == 0 {
                return false;
            }
            pos = pos.wrapping_add(h2);
            h2 = h2.wrapping_add(1);
        }
        true
    }

    /// Serialized size plus bookkeeping, for memory accounting.
    pub fn memory_bytes(&self) -> usize {
        self.bits.len() * 8 + 16
    }

    /// Encodes the filter for inclusion in an SSTable.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.num_bits.to_le_bytes());
        out.extend_from_slice(&self.num_probes.to_le_bytes());
        out.extend_from_slice(&(self.bits.len() as u32).to_le_bytes());
        for w in &self.bits {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }

    /// Decodes a filter previously produced by [`BloomFilter::encode`].
    /// Returns the filter and the number of bytes consumed.
    pub fn decode(data: &[u8]) -> Option<(Self, usize)> {
        if data.len() < 16 {
            return None;
        }
        let num_bits = u64::from_le_bytes(data[0..8].try_into().ok()?);
        let num_probes = u32::from_le_bytes(data[8..12].try_into().ok()?);
        let num_words = u32::from_le_bytes(data[12..16].try_into().ok()?) as usize;
        let need = 16 + num_words * 8;
        if data.len() < need
            || num_bits as usize != num_words * 64 && !(num_bits == 0 && num_words == 0)
        {
            return None;
        }
        let mut bits = Vec::with_capacity(num_words);
        for i in 0..num_words {
            let off = 16 + i * 8;
            bits.push(u64::from_le_bytes(data[off..off + 8].try_into().ok()?));
        }
        Some((
            BloomFilter {
                bits,
                num_bits,
                num_probes,
            },
            need,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("key-{i:08}").into_bytes()).collect()
    }

    #[test]
    fn no_false_negatives() {
        let ks = keys(10_000);
        let f = BloomFilter::build(&ks, 10);
        for k in &ks {
            assert!(
                f.may_contain(k),
                "false negative for {:?}",
                String::from_utf8_lossy(k)
            );
        }
    }

    #[test]
    fn false_positive_rate_is_low_at_10_bits() {
        let ks = keys(10_000);
        let f = BloomFilter::build(&ks, 10);
        let mut fp = 0usize;
        let trials = 20_000;
        for i in 0..trials {
            let probe = format!("absent-{i:08}").into_bytes();
            if f.may_contain(&probe) {
                fp += 1;
            }
        }
        let rate = fp as f64 / trials as f64;
        // Theoretical FPR at 10 bits/key is ~0.8%; allow generous slack.
        assert!(rate < 0.03, "observed FPR {rate}");
    }

    #[test]
    fn fewer_bits_raise_fpr() {
        let ks = keys(5_000);
        let tight = BloomFilter::build(&ks, 10);
        let loose = BloomFilter::build(&ks, 2);
        let count = |f: &BloomFilter| {
            (0..10_000)
                .filter(|i| f.may_contain(format!("miss-{i}").as_bytes()))
                .count()
        };
        assert!(count(&loose) > count(&tight) * 3);
    }

    #[test]
    fn empty_and_disabled_filters() {
        let f = BloomFilter::build(&Vec::<Vec<u8>>::new(), 10);
        assert!(!f.may_contain(b"anything"));
        let f = BloomFilter::build(&keys(10), 0);
        assert!(!f.may_contain(b"key-00000001"));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let ks = keys(1000);
        let f = BloomFilter::build(&ks, 10);
        let mut buf = Vec::new();
        f.encode(&mut buf);
        // Trailing bytes must be left untouched.
        buf.extend_from_slice(b"trailer");
        let (g, used) = BloomFilter::decode(&buf).unwrap();
        assert_eq!(used, buf.len() - 7);
        assert_eq!(f, g);
        for k in &ks {
            assert!(g.may_contain(k));
        }
    }

    #[test]
    fn decode_rejects_truncation() {
        let ks = keys(100);
        let f = BloomFilter::build(&ks, 10);
        let mut buf = Vec::new();
        f.encode(&mut buf);
        assert!(BloomFilter::decode(&buf[..8]).is_none());
        assert!(BloomFilter::decode(&buf[..buf.len() - 1]).is_none());
    }

    #[test]
    fn memory_accounting_tracks_bits() {
        let f = BloomFilter::build(&keys(1000), 10);
        assert!(f.memory_bytes() >= 1000 * 10 / 8);
    }
}
