//! Pluggable storage backends with block-level I/O accounting.
//!
//! The paper's metrics — SST reads, hit rate against a no-cache baseline,
//! and throughput — are all functions of how many data blocks are fetched
//! from the device. Every backend therefore counts block reads and charges a
//! configurable simulated device cost per read, so experiments report
//! deterministic I/O counts and a reproducible simulated-time throughput
//! (the substitution for the paper's NVMe testbed; see DESIGN.md §2).

use crate::error::{LsmError, Result};
use crate::types::FileId;
use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Cost model for simulated device time.
///
/// Defaults approximate a fast NVMe SSD: ~80 µs per 4 KiB random block read
/// once OS overheads are included, and ~40 µs per block written
/// sequentially. Experiments only interpret *relative* throughput, so the
/// absolute constants matter little; they must merely keep I/O dominant over
/// CPU, as on the paper's testbed.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Simulated nanoseconds charged per block read.
    pub read_block_ns: u64,
    /// Simulated nanoseconds charged per block written.
    pub write_block_ns: u64,
    /// Simulated nanoseconds charged per explicit device sync (fsync of a
    /// file or directory). NVMe flush latency is dominated by the drive
    /// cache flush, not the payload size, so the charge is flat.
    pub sync_ns: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            read_block_ns: 80_000,
            write_block_ns: 40_000,
            sync_ns: 100_000,
        }
    }
}

/// Running I/O counters, shared by all backends.
///
/// Fault injection lives in [`crate::fault::FaultStorage`], a decorator
/// over any backend — the old one-shot `inject_read_failures` counter that
/// used to sit here was replaced by its seeded [`crate::fault::FaultPlan`].
#[derive(Debug, Default)]
pub struct IoStats {
    /// Number of data-block reads served by the device.
    pub block_reads: AtomicU64,
    /// Number of data blocks written (flushes and compactions).
    pub block_writes: AtomicU64,
    /// Number of explicit device syncs issued (file + directory fsyncs,
    /// including WAL and manifest syncs charged by the engine).
    pub syncs: AtomicU64,
    /// Accumulated simulated device time in nanoseconds.
    pub simulated_ns: AtomicU64,
}

impl IoStats {
    /// Snapshot of the read counter.
    pub fn reads(&self) -> u64 {
        self.block_reads.load(Ordering::Relaxed)
    }

    /// Snapshot of the write counter.
    pub fn writes(&self) -> u64 {
        self.block_writes.load(Ordering::Relaxed)
    }

    /// Snapshot of the sync counter.
    pub fn syncs(&self) -> u64 {
        self.syncs.load(Ordering::Relaxed)
    }

    /// Snapshot of accumulated simulated nanoseconds.
    pub fn simulated_ns(&self) -> u64 {
        self.simulated_ns.load(Ordering::Relaxed)
    }

    /// Charges extra simulated device time (retry backoff, latency
    /// spikes). Keeps wait costs on the simulated clock instead of real
    /// sleeps.
    pub fn charge_ns(&self, ns: u64) {
        self.simulated_ns.fetch_add(ns, Ordering::Relaxed);
    }
}

/// A block-oriented storage device for SSTables.
///
/// Tables are immutable once written; reads address individual data blocks
/// by `(file, block_no)`. Implementations must be thread-safe: the engine
/// serves concurrent readers (Section 4.4 of the paper).
pub trait Storage: Send + Sync {
    /// Persists a table's encoded data blocks plus its metadata blob.
    fn write_table(&self, id: FileId, blocks: Vec<Bytes>, meta: Bytes) -> Result<()>;

    /// Reads one data block. Counts as one device I/O.
    fn read_block(&self, id: FileId, block_no: u32) -> Result<Bytes>;

    /// Reads a table's metadata blob (index, bloom, stats). Metadata is
    /// pinned in memory by the engine after open, so this is *not* counted
    /// as a data-block I/O — matching RocksDB's pinned index/filter blocks.
    fn read_meta(&self, id: FileId) -> Result<Bytes>;

    /// Deletes a table (after compaction made it obsolete).
    fn delete_table(&self, id: FileId) -> Result<()>;

    /// Makes a written table's *contents* durable (fsync). Until this (and
    /// [`Storage::sync_dir`]) succeed, a completed `write_table` may sit in
    /// a modeled write-back cache and vanish on crash. Charged to the
    /// simulated clock.
    fn sync_table(&self, id: FileId) -> Result<()>;

    /// Makes the device's *namespace* durable (directory fsync): table
    /// creations and deletions issued before this call survive a crash.
    /// Charged to the simulated clock.
    fn sync_dir(&self) -> Result<()>;

    /// Ids of every table currently present on the device — including
    /// files an interrupted flush left behind that no manifest references.
    /// Recovery uses this to sweep orphans. Sorted ascending.
    fn list_tables(&self) -> Vec<FileId>;

    /// Simulated nanoseconds one explicit sync costs on this device (the
    /// engine charges this for WAL / manifest fsyncs, which bypass the
    /// block device but share its clock).
    fn sync_cost_ns(&self) -> u64;

    /// Shared I/O counters.
    fn stats(&self) -> &IoStats;

    /// Number of live tables (for tests and space accounting).
    fn table_count(&self) -> usize;
}

/// In-memory storage: blocks live in a hash map, reads are counted and
/// charged simulated device time. This is the default experiment substrate.
pub struct MemStorage {
    tables: RwLock<HashMap<FileId, (Vec<Bytes>, Bytes)>>,
    stats: IoStats,
    cost: CostModel,
}

impl MemStorage {
    /// Creates an empty in-memory device with the default cost model.
    pub fn new() -> Self {
        Self::with_cost(CostModel::default())
    }

    /// Creates an empty device with a custom cost model.
    pub fn with_cost(cost: CostModel) -> Self {
        MemStorage {
            tables: RwLock::new(HashMap::new()),
            stats: IoStats::default(),
            cost,
        }
    }
}

impl Default for MemStorage {
    fn default() -> Self {
        Self::new()
    }
}

impl Storage for MemStorage {
    fn write_table(&self, id: FileId, blocks: Vec<Bytes>, meta: Bytes) -> Result<()> {
        let n = blocks.len() as u64;
        let mut tables = self.tables.write();
        if tables.insert(id, (blocks, meta)).is_some() {
            return Err(LsmError::InvalidArgument(format!(
                "table {id} already exists"
            )));
        }
        self.stats.block_writes.fetch_add(n, Ordering::Relaxed);
        self.stats
            .simulated_ns
            .fetch_add(n * self.cost.write_block_ns, Ordering::Relaxed);
        Ok(())
    }

    fn read_block(&self, id: FileId, block_no: u32) -> Result<Bytes> {
        let tables = self.tables.read();
        let (blocks, _) = tables
            .get(&id)
            .ok_or_else(|| LsmError::NotFound(format!("table {id}")))?;
        let block = blocks
            .get(block_no as usize)
            .ok_or_else(|| LsmError::NotFound(format!("table {id} block {block_no}")))?
            .clone();
        self.stats.block_reads.fetch_add(1, Ordering::Relaxed);
        self.stats
            .simulated_ns
            .fetch_add(self.cost.read_block_ns, Ordering::Relaxed);
        Ok(block)
    }

    fn read_meta(&self, id: FileId) -> Result<Bytes> {
        let tables = self.tables.read();
        let (_, meta) = tables
            .get(&id)
            .ok_or_else(|| LsmError::NotFound(format!("table {id}")))?;
        Ok(meta.clone())
    }

    fn delete_table(&self, id: FileId) -> Result<()> {
        self.tables
            .write()
            .remove(&id)
            .map(|_| ())
            .ok_or_else(|| LsmError::NotFound(format!("table {id}")))
    }

    fn sync_table(&self, id: FileId) -> Result<()> {
        if !self.tables.read().contains_key(&id) {
            return Err(LsmError::NotFound(format!("table {id}")));
        }
        self.stats.syncs.fetch_add(1, Ordering::Relaxed);
        self.stats.charge_ns(self.cost.sync_ns);
        Ok(())
    }

    fn sync_dir(&self) -> Result<()> {
        self.stats.syncs.fetch_add(1, Ordering::Relaxed);
        self.stats.charge_ns(self.cost.sync_ns);
        Ok(())
    }

    fn list_tables(&self) -> Vec<FileId> {
        let mut ids: Vec<FileId> = self.tables.read().keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    fn sync_cost_ns(&self) -> u64 {
        self.cost.sync_ns
    }

    fn stats(&self) -> &IoStats {
        &self.stats
    }

    fn table_count(&self) -> usize {
        self.tables.read().len()
    }
}

/// File-backed storage: one file per table.
///
/// Layout: `u32 block_count | u32 meta_len | u64 offset × (block_count+1) |
/// blocks… | meta`. Offsets are absolute; block `i` spans
/// `offset[i]..offset[i+1]`.
pub struct FileStorage {
    dir: PathBuf,
    /// Cached per-table block offset tables so each block read is one seek.
    offsets: RwLock<HashMap<FileId, Vec<u64>>>,
    stats: IoStats,
    cost: CostModel,
}

impl FileStorage {
    /// Opens (creating if needed) a directory-backed device.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(FileStorage {
            dir,
            offsets: RwLock::new(HashMap::new()),
            stats: IoStats::default(),
            cost: CostModel::default(),
        })
    }

    fn path(&self, id: FileId) -> PathBuf {
        self.dir.join(format!("{id:012}.sst"))
    }

    fn load_offsets(&self, id: FileId) -> Result<Vec<u64>> {
        if let Some(offs) = self.offsets.read().get(&id) {
            return Ok(offs.clone());
        }
        let mut f = std::fs::File::open(self.path(id))?;
        let mut hdr = [0u8; 8];
        f.read_exact(&mut hdr)?;
        let n = u32::from_le_bytes(hdr[0..4].try_into().unwrap()) as usize;
        let mut offs = Vec::with_capacity(n + 1);
        let mut buf = vec![0u8; (n + 1) * 8];
        f.read_exact(&mut buf)?;
        for i in 0..=n {
            offs.push(u64::from_le_bytes(
                buf[i * 8..i * 8 + 8].try_into().unwrap(),
            ));
        }
        self.offsets.write().insert(id, offs.clone());
        Ok(offs)
    }
}

impl Storage for FileStorage {
    fn write_table(&self, id: FileId, blocks: Vec<Bytes>, meta: Bytes) -> Result<()> {
        let path = self.path(id);
        if path.exists() {
            return Err(LsmError::InvalidArgument(format!(
                "table {id} already exists"
            )));
        }
        let n = blocks.len();
        let header_len = 8 + (n + 1) * 8;
        let mut offsets = Vec::with_capacity(n + 1);
        let mut pos = header_len as u64;
        for b in &blocks {
            offsets.push(pos);
            pos += b.len() as u64;
        }
        offsets.push(pos);

        let mut f = std::fs::File::create(&path)?;
        f.write_all(&(n as u32).to_le_bytes())?;
        f.write_all(&(meta.len() as u32).to_le_bytes())?;
        for o in &offsets {
            f.write_all(&o.to_le_bytes())?;
        }
        for b in &blocks {
            f.write_all(b)?;
        }
        f.write_all(&meta)?;
        // Durability is explicit: the engine calls `sync_table` +
        // `sync_dir` when its sync policy requires it; an unconditional
        // fsync here would hide exactly the write-back-cache bugs the
        // crash drills exist to catch.
        self.offsets.write().insert(id, offsets);
        self.stats
            .block_writes
            .fetch_add(n as u64, Ordering::Relaxed);
        self.stats
            .simulated_ns
            .fetch_add(n as u64 * self.cost.write_block_ns, Ordering::Relaxed);
        Ok(())
    }

    fn read_block(&self, id: FileId, block_no: u32) -> Result<Bytes> {
        let offs = self.load_offsets(id)?;
        let i = block_no as usize;
        if i + 1 >= offs.len() {
            return Err(LsmError::NotFound(format!("table {id} block {block_no}")));
        }
        let mut f = std::fs::File::open(self.path(id))?;
        f.seek(SeekFrom::Start(offs[i]))?;
        let len = (offs[i + 1] - offs[i]) as usize;
        let mut buf = vec![0u8; len];
        f.read_exact(&mut buf)?;
        self.stats.block_reads.fetch_add(1, Ordering::Relaxed);
        self.stats
            .simulated_ns
            .fetch_add(self.cost.read_block_ns, Ordering::Relaxed);
        Ok(Bytes::from(buf))
    }

    fn read_meta(&self, id: FileId) -> Result<Bytes> {
        let offs = self.load_offsets(id)?;
        let mut f = std::fs::File::open(self.path(id))?;
        let mut hdr = [0u8; 8];
        f.read_exact(&mut hdr)?;
        let meta_len = u32::from_le_bytes(hdr[4..8].try_into().unwrap()) as usize;
        let end = *offs.last().expect("offsets always has n+1 entries");
        f.seek(SeekFrom::Start(end))?;
        let mut buf = vec![0u8; meta_len];
        f.read_exact(&mut buf)?;
        Ok(Bytes::from(buf))
    }

    fn delete_table(&self, id: FileId) -> Result<()> {
        self.offsets.write().remove(&id);
        std::fs::remove_file(self.path(id))?;
        Ok(())
    }

    fn sync_table(&self, id: FileId) -> Result<()> {
        let f = std::fs::File::open(self.path(id))?;
        f.sync_all()?;
        self.stats.syncs.fetch_add(1, Ordering::Relaxed);
        self.stats.charge_ns(self.cost.sync_ns);
        Ok(())
    }

    fn sync_dir(&self) -> Result<()> {
        let f = std::fs::File::open(&self.dir)?;
        f.sync_all()?;
        self.stats.syncs.fetch_add(1, Ordering::Relaxed);
        self.stats.charge_ns(self.cost.sync_ns);
        Ok(())
    }

    fn list_tables(&self) -> Vec<FileId> {
        let mut ids: Vec<FileId> = std::fs::read_dir(&self.dir)
            .map(|d| {
                d.filter_map(|e| e.ok())
                    .map(|e| e.path())
                    .filter(|p| p.extension().is_some_and(|x| x == "sst"))
                    .filter_map(|p| {
                        p.file_stem()
                            .and_then(|s| s.to_str())
                            .and_then(|s| s.parse::<FileId>().ok())
                    })
                    .collect()
            })
            .unwrap_or_default();
        ids.sort_unstable();
        ids
    }

    fn sync_cost_ns(&self) -> u64 {
        self.cost.sync_ns
    }

    fn stats(&self) -> &IoStats {
        &self.stats
    }

    fn table_count(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|d| {
                d.filter_map(|e| e.ok())
                    .filter(|e| e.path().extension().is_some_and(|x| x == "sst"))
                    .count()
            })
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks(n: usize) -> Vec<Bytes> {
        (0..n)
            .map(|i| Bytes::from(format!("block-{i}-payload")))
            .collect()
    }

    fn exercise(storage: &dyn Storage) {
        storage
            .write_table(1, blocks(3), Bytes::from_static(b"meta1"))
            .unwrap();
        storage
            .write_table(2, blocks(2), Bytes::from_static(b"meta2"))
            .unwrap();
        assert_eq!(storage.table_count(), 2);

        assert_eq!(
            storage.read_block(1, 0).unwrap().as_ref(),
            b"block-0-payload"
        );
        assert_eq!(
            storage.read_block(1, 2).unwrap().as_ref(),
            b"block-2-payload"
        );
        assert_eq!(
            storage.read_block(2, 1).unwrap().as_ref(),
            b"block-1-payload"
        );
        assert_eq!(storage.stats().reads(), 3);
        assert_eq!(storage.stats().writes(), 5);
        assert!(storage.stats().simulated_ns() > 0);

        assert_eq!(storage.read_meta(1).unwrap().as_ref(), b"meta1");
        assert_eq!(storage.read_meta(2).unwrap().as_ref(), b"meta2");
        // Meta reads are not data-block I/Os.
        assert_eq!(storage.stats().reads(), 3);

        assert!(storage.read_block(1, 3).is_err());
        assert!(storage.read_block(9, 0).is_err());
        assert!(storage.write_table(1, blocks(1), Bytes::new()).is_err());

        assert_eq!(storage.list_tables(), vec![1, 2]);
        storage.sync_table(1).unwrap();
        storage.sync_dir().unwrap();
        assert_eq!(storage.stats().syncs(), 2);
        assert!(storage.sync_table(9).is_err());

        storage.delete_table(1).unwrap();
        assert!(storage.read_block(1, 0).is_err());
        assert!(storage.delete_table(1).is_err());
        assert_eq!(storage.table_count(), 1);
        assert_eq!(storage.list_tables(), vec![2]);
    }

    #[test]
    fn mem_storage_semantics() {
        exercise(&MemStorage::new());
    }

    #[test]
    fn file_storage_semantics() {
        let dir = std::env::temp_dir().join(format!("adcache-fs-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        exercise(&FileStorage::open(&dir).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_storage_survives_offset_cache_eviction() {
        let dir = std::env::temp_dir().join(format!("adcache-fs-test2-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = FileStorage::open(&dir).unwrap();
        s.write_table(7, blocks(4), Bytes::from_static(b"m"))
            .unwrap();
        // Drop the cached offsets to force a reload path.
        s.offsets.write().clear();
        assert_eq!(s.read_block(7, 3).unwrap().as_ref(), b"block-3-payload");
        assert_eq!(s.read_meta(7).unwrap().as_ref(), b"m");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_failures_consume_and_recover() {
        // Fault injection moved from IoStats to the FaultStorage decorator;
        // the semantics stay: injected reads fail without touching the
        // device, and pausing the plan restores service.
        use crate::fault::{FaultPlan, FaultStorage};
        let s = FaultStorage::new(
            std::sync::Arc::new(MemStorage::new()),
            1,
            FaultPlan {
                read_transient: 1.0,
                ..FaultPlan::default()
            },
        );
        s.write_table(1, blocks(1), Bytes::new()).unwrap();
        assert!(matches!(s.read_block(1, 0), Err(LsmError::Injected(_))));
        assert!(matches!(s.read_block(1, 0), Err(LsmError::Injected(_))));
        s.set_active(false);
        assert!(s.read_block(1, 0).is_ok());
        // Failed reads are not counted as device I/Os.
        assert_eq!(s.stats().reads(), 1);
    }

    #[test]
    fn cost_model_accumulates_simulated_time() {
        let s = MemStorage::with_cost(CostModel {
            read_block_ns: 100,
            write_block_ns: 10,
            sync_ns: 1000,
        });
        s.write_table(1, blocks(2), Bytes::new()).unwrap();
        assert_eq!(s.stats().simulated_ns(), 20);
        s.read_block(1, 0).unwrap();
        s.read_block(1, 1).unwrap();
        assert_eq!(s.stats().simulated_ns(), 220);
        s.sync_table(1).unwrap();
        s.sync_dir().unwrap();
        assert_eq!(s.stats().simulated_ns(), 2220);
    }
}
