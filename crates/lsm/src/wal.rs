//! Write-ahead log.
//!
//! When the engine runs with durability enabled, every write is appended
//! to the WAL before it touches the memtable (the paper's read path checks
//! "the MemTable and any unflushed data in the Write-ahead Log"). The log
//! is truncated after each memtable flush: at any instant it holds a
//! superset of the memtable, so crash recovery is a simple in-order
//! replay. Records carry a CRC-32 so a torn tail write is detected and
//! recovery stops cleanly at the last complete record.
//!
//! Record layout: `len:u32 | crc32:u32 | payload[len]` where the payload is
//! `kind:u8 | klen:u32 | key | (vlen:u32 | value)?` (value only for puts).

use crate::error::{LsmError, Result};
use crate::fs::MetaFs;
use crate::types::{Entry, Key, KeyEntry};
use bytes::Bytes;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const KIND_PUT: u8 = 1;
const KIND_DELETE: u8 = 2;

/// CRC-32 (IEEE 802.3, reflected), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    // Build the table once.
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// Append-only writer for the WAL file.
///
/// All I/O goes through a [`MetaFs`], so crash drills can interpose a
/// write-back cache: a flushed record has merely *completed*; only
/// [`WalWriter::sync`] makes it durable.
pub struct WalWriter {
    path: PathBuf,
    fs: Arc<dyn MetaFs>,
    /// Records encoded but not yet pushed to the filesystem.
    buf: Vec<u8>,
    /// Bracket [`WalWriter::reset`] with file syncs so the truncation is
    /// both ordered after the preceding appends and itself durable —
    /// without this, a crash can resurrect stale records that shadow data
    /// already flushed to an SSTable. Off under `SyncPolicy::Never` (and
    /// under the `FsyncSite::WalReset` misplacement hook).
    reset_sync: bool,
    /// Records appended to the current segment (since the last reset).
    segment_appends: u64,
    /// Bytes appended to the current segment (since the last reset).
    segment_bytes: u64,
}

impl WalWriter {
    /// Opens (appending) or creates the log at `path`.
    pub fn open(fs: Arc<dyn MetaFs>, path: impl Into<PathBuf>, reset_sync: bool) -> Result<Self> {
        let path = path.into();
        if !fs.exists(&path) {
            fs.write_file(&path, &[])?;
        }
        Ok(WalWriter {
            path,
            fs,
            buf: Vec::new(),
            reset_sync,
            segment_appends: 0,
            segment_bytes: 0,
        })
    }

    /// Whether [`WalWriter::reset`] brackets the truncation with file syncs.
    pub fn reset_sync(&self) -> bool {
        self.reset_sync
    }

    /// Records appended since the last [`WalWriter::reset`].
    pub fn segment_appends(&self) -> u64 {
        self.segment_appends
    }

    /// Bytes appended since the last [`WalWriter::reset`].
    pub fn segment_bytes(&self) -> u64 {
        self.segment_bytes
    }

    /// Appends one write record.
    pub fn append(&mut self, key: &[u8], entry: &Entry) -> Result<()> {
        let mut payload = Vec::with_capacity(key.len() + 16);
        match entry {
            Entry::Put(v) => {
                payload.push(KIND_PUT);
                payload.extend_from_slice(&(key.len() as u32).to_le_bytes());
                payload.extend_from_slice(key);
                payload.extend_from_slice(&(v.len() as u32).to_le_bytes());
                payload.extend_from_slice(v);
            }
            Entry::Tombstone => {
                payload.push(KIND_DELETE);
                payload.extend_from_slice(&(key.len() as u32).to_le_bytes());
                payload.extend_from_slice(key);
            }
        }
        self.buf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(&crc32(&payload).to_le_bytes());
        self.buf.extend_from_slice(&payload);
        self.segment_appends += 1;
        self.segment_bytes += 8 + payload.len() as u64;
        Ok(())
    }

    /// Pushes buffered records to the filesystem (completed, not durable).
    pub fn flush(&mut self) -> Result<()> {
        if !self.buf.is_empty() {
            self.fs.append(&self.path, &self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }

    /// Flushes and fsyncs the log: every record appended so far survives a
    /// crash.
    pub fn sync(&mut self) -> Result<()> {
        self.flush()?;
        self.fs.sync_file(&self.path)?;
        Ok(())
    }

    /// Truncates the log (after the memtable it protected was flushed to
    /// an SSTable).
    ///
    /// With `reset_sync` on, the truncation is bracketed by file syncs:
    /// the first orders it after every preceding append, the second makes
    /// the empty log durable. Skipping the bracket lets a crash keep the
    /// pre-truncate records — they would replay on top of the SSTable that
    /// already holds them, and a *stale* record can shadow newer data.
    pub fn reset(&mut self) -> Result<()> {
        self.flush()?;
        if self.reset_sync {
            self.fs.sync_file(&self.path)?;
        }
        self.fs.truncate(&self.path, 0)?;
        if self.reset_sync {
            self.fs.sync_file(&self.path)?;
        }
        self.segment_appends = 0;
        self.segment_bytes = 0;
        Ok(())
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// What a WAL replay recovered, and what it had to discard.
#[derive(Debug, Default)]
pub struct ReplayOutcome {
    /// Intact records, in append order.
    pub records: Vec<KeyEntry>,
    /// Bytes truncated from a torn tail (0 on a clean log). When nonzero
    /// the file on disk has already been truncated to its valid prefix.
    pub torn_tail_bytes: u64,
}

/// Replays a WAL file in order, distinguishing two failure shapes:
///
/// - **Torn tail** — the *last physical record* is incomplete or fails its
///   CRC. That is exactly what a crash mid-append produces; losing it is
///   not data loss because the record was never acknowledged. The tail is
///   truncated off the file and replay succeeds with
///   [`ReplayOutcome::torn_tail_bytes`] > 0.
/// - **Mid-log corruption** — a record *before* the physical tail fails
///   its CRC. No crash produces that; it is bit rot of acknowledged data,
///   and silently dropping the suffix would lose acknowledged writes. This
///   is a hard [`LsmError::Corruption`].
pub fn replay(fs: &dyn MetaFs, path: &Path) -> Result<ReplayOutcome> {
    let Some(data) = fs.read(path)? else {
        return Ok(ReplayOutcome::default());
    };
    let mut out = Vec::new();
    let mut pos = 0usize;
    let mut torn = false;
    while pos < data.len() {
        if pos + 8 > data.len() {
            torn = true; // partial header at the tail
            break;
        }
        let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
        let want_crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap());
        let start = pos + 8;
        if start + len > data.len() {
            torn = true; // record body runs past EOF
            break;
        }
        let payload = &data[start..start + len];
        if crc32(payload) != want_crc {
            if start + len == data.len() {
                // The final record is exactly the damaged one: physically
                // indistinguishable from a torn append, so recoverable.
                torn = true;
                break;
            }
            return Err(LsmError::Corruption(format!(
                "wal corrupt mid-log at offset {pos}: crc mismatch with {} bytes following",
                data.len() - (start + len)
            )));
        }
        if let Some(ke) = decode_payload(payload)? {
            out.push(ke);
        }
        pos = start + len;
    }
    let mut outcome = ReplayOutcome {
        records: out,
        torn_tail_bytes: 0,
    };
    if torn {
        outcome.torn_tail_bytes = (data.len() - pos) as u64;
        // Truncate to the valid prefix so the writer appends after the last
        // intact record instead of interleaving with torn garbage, and make
        // the repair durable.
        fs.truncate(path, pos as u64)?;
        fs.sync_file(path)?;
    }
    Ok(outcome)
}

fn decode_payload(p: &[u8]) -> Result<Option<KeyEntry>> {
    if p.is_empty() {
        return Ok(None);
    }
    let kind = p[0];
    let take = |pos: usize, n: usize| -> Result<&[u8]> {
        p.get(pos..pos + n)
            .ok_or_else(|| LsmError::Corruption("wal payload truncated".into()))
    };
    let klen = u32::from_le_bytes(take(1, 4)?.try_into().unwrap()) as usize;
    let key: Key = Bytes::copy_from_slice(take(5, klen)?);
    match kind {
        KIND_PUT => {
            let vlen = u32::from_le_bytes(take(5 + klen, 4)?.try_into().unwrap()) as usize;
            let value = Bytes::copy_from_slice(take(9 + klen, vlen)?);
            Ok(Some(KeyEntry {
                key,
                entry: Entry::Put(value),
            }))
        }
        KIND_DELETE => Ok(Some(KeyEntry {
            key,
            entry: Entry::Tombstone,
        })),
        other => Err(LsmError::Corruption(format!(
            "unknown wal record kind {other}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::{RealFs, SimFs};
    use std::io::Write;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("adcache-wal-{}-{name}.log", std::process::id()))
    }

    fn real() -> Arc<dyn MetaFs> {
        Arc::new(RealFs::new())
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = WalWriter::open(real(), &path, false).unwrap();
            w.append(b"k1", &Entry::Put(Bytes::from_static(b"v1")))
                .unwrap();
            w.append(b"k2", &Entry::Tombstone).unwrap();
            w.append(b"k1", &Entry::Put(Bytes::from_static(b"v2")))
                .unwrap();
            w.flush().unwrap();
        }
        let outcome = replay(&RealFs::new(), &path).unwrap();
        assert_eq!(outcome.torn_tail_bytes, 0);
        let records = outcome.records;
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].key.as_ref(), b"k1");
        assert_eq!(records[0].entry, Entry::Put(Bytes::from_static(b"v1")));
        assert!(records[1].entry.is_tombstone());
        assert_eq!(records[2].entry, Entry::Put(Bytes::from_static(b"v2")));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_replays_empty() {
        let path = tmp("missing");
        let _ = std::fs::remove_file(&path);
        assert!(replay(&RealFs::new(), &path).unwrap().records.is_empty());
    }

    #[test]
    fn reset_truncates() {
        let path = tmp("reset");
        let _ = std::fs::remove_file(&path);
        let mut w = WalWriter::open(real(), &path, false).unwrap();
        w.append(b"k", &Entry::Put(Bytes::from_static(b"v")))
            .unwrap();
        w.reset().unwrap();
        assert!(replay(&RealFs::new(), &path).unwrap().records.is_empty());
        // Usable after reset.
        w.append(b"k2", &Entry::Put(Bytes::from_static(b"v2")))
            .unwrap();
        w.flush().unwrap();
        let records = replay(&RealFs::new(), &path).unwrap().records;
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].key.as_ref(), b"k2");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_replay_continues() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = WalWriter::open(real(), &path, false).unwrap();
            w.append(b"good", &Entry::Put(Bytes::from_static(b"v")))
                .unwrap();
            w.flush().unwrap();
        }
        let intact_len = std::fs::metadata(&path).unwrap().len();
        // Simulate a crash mid-append: write a partial record.
        {
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(&100u32.to_le_bytes()).unwrap();
            f.write_all(&0u32.to_le_bytes()).unwrap();
            f.write_all(b"partial").unwrap();
        }
        let outcome = replay(&RealFs::new(), &path).unwrap();
        assert_eq!(outcome.records.len(), 1);
        assert_eq!(outcome.records[0].key.as_ref(), b"good");
        assert_eq!(outcome.torn_tail_bytes, 8 + 7);
        // The file was truncated back to its valid prefix, so a second
        // replay sees a clean log.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), intact_len);
        assert_eq!(replay(&RealFs::new(), &path).unwrap().torn_tail_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_tail_record_recovers_like_a_torn_write() {
        let path = tmp("corrupt-tail");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = WalWriter::open(real(), &path, false).unwrap();
            w.append(b"a", &Entry::Put(Bytes::from_static(b"1")))
                .unwrap();
            w.append(b"b", &Entry::Put(Bytes::from_static(b"2")))
                .unwrap();
            w.flush().unwrap();
        }
        // Flip a byte inside the LAST record's payload: physically
        // indistinguishable from a torn append, so recoverable.
        let mut data = std::fs::read(&path).unwrap();
        let n = data.len();
        data[n - 1] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        let outcome = replay(&RealFs::new(), &path).unwrap();
        assert_eq!(outcome.records.len(), 1, "replay keeps the intact prefix");
        assert_eq!(outcome.records[0].key.as_ref(), b"a");
        assert!(outcome.torn_tail_bytes > 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mid_log_corruption_is_a_hard_error() {
        let path = tmp("corrupt-mid");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = WalWriter::open(real(), &path, false).unwrap();
            w.append(b"a", &Entry::Put(Bytes::from_static(b"1")))
                .unwrap();
            w.append(b"b", &Entry::Put(Bytes::from_static(b"2")))
                .unwrap();
            w.flush().unwrap();
        }
        // Flip a byte inside the FIRST record's payload: acknowledged data
        // rotted, and dropping the suffix would lose acknowledged writes.
        let mut data = std::fs::read(&path).unwrap();
        data[9] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        assert!(matches!(
            replay(&RealFs::new(), &path),
            Err(LsmError::Corruption(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn synced_appends_survive_a_simulated_crash() {
        let fs = Arc::new(SimFs::new());
        let path = PathBuf::from("/sim/wal.log");
        let mut w = WalWriter::open(fs.clone(), &path, true).unwrap();
        fs.sync_dir(&path).unwrap(); // the creation itself must be durable
        w.append(b"k1", &Entry::Put(Bytes::from_static(b"v1")))
            .unwrap();
        w.sync().unwrap();
        w.append(b"k2", &Entry::Put(Bytes::from_static(b"v2")))
            .unwrap();
        w.flush().unwrap(); // completed but not durable
        fs.crash(41);
        let records = replay(fs.as_ref(), &path).unwrap().records;
        // k1 always survives; k2 may or may not (a torn suffix is also
        // legal) — but nothing beyond what was appended can appear.
        assert!(!records.is_empty());
        assert_eq!(records[0].key.as_ref(), b"k1");
        assert!(records.len() <= 2);
    }

    #[test]
    fn unsynced_reset_can_resurrect_stale_records() {
        // With reset_sync off, the truncation sits in the write-back cache
        // while the pre-reset records may already be durable: a crash
        // undoes the truncate and the stale segment replays again. The
        // sync-bracketed reset closes exactly this hole.
        let run = |reset_sync: bool| -> bool {
            let mut resurrected = false;
            for seed in 0..16u64 {
                let fs = Arc::new(SimFs::new());
                let path = PathBuf::from("/sim/wal.log");
                let mut w = WalWriter::open(fs.clone(), &path, reset_sync).unwrap();
                fs.sync_dir(&path).unwrap();
                w.append(b"stale", &Entry::Put(Bytes::from_static(b"old")))
                    .unwrap();
                w.sync().unwrap(); // the stale segment is durable
                w.reset().unwrap(); // ... the memtable it covered flushed
                fs.crash(seed);
                let records = replay(fs.as_ref(), &path).unwrap().records;
                resurrected |= records.iter().any(|r| r.key.as_ref() == b"stale");
            }
            resurrected
        };
        assert!(run(false), "the unsynced-reset hole must be reachable");
        assert!(!run(true), "a sync-bracketed reset must never resurrect");
    }
}
