//! Core value types shared across the engine.

use bytes::Bytes;

/// A user key. Keys are arbitrary byte strings ordered lexicographically.
pub type Key = Bytes;

/// A user value.
pub type Value = Bytes;

/// Identifier of an SSTable file. Monotonically increasing; newer files have
/// larger ids, which doubles as the recency priority for Level-0 runs.
pub type FileId = u64;

/// A single logical entry: a value, or a tombstone marking deletion.
///
/// Tombstones are retained through compactions until they reach the bottom
/// level of the tree (where no older version can exist below them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Entry {
    /// A live value.
    Put(Value),
    /// A deletion marker.
    Tombstone,
}

impl Default for Entry {
    /// The neutral element used when recycling arena slots; a tombstone
    /// carries no payload.
    fn default() -> Self {
        Entry::Tombstone
    }
}

impl Entry {
    /// Returns the live value, or `None` for a tombstone.
    pub fn value(&self) -> Option<&Value> {
        match self {
            Entry::Put(v) => Some(v),
            Entry::Tombstone => None,
        }
    }

    /// Returns `true` if this entry is a deletion marker.
    pub fn is_tombstone(&self) -> bool {
        matches!(self, Entry::Tombstone)
    }

    /// Approximate in-memory charge of the entry payload in bytes.
    pub fn charge(&self) -> usize {
        match self {
            Entry::Put(v) => v.len(),
            Entry::Tombstone => 0,
        }
    }
}

/// A key paired with its entry, the unit flowing through iterators and
/// compaction merges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyEntry {
    /// The user key.
    pub key: Key,
    /// The value or tombstone.
    pub entry: Entry,
}

impl KeyEntry {
    /// Creates a live key-value pair.
    pub fn put(key: impl Into<Key>, value: impl Into<Value>) -> Self {
        KeyEntry {
            key: key.into(),
            entry: Entry::Put(value.into()),
        }
    }

    /// Creates a tombstone for `key`.
    pub fn tombstone(key: impl Into<Key>) -> Self {
        KeyEntry {
            key: key.into(),
            entry: Entry::Tombstone,
        }
    }
}

/// Reference to a physical data block: `(file, index-within-file)`.
///
/// This is the block cache's key type: compactions delete whole files, so
/// invalidation is a per-`FileId` sweep, exactly as in RocksDB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockRef {
    /// Owning SSTable file.
    pub file: FileId,
    /// Zero-based block index within the file.
    pub block_no: u32,
}

impl BlockRef {
    /// Convenience constructor.
    pub fn new(file: FileId, block_no: u32) -> Self {
        BlockRef { file, block_no }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_accessors() {
        let e = Entry::Put(Bytes::from_static(b"v"));
        assert_eq!(e.value().unwrap().as_ref(), b"v");
        assert!(!e.is_tombstone());
        assert_eq!(e.charge(), 1);

        let t = Entry::Tombstone;
        assert!(t.value().is_none());
        assert!(t.is_tombstone());
        assert_eq!(t.charge(), 0);
    }

    #[test]
    fn key_entry_constructors() {
        let p = KeyEntry::put(&b"k"[..], &b"v"[..]);
        assert_eq!(p.key.as_ref(), b"k");
        assert_eq!(p.entry, Entry::Put(Bytes::from_static(b"v")));
        let t = KeyEntry::tombstone(&b"k"[..]);
        assert!(t.entry.is_tombstone());
    }

    #[test]
    fn block_ref_ordering_and_hash() {
        let a = BlockRef::new(1, 0);
        let b = BlockRef::new(1, 1);
        let c = BlockRef::new(2, 0);
        assert!(a < b && b < c);
        let mut set = std::collections::HashSet::new();
        set.insert(a);
        assert!(set.contains(&BlockRef::new(1, 0)));
    }
}
