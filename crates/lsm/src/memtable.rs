//! The in-memory write buffer.
//!
//! Writes (puts and deletes) land in the memtable first; when its byte
//! footprint crosses the configured threshold it is frozen and flushed to a
//! Level-0 SSTable. Deletes are recorded as tombstones so they shadow older
//! on-disk versions until compaction discards them.

use crate::skiplist::SkipList;
use crate::types::{Entry, Key, KeyEntry, Value};

/// A sorted in-memory buffer of the newest writes.
pub struct MemTable {
    map: SkipList<Entry>,
    bytes: usize,
}

impl MemTable {
    /// Creates an empty memtable.
    pub fn new() -> Self {
        MemTable {
            map: SkipList::new(),
            bytes: 0,
        }
    }

    /// Inserts or overwrites `key`.
    pub fn put(&mut self, key: Key, value: Value) {
        self.apply(key, Entry::Put(value));
    }

    /// Records a deletion of `key`.
    pub fn delete(&mut self, key: Key) {
        self.apply(key, Entry::Tombstone);
    }

    fn apply(&mut self, key: Key, entry: Entry) {
        let key_len = key.len();
        let new_charge = entry.charge();
        match self.map.insert(key, entry) {
            // Replacement: the key and per-node overhead stay charged; only
            // the value payload delta applies.
            Some(old) => {
                self.bytes = self.bytes.saturating_sub(old.charge()) + new_charge;
            }
            None => {
                self.bytes += key_len + new_charge + 16;
            }
        }
    }

    /// Looks up the newest entry for `key`, if the memtable holds one.
    /// `Some(Entry::Tombstone)` means "deleted — stop searching".
    pub fn get(&self, key: &[u8]) -> Option<&Entry> {
        self.map.get(key)
    }

    /// Iterates entries with keys `>= from` in ascending order.
    pub fn iter_from<'a>(&'a self, from: &[u8]) -> impl Iterator<Item = KeyEntry> + 'a {
        self.map.iter_from(from).map(|(k, e)| KeyEntry {
            key: k.clone(),
            entry: e.clone(),
        })
    }

    /// Iterates every entry in ascending order (used by flush).
    pub fn iter(&self) -> impl Iterator<Item = KeyEntry> + '_ {
        self.map.iter().map(|(k, e)| KeyEntry {
            key: k.clone(),
            entry: e.clone(),
        })
    }

    /// Approximate memory footprint in bytes.
    pub fn approximate_bytes(&self) -> usize {
        self.bytes
    }

    /// Number of distinct keys buffered.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl Default for MemTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn put_get_delete() {
        let mut m = MemTable::new();
        assert!(m.is_empty());
        m.put(b("k1"), b("v1"));
        m.put(b("k2"), b("v2"));
        assert_eq!(m.get(b"k1"), Some(&Entry::Put(b("v1"))));
        assert_eq!(m.len(), 2);

        m.delete(b("k1"));
        assert_eq!(m.get(b"k1"), Some(&Entry::Tombstone));
        assert_eq!(m.get(b"k3"), None);
        // Tombstone replaces, does not add a key.
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn overwrite_keeps_latest() {
        let mut m = MemTable::new();
        m.put(b("k"), b("old"));
        m.put(b("k"), b("new"));
        assert_eq!(m.get(b"k").unwrap().value().unwrap().as_ref(), b"new");
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn bytes_grow_with_inserts() {
        let mut m = MemTable::new();
        let before = m.approximate_bytes();
        m.put(b("key"), Bytes::from(vec![0u8; 1000]));
        assert!(m.approximate_bytes() >= before + 1000);
    }

    #[test]
    fn iteration_is_sorted_and_seekable() {
        let mut m = MemTable::new();
        for k in ["d", "a", "c", "b"] {
            m.put(b(k), b("v"));
        }
        let keys: Vec<_> = m.iter().map(|ke| ke.key).collect();
        assert_eq!(keys, vec![b("a"), b("b"), b("c"), b("d")]);
        let keys: Vec<_> = m.iter_from(b"b9").map(|ke| ke.key).collect();
        assert_eq!(keys, vec![b("c"), b("d")]);
    }
}
