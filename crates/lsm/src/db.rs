//! The LSM-tree engine facade.
//!
//! [`LsmTree`] wires together the memtable, the level manifest, flushes and
//! compactions into the read/write API the cache layer builds on:
//!
//! - writes land in the memtable; crossing the flush threshold synchronously
//!   flushes to Level 0 and runs any compactions that become due;
//! - point lookups search memtable, then Level-0 runs newest-first, then one
//!   candidate table per deeper level, skipping via Bloom filters;
//! - scans merge the memtable with every overlapping run.
//!
//! All block fetches flow through the caller-supplied [`BlockProvider`] —
//! the seam where AdCache's block cache intercepts — while compactions use a
//! private direct provider so background I/O neither hits nor pollutes the
//! cache.
//!
//! Concurrency follows the paper's Section 4.4: reads share a `RwLock` read
//! guard; writes, flushes and compactions are exclusive.

use crate::compaction::{run_compaction, CompactionEvent, CompactionListener};
use crate::error::{LsmError, Result};
use crate::fault::{CrashController, CrashPoint};
use crate::fs::{MetaFs, RealFs};
use crate::iterator::{MergingIter, Source};
use crate::manifest::{recover_manifest, write_manifest, ManifestState, ManifestSync};
use crate::memtable::MemTable;
use crate::options::{FsyncSite, Options, SyncPolicy};
use crate::sstable::{table_get, BlockProvider, TableBuilder, TableIter, TableMeta};
use crate::storage::Storage;
use crate::timed_lock::{
    LockPath, LockPathSnapshot, TimedReadGuard, TimedRwLock, TimedWriteGuard, LOCK_PATHS,
};
use crate::types::{Entry, FileId, Key, Value};
use crate::version::{CompactionTask, Version};
use crate::wal::{replay, WalWriter};
use adcache_obs::{Counter, Event, Obs};
use parking_lot::RwLock;
use std::collections::{HashSet, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Pre-registered observability hooks: the handle plus the counters the
/// engine bumps, resolved once so event paths never touch the registry lock.
#[derive(Default)]
struct ObsHooks {
    obs: Obs,
    flushes: Counter,
    flush_entries: Counter,
    compactions: Counter,
    compaction_block_reads: Counter,
    compaction_block_writes: Counter,
    wal_appends: Counter,
    wal_bytes: Counter,
    group_commit_rounds: Counter,
    group_commit_batches: Counter,
    seals: Counter,
    write_stalls: Counter,
}

impl ObsHooks {
    fn new(obs: Obs) -> Self {
        ObsHooks {
            flushes: obs.counter("lsm.flushes"),
            flush_entries: obs.counter("lsm.flush_entries"),
            compactions: obs.counter("lsm.compactions"),
            compaction_block_reads: obs.counter("lsm.compaction_block_reads"),
            compaction_block_writes: obs.counter("lsm.compaction_block_writes"),
            wal_appends: obs.counter("lsm.wal_appends"),
            wal_bytes: obs.counter("lsm.wal_bytes"),
            group_commit_rounds: obs.counter("lsm.group_commit.rounds"),
            group_commit_batches: obs.counter("lsm.group_commit.batches"),
            seals: obs.counter("lsm.seals"),
            write_stalls: obs.counter("lsm.write_stalls"),
            obs,
        }
    }
}

/// Engine-level counters (distinct from device I/O counters, which live in
/// [`crate::storage::IoStats`]).
#[derive(Debug, Default)]
pub struct DbStats {
    /// Memtable flushes performed.
    pub flushes: AtomicU64,
    /// Compactions performed.
    pub compactions: AtomicU64,
    /// Device block reads attributable to compactions. Subtract from the
    /// storage read counter to obtain query-path SST reads.
    pub compaction_block_reads: AtomicU64,
    /// Device block writes attributable to compactions.
    pub compaction_block_writes: AtomicU64,
    /// Times a write observed Level 0 at or beyond the slowdown threshold.
    pub write_slowdowns: AtomicU64,
    /// Device blocks written by memtable flushes (the denominator of write
    /// amplification).
    pub flush_block_writes: AtomicU64,
    /// Query-path block reads retried after a transient error or checksum
    /// failure.
    pub read_retries: AtomicU64,
    /// Blocks quarantined after failing checksum verification even with
    /// retries.
    pub quarantined_blocks: AtomicU64,
    /// Bytes truncated from a torn WAL tail during the last recovery.
    pub wal_torn_tail_bytes: AtomicU64,
    /// WAL records replayed during the last recovery.
    pub wal_replayed_records: AtomicU64,
    /// 1 when the last recovery rolled the manifest back to its previous
    /// good version.
    pub manifest_rollbacks: AtomicU64,
    /// Obsolete-table deletions that failed after compaction (orphan files
    /// left for a future sweep; never a correctness problem).
    pub compaction_delete_failures: AtomicU64,
    /// Orphan table files deleted by the recovery sweep (files present on
    /// the device but absent from the recovered manifest).
    pub orphan_tables_swept: AtomicU64,
    /// Manifest-referenced tables missing or unreadable at recovery, and
    /// dropped because the sync policy permits it (`SyncPolicy::Never`
    /// only; under stronger policies this is a hard error).
    pub missing_tables_dropped: AtomicU64,
    /// Memtables sealed (frozen + WAL segment rotated) for a background
    /// flush.
    pub seals: AtomicU64,
    /// Writes that stalled because their stripe's sealed memtable was
    /// still in flight and the active one was over its hard budget (or
    /// Level 0 hit the stop threshold).
    pub write_stalls: AtomicU64,
    /// Group-commit rounds led (each is one WAL push + at most one fsync).
    pub group_commits: AtomicU64,
    /// Write batches committed through group commit (`/ group_commits` is
    /// the mean group size).
    pub group_commit_batches: AtomicU64,
}

impl DbStats {
    /// Compactions counter snapshot.
    pub fn compactions(&self) -> u64 {
        self.compactions.load(Ordering::Relaxed)
    }

    /// Compaction read counter snapshot.
    pub fn compaction_block_reads(&self) -> u64 {
        self.compaction_block_reads.load(Ordering::Relaxed)
    }

    /// Group-commit `(rounds, batches)` snapshot; `batches / rounds` is the
    /// mean group size a leader drained.
    pub fn group_commit(&self) -> (u64, u64) {
        (
            self.group_commits.load(Ordering::Relaxed),
            self.group_commit_batches.load(Ordering::Relaxed),
        )
    }

    /// Seals (memtables frozen for background flush) snapshot.
    pub fn seals(&self) -> u64 {
        self.seals.load(Ordering::Relaxed)
    }

    /// Write-stall counter snapshot.
    pub fn write_stalls(&self) -> u64 {
        self.write_stalls.load(Ordering::Relaxed)
    }
}

impl LsmTree {
    /// Write amplification so far: every device block written (flushes plus
    /// compaction rewrites) per block of fresh data flushed. 1.0 means no
    /// rewriting has happened yet; leveled LSM trees typically settle in
    /// the 3–10× range depending on the size ratio and update skew.
    pub fn write_amplification(&self) -> f64 {
        let flushed = self.stats.flush_block_writes.load(Ordering::Relaxed);
        if flushed == 0 {
            return 0.0;
        }
        self.storage.stats().writes() as f64 / flushed as f64
    }
}

/// Where (and through which filesystem) the WAL and manifest live.
struct Durability {
    dir: PathBuf,
    fs: Arc<dyn MetaFs>,
}

/// A WAL segment rotated out of the active log by a seal; its records are
/// wholly contained in the sealed (or recovered) memtable and the file is
/// deleted once a flush commits a manifest that covers them.
struct SealedSegment {
    path: PathBuf,
    appends: u64,
    bytes: u64,
}

struct Inner {
    mem: MemTable,
    /// A frozen memtable awaiting its (background) flush. Reads check it
    /// between `mem` and Level 0; writers never touch it.
    imm: Option<Arc<MemTable>>,
    version: Version,
    /// Present when durability is enabled; writes are logged before they
    /// enter the memtable and the log truncates at each flush.
    wal: Option<WalWriter>,
    /// Rotated WAL segments covering `imm` (or, right after recovery, the
    /// replayed prefix of `mem`).
    sealed: Vec<SealedSegment>,
    /// Name counter for the next sealed segment file.
    wal_seq: u64,
}

/// One writer's batch waiting in the group-commit queue. The leader (the
/// writer that wins the engine write lock) drains the queue, performs one
/// WAL push + at most one fsync for the whole group, applies every batch,
/// and posts each follower's result here; followers discover it when they
/// acquire the lock themselves.
struct CommitSlot {
    batch: std::sync::Mutex<Vec<(Key, Entry)>>,
    result: std::sync::Mutex<Option<std::result::Result<(), String>>>,
}

impl CommitSlot {
    fn new(batch: Vec<(Key, Entry)>) -> Self {
        CommitSlot {
            batch: std::sync::Mutex::new(batch),
            result: std::sync::Mutex::new(None),
        }
    }
}

/// A single-writer, multi-reader LSM-tree over a [`Storage`] device.
pub struct LsmTree {
    opts: Options,
    storage: Arc<dyn Storage>,
    inner: TimedRwLock<Inner>,
    listeners: RwLock<Vec<Arc<dyn CompactionListener>>>,
    next_file: AtomicU64,
    stats: DbStats,
    /// WAL + manifest location and filesystem when durability is enabled.
    durability: Option<Durability>,
    /// Observability hooks; disabled (free) unless [`LsmTree::set_obs`] ran.
    obs: RwLock<ObsHooks>,
    /// Armable crash points for recovery tests; `None` in production.
    crash: RwLock<Option<Arc<CrashController>>>,
    /// `(file, block)` addresses that failed checksum verification after
    /// retries. Their cached copies are invalidated and never re-admitted.
    quarantine: RwLock<HashSet<(FileId, u32)>>,
    /// File-id allocation stride: stripes sharing one storage device each
    /// allocate from their own residue class (`id % stride ==
    /// stripe_index`), so ids never collide without coordination.
    id_stride: u64,
    /// Writers' group-commit queue (see [`CommitSlot`]).
    commit_queue: std::sync::Mutex<VecDeque<Arc<CommitSlot>>>,
    /// Set when a crash point fires inside a background maintenance job:
    /// the process is considered dead and every subsequent operation
    /// errors until the instance is dropped and reopened.
    poisoned: AtomicBool,
    /// Serializes maintenance work (background worker vs explicit flush).
    maintenance: std::sync::Mutex<()>,
    /// Backpressure parking lot: over-budget writers wait here until a
    /// flush or compaction frees room on *this* stripe.
    stall_lock: std::sync::Mutex<()>,
    stall_cv: std::sync::Condvar,
    /// Invoked (outside the engine lock) when a seal hands flush work to a
    /// background pool; `None` falls back to inline maintenance.
    maintenance_hook: RwLock<Option<Arc<dyn Fn() + Send + Sync>>>,
}

impl LsmTree {
    /// Creates an empty tree over `storage` (no durability: nothing
    /// survives a process restart except what the storage backend holds).
    pub fn new(opts: Options, storage: Arc<dyn Storage>) -> Result<Self> {
        opts.validate()
            .map_err(crate::error::LsmError::InvalidArgument)?;
        let version = Version::new(opts.max_levels);
        let (stride, offset) = (opts.stripes.max(1) as u64, opts.stripe_index as u64);
        Ok(LsmTree {
            storage,
            inner: TimedRwLock::new(Inner {
                mem: MemTable::new(),
                imm: None,
                version,
                wal: None,
                sealed: Vec::new(),
                wal_seq: 0,
            }),
            listeners: RwLock::new(Vec::new()),
            next_file: AtomicU64::new(first_file_id(stride, offset)),
            stats: DbStats::default(),
            durability: None,
            obs: RwLock::new(ObsHooks::default()),
            crash: RwLock::new(None),
            quarantine: RwLock::new(HashSet::new()),
            id_stride: stride,
            commit_queue: std::sync::Mutex::new(VecDeque::new()),
            poisoned: AtomicBool::new(false),
            maintenance: std::sync::Mutex::new(()),
            stall_lock: std::sync::Mutex::new(()),
            stall_cv: std::sync::Condvar::new(),
            maintenance_hook: RwLock::new(None),
            opts,
        })
    }

    /// Opens (or creates) a durable tree: the manifest in `dir` restores
    /// the level structure from `storage`, the WAL replays unflushed
    /// writes into the memtable, and all subsequent writes are logged
    /// before they are applied.
    pub fn with_durability(
        opts: Options,
        storage: Arc<dyn Storage>,
        dir: impl Into<PathBuf>,
    ) -> Result<Self> {
        Self::with_durability_fs(opts, storage, dir, Arc::new(RealFs::new()))
    }

    /// [`LsmTree::with_durability`] over an explicit [`MetaFs`] — the seam
    /// crash drills use to interpose a simulated write-back cache
    /// ([`crate::fs::SimFs`]) under the WAL and manifest.
    pub fn with_durability_fs(
        opts: Options,
        storage: Arc<dyn Storage>,
        dir: impl Into<PathBuf>,
        fs: Arc<dyn MetaFs>,
    ) -> Result<Self> {
        opts.validate()
            .map_err(crate::error::LsmError::InvalidArgument)?;
        let dir = dir.into();
        fs.create_dir_all(&dir)?;

        // Restore the version from the manifest, re-reading pinned table
        // metadata from storage. A corrupt (or mid-commit-missing) manifest
        // rolls back to the previous good version; the WAL replay below
        // still covers everything the lost version added from the memtable.
        let stats = DbStats::default();
        let (manifest_state, rolled_back) = recover_manifest(fs.as_ref(), &dir.join("MANIFEST"))?;
        if rolled_back {
            stats.manifest_rollbacks.store(1, Ordering::Relaxed);
        }
        let mut version = Version::new(opts.max_levels);
        let (stride, offset) = (opts.stripes.max(1) as u64, opts.stripe_index as u64);
        let mut next_file = first_file_id(stride, offset);
        let mut live: HashSet<FileId> = HashSet::new();
        if let Some(state) = manifest_state {
            next_file = align_file_id(state.next_file, stride, offset);
            for (level, id) in state.tables {
                let meta = match storage.read_meta(id).and_then(|m| TableMeta::decode(&m)) {
                    Ok(meta) => meta,
                    Err(e) if opts.sync == SyncPolicy::Never => {
                        // Without fsyncs the manifest can legitimately
                        // outlive a table the device cache dropped; the
                        // table's records are lost (the user opted into
                        // that), but recovery must still serve the rest.
                        let _ = e;
                        stats.missing_tables_dropped.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    // Under `always`/`on_flush` a dangling manifest
                    // reference means the engine broke its own fsync
                    // ordering — surface it, never paper over it.
                    Err(e) => return Err(e),
                };
                live.insert(id);
                version.restore_table(level, Arc::new(meta))?;
            }
            version.check_level_invariants()?;
        }

        // Sweep orphans: tables on the device that no recovered manifest
        // references (interrupted flushes and compactions leave them).
        // Deleting them — and bumping the id allocator past everything on
        // the device — prevents a recovered engine from colliding with a
        // leftover file when it re-allocates an id the lost manifest had
        // handed out.
        let mut swept = 0u64;
        for id in storage.list_tables() {
            if stride > 1 && id % stride != offset {
                // Another stripe's file on the shared device: its manifest
                // shard, not ours, decides whether it lives.
                continue;
            }
            next_file = next_file.max(id + stride);
            if !live.contains(&id) {
                storage.delete_table(id)?;
                swept += 1;
            }
        }
        stats.orphan_tables_swept.store(swept, Ordering::Relaxed);
        if swept > 0 {
            // The deletions must outlive a second crash, or the orphans
            // resurrect after the id allocator was already persisted.
            let _ = storage.sync_dir();
        }

        // Replay unflushed writes: first any sealed WAL segments (rotated
        // by a seal whose background flush never committed its manifest),
        // oldest first, then the active log on top. A torn tail (crash
        // mid-append) was truncated by `replay` and is not an error;
        // mid-log corruption is. Surviving segments are carried in the
        // recovered state so the next flush deletes them.
        let wal_path = dir.join("wal.log");
        let mut mem = MemTable::new();
        let mut sealed: Vec<SealedSegment> = Vec::new();
        let mut wal_seq = 0u64;
        let mut replayed = 0u64;
        let mut torn = 0u64;
        let mut segments: Vec<(u64, PathBuf)> = Vec::new();
        for path in fs.list_dir(&dir)? {
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if let Some(seq) = name
                .strip_prefix("wal-")
                .and_then(|r| r.strip_suffix(".log"))
                .and_then(|r| r.parse::<u64>().ok())
            {
                segments.push((seq, path));
            }
        }
        segments.sort_unstable();
        for (seq, path) in segments {
            wal_seq = wal_seq.max(seq + 1);
            let outcome = replay(fs.as_ref(), &path)?;
            let appends = outcome.records.len() as u64;
            replayed += appends;
            torn += outcome.torn_tail_bytes;
            for ke in outcome.records {
                match ke.entry {
                    Entry::Put(v) => mem.put(ke.key, v),
                    Entry::Tombstone => mem.delete(ke.key),
                }
            }
            let bytes = fs.len(&path).unwrap_or(0);
            sealed.push(SealedSegment {
                path,
                appends,
                bytes,
            });
        }
        let outcome = replay(fs.as_ref(), &wal_path)?;
        replayed += outcome.records.len() as u64;
        torn += outcome.torn_tail_bytes;
        stats
            .wal_replayed_records
            .store(replayed, Ordering::Relaxed);
        stats.wal_torn_tail_bytes.store(torn, Ordering::Relaxed);
        for ke in outcome.records {
            match ke.entry {
                Entry::Put(v) => mem.put(ke.key, v),
                Entry::Tombstone => mem.delete(ke.key),
            }
        }
        let reset_sync =
            opts.sync != SyncPolicy::Never && opts.misplaced_fsync != Some(FsyncSite::WalReset);
        let wal = WalWriter::open(fs.clone(), &wal_path, reset_sync)?;
        if opts.sync != SyncPolicy::Never {
            // A freshly created WAL is only durable once its directory
            // entry is — without this, a crash before the first manifest
            // commit silently discards the whole log, synced appends and
            // all.
            fs.sync_dir(&dir)?;
            let io = storage.stats();
            io.syncs.fetch_add(1, Ordering::Relaxed);
            io.charge_ns(storage.sync_cost_ns());
        }

        Ok(LsmTree {
            storage,
            inner: TimedRwLock::new(Inner {
                mem,
                imm: None,
                version,
                wal: Some(wal),
                sealed,
                wal_seq,
            }),
            listeners: RwLock::new(Vec::new()),
            next_file: AtomicU64::new(next_file),
            stats,
            durability: Some(Durability { dir, fs }),
            obs: RwLock::new(ObsHooks::default()),
            crash: RwLock::new(None),
            quarantine: RwLock::new(HashSet::new()),
            id_stride: stride,
            commit_queue: std::sync::Mutex::new(VecDeque::new()),
            poisoned: AtomicBool::new(false),
            maintenance: std::sync::Mutex::new(()),
            stall_lock: std::sync::Mutex::new(()),
            stall_cv: std::sync::Condvar::new(),
            maintenance_hook: RwLock::new(None),
            opts,
        })
    }

    fn persist_manifest(&self, inner: &Inner) -> Result<()> {
        let Some(d) = &self.durability else {
            return Ok(());
        };
        self.crash_check(CrashPoint::BeforeManifestCommit)?;
        let mut tables = Vec::new();
        for level in 0..inner.version.max_levels() {
            for t in inner.version.level(level) {
                tables.push((level, t.id));
            }
        }
        let state = ManifestState {
            next_file: self.next_file.load(Ordering::Relaxed),
            tables,
        };
        let syncing = self.opts.sync != SyncPolicy::Never;
        let sync = ManifestSync {
            file: syncing,
            dir: syncing && self.opts.misplaced_fsync != Some(FsyncSite::ManifestDir),
        };
        write_manifest(d.fs.as_ref(), &d.dir.join("MANIFEST"), &state, sync)?;
        let mut syncs = 0u64;
        if sync.file {
            syncs += 1;
        }
        if sync.dir {
            syncs += 1;
        }
        if syncs > 0 {
            self.charge_meta_syncs(syncs);
            self.obs.read().obs.emit(|| Event::SyncIssued {
                target: "manifest".into(),
                file: 0,
            });
        }
        Ok(())
    }

    /// Charges `n` WAL/manifest fsyncs to the device's simulated clock (the
    /// metadata files bypass the block device but share its platter).
    fn charge_meta_syncs(&self, n: u64) {
        let stats = self.storage.stats();
        stats.syncs.fetch_add(n, Ordering::Relaxed);
        stats.charge_ns(n * self.storage.sync_cost_ns());
    }

    /// Whether the `always` policy requires an fsync after every WAL write
    /// batch (the misplaced-fsync hook deliberately omits it to prove the
    /// crash drills catch the resulting torn acked tail).
    fn wal_sync_per_write(&self) -> bool {
        self.opts.sync == SyncPolicy::Always
            && self.opts.misplaced_fsync != Some(FsyncSite::WalAppend)
    }

    /// Charges `n` WAL fsyncs and journals them.
    fn note_wal_sync(&self, n: u64) {
        self.charge_meta_syncs(n);
        self.obs.read().obs.emit(|| Event::SyncIssued {
            target: "wal".into(),
            file: 0,
        });
    }

    /// Makes a freshly written table durable per the sync policy: fsync the
    /// file, then the device directory so the entry itself survives. Runs
    /// *before* the manifest references the table — the ordering the
    /// manifest commit's own durability depends on.
    fn sync_new_tables(&self, ids: &[FileId]) -> Result<()> {
        if self.durability.is_none() || self.opts.sync == SyncPolicy::Never {
            return Ok(());
        }
        for &id in ids {
            self.storage.sync_table(id)?;
            self.obs.read().obs.emit(|| Event::SyncIssued {
                target: "sst".into(),
                file: id,
            });
        }
        if self.opts.misplaced_fsync != Some(FsyncSite::SstDir) {
            self.storage.sync_dir()?;
            self.obs.read().obs.emit(|| Event::SyncIssued {
                target: "dir".into(),
                file: 0,
            });
        }
        Ok(())
    }

    /// The engine's options.
    pub fn options(&self) -> &Options {
        &self.opts
    }

    /// The underlying storage device (for I/O counters).
    pub fn storage(&self) -> &Arc<dyn Storage> {
        &self.storage
    }

    /// Engine counters.
    pub fn stats(&self) -> &DbStats {
        &self.stats
    }

    /// Registers a compaction observer (e.g. the block cache's invalidator).
    /// Listeners run under the engine write lock and must not re-enter the
    /// engine.
    pub fn add_compaction_listener(&self, l: Arc<dyn CompactionListener>) {
        self.listeners.write().push(l);
    }

    /// Attaches an observability handle. Flushes, compactions and WAL resets
    /// emit journal events and bump `lsm.*` counters through it; a disabled
    /// handle (the default) keeps all of that free.
    pub fn set_obs(&self, obs: Obs) {
        // Recovery runs before an Obs handle can be attached, so journal
        // what the open had to repair retroactively.
        let torn = self.stats.wal_torn_tail_bytes.load(Ordering::Relaxed);
        if torn > 0 {
            obs.emit(|| Event::WalTornTail {
                truncated_bytes: torn,
                recovered_records: self.stats.wal_replayed_records.load(Ordering::Relaxed),
            });
        }
        if self.stats.manifest_rollbacks.load(Ordering::Relaxed) > 0 {
            obs.emit(|| Event::ManifestRollback {
                reason: "current manifest missing or corrupt at open".into(),
            });
        }
        let swept = self.stats.orphan_tables_swept.load(Ordering::Relaxed);
        if swept > 0 {
            obs.emit(|| Event::OrphanSwept { files: swept });
        }
        if self.opts.stripes > 1 {
            // Striped engines account the lock twice: once into the
            // aggregate `engine.lock.*` counters every stripe shares, once
            // into this stripe's own `engine.stripe.<i>.lock.*` set.
            let stripe = format!("engine.stripe.{}.lock", self.opts.stripe_index);
            self.inner
                .attach_obs_prefixes(&obs, &["engine.lock", &stripe]);
        } else {
            self.inner.attach_obs(&obs, "engine.lock");
        }
        *self.obs.write() = ObsHooks::new(obs);
    }

    /// Acquires the engine lock shared, accounting wait/hold to `path` and
    /// journaling a `LockContention` event when the wait blows the budget.
    fn lock_read(&self, path: LockPath) -> TimedReadGuard<'_, Inner> {
        let guard = self.inner.read(path);
        self.note_lock_wait(path, guard.wait_ns());
        guard
    }

    /// Exclusive counterpart of [`lock_read`](Self::lock_read).
    fn lock_write(&self, path: LockPath) -> TimedWriteGuard<'_, Inner> {
        let guard = self.inner.write(path);
        self.note_lock_wait(path, guard.wait_ns());
        guard
    }

    fn note_lock_wait(&self, path: LockPath, wait_ns: u64) {
        let budget = self.opts.lock_wait_budget_ns;
        // wait_ns is always 0 when lock timing is off, so the disabled
        // path never takes the obs lock here.
        if budget > 0 && wait_ns > budget {
            self.obs.read().obs.emit(|| Event::LockContention {
                path: path.label().to_string(),
                wait_ns,
                budget_ns: budget,
            });
        }
    }

    /// Per-path engine-lock counters ([`LockPath::ALL`] order). All zero
    /// until an enabled obs handle is attached.
    pub fn lock_stats(&self) -> [LockPathSnapshot; LOCK_PATHS] {
        self.inner.stats()
    }

    /// Installs a [`CrashController`] whose armed [`CrashPoint`] will abort
    /// the matching engine sequence with [`LsmError::Injected`]. After a
    /// crash fires the instance must be dropped and reopened — exactly the
    /// contract of a real process kill.
    pub fn set_crash_controller(&self, cc: Arc<CrashController>) {
        *self.crash.write() = Some(cc);
    }

    fn crash_check(&self, point: CrashPoint) -> Result<()> {
        let guard = self.crash.read();
        let Some(cc) = guard.as_ref() else {
            return Ok(());
        };
        let r = cc.check(point);
        if r.is_err() {
            let hooks = self.obs.read();
            hooks.obs.emit(|| Event::CrashInjected {
                point: point.label().to_string(),
            });
        }
        r
    }

    /// Whether an error class is worth retrying on the read path: injected
    /// or device I/O errors are transient by definition, and a checksum
    /// failure may be a corrupted in-flight copy rather than media damage
    /// (a re-read from the device distinguishes the two).
    fn read_error_is_retryable(e: &LsmError) -> bool {
        matches!(
            e,
            LsmError::Injected(_) | LsmError::Io(_) | LsmError::Corruption(_)
        )
    }

    /// Runs `f` with up to `opts.read_retries` bounded retries, charging an
    /// exponentially growing backoff to the simulated clock between
    /// attempts.
    fn with_read_retries<T>(&self, mut f: impl FnMut() -> Result<T>) -> Result<T> {
        let mut backoff = self.opts.retry_backoff_ns;
        let mut attempt = 0u32;
        loop {
            match f() {
                Err(e) if attempt < self.opts.read_retries && Self::read_error_is_retryable(&e) => {
                    attempt += 1;
                    self.stats.read_retries.fetch_add(1, Ordering::Relaxed);
                    self.storage.stats().charge_ns(backoff);
                    backoff = backoff.saturating_mul(2);
                }
                other => return other,
            }
        }
    }

    /// Records a block that failed verification after retries: the address
    /// is quarantined, the journal notified, and every cached block of the
    /// file is invalidated so a stale or corrupt copy cannot be served.
    fn note_quarantine(&self, provider: &dyn BlockProvider, file: FileId, block: u32) {
        if self.quarantine.write().insert((file, block)) {
            self.stats
                .quarantined_blocks
                .fetch_add(1, Ordering::Relaxed);
            let hooks = self.obs.read();
            hooks.obs.emit(|| Event::BlockQuarantined {
                file,
                block: block as u64,
            });
        }
        provider.invalidate_files(&[file]);
    }

    /// Addresses quarantined after failing checksum verification, sorted.
    pub fn quarantined(&self) -> Vec<(FileId, u32)> {
        let mut v: Vec<_> = self.quarantine.read().iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Query-path SST block reads so far: total device reads minus those
    /// attributable to compactions. This is the paper's "SST reads" metric.
    pub fn query_block_reads(&self) -> u64 {
        self.storage
            .stats()
            .reads()
            .saturating_sub(self.stats.compaction_block_reads.load(Ordering::Relaxed))
    }

    fn alloc_file(&self) -> u64 {
        self.next_file.fetch_add(self.id_stride, Ordering::Relaxed)
    }

    /// Inserts or overwrites `key`.
    pub fn put(&self, key: Key, value: Value) -> Result<()> {
        self.commit(vec![(key, Entry::Put(value))])
    }

    /// Deletes `key` (writes a tombstone).
    pub fn delete(&self, key: Key) -> Result<()> {
        self.commit(vec![(key, Entry::Tombstone)])
    }

    /// Applies a batch of writes atomically with respect to readers and to
    /// crash recovery: all records reach the WAL before any reaches the
    /// memtable, and the engine write lock is held across the whole batch
    /// so no reader observes a partial application.
    pub fn write_batch(&self, batch: Vec<(Key, Entry)>) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        self.commit(batch)
    }

    /// Group commit. The batch enters a queue; whichever enqueued writer
    /// wins the engine write lock becomes the leader and commits *every*
    /// queued batch with a single WAL push (and at most one fsync under
    /// `always`). Followers discover their posted result when they acquire
    /// the lock themselves — the lock handoff is the wakeup, so the
    /// uncontended path costs one extra (uncontended) mutex lock and
    /// nothing else.
    fn commit(&self, batch: Vec<(Key, Entry)>) -> Result<()> {
        self.check_poison()?;
        self.wait_for_write_budget()?;
        let slot = Arc::new(CommitSlot::new(batch));
        self.commit_queue.lock().unwrap().push_back(slot.clone());
        let mut inner = self.lock_write(LockPath::Write);
        if let Some(result) = slot.result.lock().unwrap().take() {
            // A concurrent leader already committed this batch.
            return result.map_err(|msg| LsmError::Io(std::io::Error::other(msg)));
        }
        let group: Vec<Arc<CommitSlot>> = self.commit_queue.lock().unwrap().drain(..).collect();
        let applied = self.apply_group(&mut inner, &group);
        for s in &group {
            if Arc::ptr_eq(s, &slot) {
                continue;
            }
            *s.result.lock().unwrap() = Some(match &applied {
                Ok(()) => Ok(()),
                // Followers get a stringified copy; the leader keeps the
                // original error (the variant matters to crash drills).
                Err(e) => Err(e.to_string()),
            });
        }
        applied?;
        // Only the leader pays for the maintenance the group's application
        // made due — the same contract as the old per-write flush check.
        self.post_write_maintenance(&mut inner)
    }

    /// Leader half of group commit: append every queued batch to the WAL
    /// (one flush, at most one fsync), then apply them to the memtable in
    /// queue order.
    fn apply_group(&self, inner: &mut Inner, group: &[Arc<CommitSlot>]) -> Result<()> {
        if inner.version.level_files(0) >= self.opts.l0_slowdown_files {
            self.stats
                .write_slowdowns
                .fetch_add(group.len() as u64, Ordering::Relaxed);
        }
        if let Some(wal) = inner.wal.as_mut() {
            for slot in group {
                for (key, entry) in slot.batch.lock().unwrap().iter() {
                    wal.append(key, entry)?;
                }
            }
            if self.wal_sync_per_write() {
                wal.sync()?;
                self.note_wal_sync(1);
            } else {
                wal.flush()?;
            }
        }
        for slot in group {
            let batch = std::mem::take(&mut *slot.batch.lock().unwrap());
            for (key, entry) in batch {
                match entry {
                    Entry::Put(v) => inner.mem.put(key, v),
                    Entry::Tombstone => inner.mem.delete(key),
                }
            }
        }
        self.stats.group_commits.fetch_add(1, Ordering::Relaxed);
        self.stats
            .group_commit_batches
            .fetch_add(group.len() as u64, Ordering::Relaxed);
        {
            let hooks = self.obs.read();
            hooks.group_commit_rounds.add(1);
            hooks.group_commit_batches.add(group.len() as u64);
        }
        Ok(())
    }

    /// After a group lands: flush inline (classic mode) or seal for the
    /// background pool when the memtable crosses its budget.
    fn post_write_maintenance(&self, inner: &mut Inner) -> Result<()> {
        if inner.mem.approximate_bytes() < self.opts.memtable_size {
            return Ok(());
        }
        if !self.background_on() {
            self.flush_locked(inner)?;
            return self.compact_due_locked(inner);
        }
        if inner.imm.is_none() {
            self.seal_locked(inner)?;
            self.kick_maintenance();
        }
        // A seal is already in flight: the budget gate at commit entry is
        // what stalls writers, and this write already paid for its room.
        Ok(())
    }

    /// Whether flush/compaction run on background workers (sealing the
    /// memtable) instead of synchronously inside the write path.
    fn background_on(&self) -> bool {
        self.opts.background_maintenance
    }

    /// Backpressure gate: when this stripe's sealed memtable is still in
    /// flight AND the active one blew through its hard budget (2×
    /// `memtable_size`), or Level 0 hit `l0_stop_files`, the writer parks
    /// here until maintenance frees room. Only this stripe's state is
    /// consulted — a foreground write never waits on another stripe's
    /// flush.
    fn wait_for_write_budget(&self) -> Result<()> {
        if !self.background_on() {
            return Ok(());
        }
        let mut stalled = false;
        loop {
            self.check_poison()?;
            {
                let inner = self.lock_read(LockPath::Write);
                let over = inner.imm.is_some()
                    && (inner.mem.approximate_bytes() >= 2 * self.opts.memtable_size
                        || inner.version.level_files(0) >= self.opts.l0_stop_files);
                if !over {
                    return Ok(());
                }
            }
            if !stalled {
                stalled = true;
                self.stats.write_stalls.fetch_add(1, Ordering::Relaxed);
                self.obs.read().write_stalls.add(1);
            }
            if self.maintenance_hook.read().is_some() {
                self.kick_maintenance();
                let parked = self.stall_lock.lock().unwrap();
                // The timeout bounds a lost-wakeup race between the check
                // above and parking; correctness never depends on it.
                let _ = self
                    .stall_cv
                    .wait_timeout(parked, std::time::Duration::from_millis(2))
                    .unwrap();
            } else {
                // No worker pool attached: do the work on this thread.
                self.maintain_once()?;
            }
        }
    }

    /// Freezes the memtable for a background flush and rotates the active
    /// WAL under it. The outgoing segment is fully synced first (policy
    /// permitting) so a later crash can never tear it into a stale prefix
    /// that shadows the SST it becomes, and the rename plus the fresh
    /// `wal.log` are made durable with one directory sync before any
    /// subsequent write is acked.
    fn seal_locked(&self, inner: &mut Inner) -> Result<()> {
        debug_assert!(inner.imm.is_none());
        debug_assert!(!inner.mem.is_empty());
        if let Some(d) = &self.durability {
            let syncing = self.opts.sync != SyncPolicy::Never;
            let seal_sync = syncing && self.opts.misplaced_fsync != Some(FsyncSite::WalReset);
            let (appends, bytes) = {
                let wal = inner.wal.as_mut().expect("durable tree has a WAL");
                wal.flush()?;
                if seal_sync {
                    wal.sync()?;
                    self.note_wal_sync(1);
                }
                (wal.segment_appends(), wal.segment_bytes())
            };
            let seq = inner.wal_seq;
            inner.wal_seq += 1;
            let sealed_path = d.dir.join(format!("wal-{seq:06}.log"));
            let active = d.dir.join("wal.log");
            d.fs.rename(&active, &sealed_path)?;
            inner.wal = Some(WalWriter::open(d.fs.clone(), &active, seal_sync)?);
            if syncing {
                d.fs.sync_dir(&d.dir)?;
                self.charge_meta_syncs(1);
            }
            inner.sealed.push(SealedSegment {
                path: sealed_path,
                appends,
                bytes,
            });
        }
        inner.imm = Some(Arc::new(std::mem::take(&mut inner.mem)));
        self.stats.seals.fetch_add(1, Ordering::Relaxed);
        self.obs.read().seals.add(1);
        Ok(())
    }

    /// Attaches the background pool's kick. It is invoked (with the engine
    /// write lock held) whenever a seal or a stall makes maintenance due,
    /// so it must only enqueue work — never call back into the engine.
    pub fn set_maintenance_hook(&self, hook: Arc<dyn Fn() + Send + Sync>) {
        *self.maintenance_hook.write() = Some(hook);
    }

    fn kick_maintenance(&self) {
        let hook = self.maintenance_hook.read().clone();
        if let Some(hook) = hook {
            hook();
        }
    }

    fn check_poison(&self) -> Result<()> {
        if self.poisoned.load(Ordering::Relaxed) {
            return Err(LsmError::Injected(
                "engine poisoned: a crash point fired in a background worker".into(),
            ));
        }
        Ok(())
    }

    /// Marks the engine dead after a background-worker crash injection:
    /// every subsequent operation fails until the instance is dropped and
    /// reopened — exactly the contract of a real process kill, extended to
    /// threads the foreground cannot observe failing.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Relaxed);
        self.stall_cv.notify_all();
    }

    /// Whether [`LsmTree::poison`] was called.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Relaxed)
    }

    /// Whether the installed crash controller has fired. Background
    /// workers use this to distinguish an injected process kill (poison
    /// the stripe) from a transient I/O error (retry later).
    pub fn crash_fired(&self) -> bool {
        self.crash.read().as_ref().is_some_and(|c| c.fired())
    }

    /// Whether a sealed memtable is waiting for its background flush.
    pub fn flush_pending(&self) -> bool {
        self.lock_read(LockPath::Read).imm.is_some()
    }

    /// Whether the version currently has a pickable compaction (the
    /// stripe's compaction backlog, as a boolean).
    pub fn compaction_due(&self) -> bool {
        self.lock_read(LockPath::Read)
            .version
            .pick_compaction(&self.opts)
            .is_some()
    }

    /// One round of background maintenance: flush the sealed memtable if
    /// one is pending, then run every due compaction. Serialized by the
    /// maintenance mutex; safe to call from any thread. Returns whether any
    /// work was done.
    pub fn maintain_once(&self) -> Result<bool> {
        self.check_poison()?;
        let _serial = self.maintenance.lock().unwrap();
        let mut did = false;
        if self.flush_imm_once()? {
            did = true;
        }
        while self.maybe_compact_once()? {
            did = true;
            self.stall_cv.notify_all();
        }
        Ok(did)
    }

    /// Flushes the sealed memtable to a Level-0 table, if one is pending.
    /// The SST build runs *outside* the engine lock — reads and writes to
    /// this stripe keep flowing — and only the version install takes it.
    /// Callers serialize through the maintenance mutex.
    fn flush_imm_once(&self) -> Result<bool> {
        let imm = match self.lock_read(LockPath::Flush).imm.clone() {
            Some(m) => m,
            None => return Ok(false),
        };
        let flushed_entries = imm.len() as u64;
        let mut builder = TableBuilder::new(self.alloc_file(), &self.opts);
        for ke in imm.iter() {
            builder.add(&ke.key, &ke.entry)?;
        }
        let meta = builder.finish(self.storage.as_ref())?;
        let flushed_blocks = meta.num_blocks as u64;
        self.sync_new_tables(&[meta.id])?;
        // Crash here: a durable orphan SST; the sealed segments still
        // cover every record — recovery sweeps the orphan, replays them.
        self.crash_check(CrashPoint::FlushAfterSst)?;
        let segments: Vec<SealedSegment> = {
            let mut inner = self.lock_write(LockPath::Flush);
            inner.version.add_l0(meta);
            inner.imm = None;
            self.persist_manifest(&inner)?;
            inner.sealed.drain(..).collect()
        };
        self.stats.flushes.fetch_add(1, Ordering::Relaxed);
        self.stats
            .flush_block_writes
            .fetch_add(flushed_blocks, Ordering::Relaxed);
        {
            let hooks = self.obs.read();
            hooks.flushes.inc();
            hooks.flush_entries.add(flushed_entries);
            hooks.obs.emit(|| Event::Flush {
                entries: flushed_entries,
                bytes: flushed_blocks * self.opts.block_size as u64,
            });
        }
        // Crash here: the manifest references the table, the segments are
        // not yet deleted — replay re-applies records the table already
        // holds, so recovery must be (and is) idempotent.
        self.crash_check(CrashPoint::FlushAfterManifest)?;
        self.delete_segments(segments)?;
        self.crash_check(CrashPoint::FlushAfterWalReset)?;
        self.stall_cv.notify_all();
        Ok(true)
    }

    /// Deletes WAL segments whose records the just-committed manifest now
    /// covers. Deletion durability is deliberately not required: a
    /// resurrected segment was fully synced at seal time, so replaying it
    /// on top of the SST built from it is idempotent.
    fn delete_segments(&self, segments: Vec<SealedSegment>) -> Result<()> {
        if segments.is_empty() {
            return Ok(());
        }
        let Some(d) = &self.durability else {
            return Ok(());
        };
        for seg in segments {
            d.fs.remove(&seg.path)?;
            let hooks = self.obs.read();
            hooks.wal_appends.add(seg.appends);
            hooks.wal_bytes.add(seg.bytes);
            hooks.obs.emit(|| Event::WalReset {
                appends: seg.appends,
                bytes: seg.bytes,
            });
        }
        Ok(())
    }

    /// Forces a flush of everything buffered — the sealed memtable if one
    /// is pending, then the active one; a no-op when both are empty — then
    /// runs any compactions that become due.
    pub fn flush(&self) -> Result<()> {
        self.check_poison()?;
        if !self.background_on() {
            let mut inner = self.lock_write(LockPath::Flush);
            if !inner.mem.is_empty() {
                self.flush_locked(&mut inner)?;
                self.compact_due_locked(&mut inner)?;
            }
            return Ok(());
        }
        let _serial = self.maintenance.lock().unwrap();
        loop {
            self.flush_imm_once()?;
            let mut inner = self.lock_write(LockPath::Flush);
            if inner.imm.is_some() {
                // A writer sealed a fresh memtable between the imm flush
                // above and this lock acquisition (sealing needs only the
                // write lock, not the maintenance mutex). `flush_locked`
                // drains and deletes *every* sealed WAL segment, so running
                // it now would delete the segment covering that pending imm
                // without flushing its records — and flush mem with a lower
                // file id than the later imm flush, letting the older imm
                // records shadow newer values at L0. Never flush mem ahead
                // of a pending imm: go back and flush the imm first.
                drop(inner);
                continue;
            }
            // Holding the write lock with imm == None: no seal can land
            // until flush_locked (which keeps the lock) completes.
            if !inner.mem.is_empty() {
                self.flush_locked(&mut inner)?;
            }
            return self.compact_due_locked(&mut inner);
        }
    }

    fn flush_locked(&self, inner: &mut Inner) -> Result<()> {
        debug_assert!(!inner.mem.is_empty());
        let flushed_entries = inner.mem.len() as u64;
        let mut builder = TableBuilder::new(self.alloc_file(), &self.opts);
        for ke in inner.mem.iter() {
            builder.add(&ke.key, &ke.entry)?;
        }
        let writes_before = self.storage.stats().writes();
        let meta = builder.finish(self.storage.as_ref())?;
        self.sync_new_tables(&[meta.id])?;
        // Crash here: the SST is durable but unreferenced (an orphan) and
        // the WAL still covers every record — recovery loses nothing.
        self.crash_check(CrashPoint::FlushAfterSst)?;
        inner.version.add_l0(meta);
        inner.mem = MemTable::new();
        let flushed_blocks = self.storage.stats().writes() - writes_before;
        self.stats.flushes.fetch_add(1, Ordering::Relaxed);
        self.stats
            .flush_block_writes
            .fetch_add(flushed_blocks, Ordering::Relaxed);
        {
            let hooks = self.obs.read();
            hooks.flushes.inc();
            hooks.flush_entries.add(flushed_entries);
            hooks.obs.emit(|| Event::Flush {
                entries: flushed_entries,
                bytes: flushed_blocks * self.opts.block_size as u64,
            });
        }
        // Durable ordering: the SST is on storage, so first make the
        // manifest point at it, then drop the WAL entries it replaces.
        self.persist_manifest(inner)?;
        // Crash here: manifest references the table, WAL not yet reset —
        // replay re-applies records the table already holds, so recovery
        // must be (and is) idempotent.
        self.crash_check(CrashPoint::FlushAfterManifest)?;
        // Sealed segments (recovered, or left by an aborted background
        // flush) are covered by the manifest just committed.
        let segments: Vec<SealedSegment> = inner.sealed.drain(..).collect();
        self.delete_segments(segments)?;
        if let Some(wal) = inner.wal.as_mut() {
            let (appends, bytes) = (wal.segment_appends(), wal.segment_bytes());
            let reset_syncs = if wal.reset_sync() { 2 } else { 0 };
            wal.reset()?;
            if reset_syncs > 0 {
                self.note_wal_sync(reset_syncs);
            }
            let hooks = self.obs.read();
            hooks.wal_appends.add(appends);
            hooks.wal_bytes.add(bytes);
            hooks.obs.emit(|| Event::WalReset { appends, bytes });
        }
        self.crash_check(CrashPoint::FlushAfterWalReset)?;
        Ok(())
    }

    fn compact_due_locked(&self, inner: &mut Inner) -> Result<()> {
        while let Some(task) = inner.version.pick_compaction(&self.opts) {
            self.note_compaction_start(&task, &inner.version);
            let mut alloc = || self.alloc_file();
            let Some(event) = run_compaction(
                &mut inner.version,
                task,
                &self.opts,
                self.storage.as_ref(),
                &mut alloc,
            )?
            else {
                break;
            };
            self.note_compaction(&event);
            self.finish_compaction(inner, &event)?;
        }
        Ok(())
    }

    /// Commits a finished compaction: manifest first, input deletion after,
    /// so no durable version ever references a deleted table. A crash
    /// anywhere in between leaves orphan files, never dangling references.
    fn finish_compaction(&self, inner: &Inner, event: &CompactionEvent) -> Result<()> {
        // Crash here: outputs written, old manifest still references the
        // (undeleted) inputs — recovery reopens the pre-compaction version.
        self.crash_check(CrashPoint::CompactionAfterRun)?;
        self.sync_new_tables(&event.new_files)?;
        self.persist_manifest(inner)?;
        // Crash here: new manifest committed, inputs not yet deleted —
        // recovery reopens the post-compaction version plus orphans.
        self.crash_check(CrashPoint::CompactionAfterManifest)?;
        for &id in &event.obsolete_files {
            // A failed delete only strands an orphan file; degrade
            // gracefully instead of failing the write that triggered the
            // compaction.
            if self.storage.delete_table(id).is_err() {
                self.stats
                    .compaction_delete_failures
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    /// Runs at most one due compaction; returns whether one ran. Exposed for
    /// tests and for experiments that want explicit compaction control.
    pub fn maybe_compact_once(&self) -> Result<bool> {
        self.check_poison()?;
        let mut inner = self.lock_write(LockPath::Compaction);
        let Some(task) = inner.version.pick_compaction(&self.opts) else {
            return Ok(false);
        };
        self.note_compaction_start(&task, &inner.version);
        let mut alloc = || self.alloc_file();
        let Some(event) = run_compaction(
            &mut inner.version,
            task,
            &self.opts,
            self.storage.as_ref(),
            &mut alloc,
        )?
        else {
            return Ok(false);
        };
        self.note_compaction(&event);
        self.finish_compaction(&inner, &event)?;
        Ok(true)
    }

    fn note_compaction_start(&self, task: &CompactionTask, version: &Version) {
        let hooks = self.obs.read();
        hooks.obs.emit(|| {
            let (from, to, input_files) = match *task {
                CompactionTask::L0ToL1 => (0, 1, version.level_files(0)),
                CompactionTask::LevelDown { level } => (level, level + 1, 1),
            };
            Event::CompactionStart {
                from_level: from as u64,
                to_level: to as u64,
                input_files: input_files as u64,
            }
        });
    }

    fn note_compaction(&self, event: &CompactionEvent) {
        self.stats.compactions.fetch_add(1, Ordering::Relaxed);
        self.stats
            .compaction_block_reads
            .fetch_add(event.blocks_read, Ordering::Relaxed);
        self.stats
            .compaction_block_writes
            .fetch_add(event.blocks_written, Ordering::Relaxed);
        {
            let hooks = self.obs.read();
            hooks.compactions.inc();
            hooks.compaction_block_reads.add(event.blocks_read);
            hooks.compaction_block_writes.add(event.blocks_written);
            hooks.obs.emit(|| Event::CompactionFinish {
                from_level: event.from_level as u64,
                to_level: event.to_level as u64,
                blocks_read: event.blocks_read,
                blocks_written: event.blocks_written,
                obsolete_files: event.obsolete_files.len() as u64,
                new_files: event.new_files.len() as u64,
                trivial_move: event.trivial_move,
            });
        }
        for l in self.listeners.read().iter() {
            l.on_compaction(event);
        }
    }

    /// One table probe with bounded retries; a checksum failure that
    /// survives every retry quarantines the block before the error
    /// surfaces.
    fn table_get_hardened(
        &self,
        meta: &TableMeta,
        provider: &dyn BlockProvider,
        key: &[u8],
    ) -> Result<Option<Entry>> {
        let r = self.with_read_retries(|| table_get(meta, provider, self.storage.as_ref(), key));
        if let Err(LsmError::Corruption(_)) = &r {
            let block = meta.block_for_key(key).unwrap_or(0);
            self.note_quarantine(provider, meta.id, block);
        }
        r
    }

    /// Point lookup through `provider`.
    ///
    /// Transient read errors are retried per [`Options::read_retries`];
    /// blocks that fail checksum verification even after a device re-read
    /// are quarantined (and purged from `provider`'s cache) before the
    /// error reaches the caller.
    pub fn get(&self, key: &[u8], provider: &dyn BlockProvider) -> Result<Option<Value>> {
        self.check_poison()?;
        let inner = self.lock_read(LockPath::Read);
        self.get_locked(&inner, key, provider)
    }

    /// Point lookups for many keys under **one** read-lock acquisition.
    ///
    /// Results are positional: `out[i]` answers `keys[i]`. Batched
    /// callers (the server's BATCH opcode) amortize the lock handshake
    /// and the version snapshot across the group; semantics per key are
    /// identical to [`get`](Self::get).
    pub fn multi_get(
        &self,
        keys: &[&[u8]],
        provider: &dyn BlockProvider,
    ) -> Result<Vec<Option<Value>>> {
        self.check_poison()?;
        let inner = self.lock_read(LockPath::Read);
        keys.iter()
            .map(|key| self.get_locked(&inner, key, provider))
            .collect()
    }

    /// The probe sequence of [`get`](Self::get) against an already-locked
    /// version snapshot: memtable → sealed memtable → L0 runs → one
    /// candidate per deeper level.
    fn get_locked(
        &self,
        inner: &Inner,
        key: &[u8],
        provider: &dyn BlockProvider,
    ) -> Result<Option<Value>> {
        match inner.mem.get(key) {
            Some(Entry::Put(v)) => return Ok(Some(v.clone())),
            Some(Entry::Tombstone) => return Ok(None),
            None => {}
        }
        // The sealed memtable (if a background flush is in flight) is the
        // second-newest run.
        if let Some(imm) = &inner.imm {
            match imm.get(key) {
                Some(Entry::Put(v)) => return Ok(Some(v.clone())),
                Some(Entry::Tombstone) => return Ok(None),
                None => {}
            }
        }
        // Level 0, newest run first.
        for meta in inner.version.level(0) {
            if let Some(entry) = self.table_get_hardened(meta, provider, key)? {
                return Ok(entry.value().cloned());
            }
        }
        // One candidate per deeper level.
        for level in 1..inner.version.max_levels() {
            if let Some(meta) = inner.version.table_for_key(level, key) {
                if let Some(entry) = self.table_get_hardened(&meta, provider, key)? {
                    return Ok(entry.value().cloned());
                }
            }
        }
        Ok(None)
    }

    /// Range scan: up to `limit` live entries with keys `>= from`, through
    /// `provider`. The seek phase opens one cursor per overlapping sorted
    /// run (the paper's `(L-1) + r` iterator model).
    pub fn scan(
        &self,
        from: &[u8],
        limit: usize,
        provider: &dyn BlockProvider,
    ) -> Result<Vec<(Key, Value)>> {
        self.check_poison()?;
        let inner = self.lock_read(LockPath::Read);
        let mut sources: Vec<(u64, Source<'_>)> = Vec::new();
        // Memtable outranks everything; the sealed memtable (if any) is
        // next.
        sources.push((u64::MAX, Source::from_sorted(inner.mem.iter_from(from))));
        if let Some(imm) = &inner.imm {
            sources.push((u64::MAX - 1, Source::from_sorted(imm.iter_from(from))));
        }
        // Level-0 runs: rank by file id (newer flushes have larger ids).
        for meta in inner.version.overlapping(0, from, None) {
            let it = self.with_read_retries(|| {
                TableIter::seek(meta.clone(), provider, self.storage.as_ref(), from)
            })?;
            sources.push((1 + meta.id, it_into_source(it)));
        }
        // Deeper levels: one lazily-opened chain each; shallower is newer.
        let max_levels = inner.version.max_levels();
        for level in 1..max_levels {
            let chain = inner.version.tables_from(level, from);
            if !chain.is_empty() {
                sources.push((
                    (max_levels - level) as u64,
                    Source::level_chain(chain, from),
                ));
            }
        }
        let mut merger = MergingIter::new(sources);
        let mut out = Vec::with_capacity(limit);
        while out.len() < limit {
            match merger.next_entry(provider, self.storage.as_ref())? {
                Some(ke) => {
                    if let Entry::Put(v) = ke.entry {
                        out.push((ke.key, v));
                    }
                }
                None => break,
            }
        }
        Ok(out)
    }

    /// `(level, files, bytes)` for every level — the shape of the tree.
    pub fn level_summary(&self) -> Vec<(usize, usize, u64)> {
        let inner = self.lock_read(LockPath::Read);
        (0..inner.version.max_levels())
            .map(|l| {
                (
                    l,
                    inner.version.level_files(l),
                    inner.version.level_bytes(l),
                )
            })
            .collect()
    }

    /// Number of sorted runs (`r` in the paper's reward model).
    pub fn num_runs(&self) -> usize {
        self.lock_read(LockPath::Read).version.num_runs()
    }

    /// Number of non-empty levels (`L` in the paper's reward model).
    pub fn num_levels(&self) -> usize {
        self.lock_read(LockPath::Read).version.num_levels_nonempty()
    }

    /// Entries currently buffered in the memtable(s), sealed one included.
    pub fn memtable_len(&self) -> usize {
        let inner = self.lock_read(LockPath::Read);
        inner.mem.len() + inner.imm.as_ref().map_or(0, |m| m.len())
    }

    /// `(total entries, total blocks)` across all live tables; their ratio
    /// is `B`, the entries-per-block term of the paper's reward model.
    pub fn entries_and_blocks(&self) -> (u64, u64) {
        let inner = self.lock_read(LockPath::Read);
        let mut entries = 0;
        let mut blocks = 0;
        for level in 0..inner.version.max_levels() {
            for t in inner.version.level(level) {
                entries += t.num_entries;
                blocks += t.num_blocks as u64;
            }
        }
        (entries, blocks)
    }
}

/// Level-0 rank helper: wraps a table cursor as a merge source.
fn it_into_source(it: TableIter) -> Source<'static> {
    Source::Table(it)
}

/// First file id a stripe may allocate: ids stay in the stripe's residue
/// class (`id % stride == stripe_index`) and are never 0, so stripes
/// sharing one storage device never collide without coordination.
fn first_file_id(stride: u64, offset: u64) -> u64 {
    if stride <= 1 {
        1
    } else if offset == 0 {
        stride
    } else {
        offset
    }
}

/// Rounds `id` up into the stripe's residue class (and past 0).
fn align_file_id(mut id: u64, stride: u64, offset: u64) -> u64 {
    if stride <= 1 {
        return id.max(1);
    }
    while id == 0 || id % stride != offset {
        id += 1;
    }
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sstable::DirectProvider;
    use crate::storage::MemStorage;
    use bytes::Bytes;

    fn key(i: usize) -> Bytes {
        Bytes::from(format!("key{i:06}"))
    }

    fn value(i: usize, tag: &str) -> Bytes {
        Bytes::from(format!("value-{tag}-{i}"))
    }

    fn tree() -> LsmTree {
        LsmTree::new(Options::small(), Arc::new(MemStorage::new())).unwrap()
    }

    #[test]
    fn get_from_memtable_and_disk() {
        let db = tree();
        let p = DirectProvider;
        for i in 0..2000 {
            db.put(key(i), value(i, "a")).unwrap();
        }
        // Some data flushed, some still in memtable.
        assert!(db.stats().flushes.load(Ordering::Relaxed) > 0);
        for i in (0..2000).step_by(97) {
            assert_eq!(
                db.get(&key(i), &p).unwrap().unwrap(),
                value(i, "a"),
                "i={i}"
            );
        }
        assert!(db.get(b"missing", &p).unwrap().is_none());
    }

    #[test]
    fn overwrites_prefer_newest_across_runs() {
        let db = tree();
        let p = DirectProvider;
        for round in 0..4 {
            for i in 0..800 {
                db.put(key(i), value(i, &format!("r{round}"))).unwrap();
            }
            db.flush().unwrap();
        }
        for i in (0..800).step_by(53) {
            assert_eq!(db.get(&key(i), &p).unwrap().unwrap(), value(i, "r3"));
        }
    }

    #[test]
    fn deletes_shadow_older_versions() {
        let db = tree();
        let p = DirectProvider;
        for i in 0..500 {
            db.put(key(i), value(i, "a")).unwrap();
        }
        db.flush().unwrap();
        for i in (0..500).step_by(2) {
            db.delete(key(i)).unwrap();
        }
        for i in 0..500 {
            let got = db.get(&key(i), &p).unwrap();
            if i % 2 == 0 {
                assert!(got.is_none(), "deleted key {i} resurfaced");
            } else {
                assert_eq!(got.unwrap(), value(i, "a"));
            }
        }
        // Still true after everything reaches disk and compacts.
        db.flush().unwrap();
        while db.maybe_compact_once().unwrap() {}
        for i in 0..500 {
            let got = db.get(&key(i), &p).unwrap();
            if i % 2 == 0 {
                assert!(got.is_none());
            } else {
                assert_eq!(got.unwrap(), value(i, "a"));
            }
        }
    }

    #[test]
    fn scan_merges_all_runs_in_order() {
        let db = tree();
        let p = DirectProvider;
        for i in (0..1000).step_by(2) {
            db.put(key(i), value(i, "even")).unwrap();
        }
        db.flush().unwrap();
        for i in (1..1000).step_by(2) {
            db.put(key(i), value(i, "odd")).unwrap();
        }
        // Mixed memtable + disk.
        let got = db.scan(&key(100), 50, &p).unwrap();
        assert_eq!(got.len(), 50);
        for (j, (k, _)) in got.iter().enumerate() {
            assert_eq!(k, &key(100 + j));
        }
        // Scan past the end.
        let got = db.scan(&key(990), 50, &p).unwrap();
        assert_eq!(got.len(), 10);
        // Scan from before the start.
        let got = db.scan(b"a", 5, &p).unwrap();
        assert_eq!(got[0].0, key(0));
    }

    #[test]
    fn scan_skips_tombstones() {
        let db = tree();
        let p = DirectProvider;
        for i in 0..100 {
            db.put(key(i), value(i, "a")).unwrap();
        }
        db.flush().unwrap();
        db.delete(key(10)).unwrap();
        db.delete(key(11)).unwrap();
        let got = db.scan(&key(9), 4, &p).unwrap();
        let keys: Vec<_> = got.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(keys, vec![key(9), key(12), key(13), key(14)]);
    }

    #[test]
    fn compactions_fire_and_preserve_data() {
        let db = tree();
        let p = DirectProvider;
        for i in 0..20_000 {
            db.put(key(i % 4000), value(i, "x")).unwrap();
        }
        assert!(db.stats().compactions() > 0, "compactions should have run");
        let summary = db.level_summary();
        assert!(
            summary.iter().skip(1).any(|(_, files, _)| *files > 0),
            "deeper levels populated: {summary:?}"
        );
        // All keys readable with the newest value.
        for i in (0..4000).step_by(131) {
            assert!(db.get(&key(i), &p).unwrap().is_some());
        }
        assert!(db.num_runs() >= 1);
        assert!(db.num_levels() >= 1);
    }

    #[test]
    fn compaction_listener_sees_obsolete_files() {
        use std::sync::Mutex;
        struct Rec(Mutex<Vec<CompactionEvent>>);
        impl CompactionListener for Rec {
            fn on_compaction(&self, ev: &CompactionEvent) {
                self.0.lock().unwrap().push(ev.clone());
            }
        }
        let db = tree();
        let rec = Arc::new(Rec(Mutex::new(Vec::new())));
        db.add_compaction_listener(rec.clone());
        for i in 0..20_000 {
            db.put(key(i % 2000), value(i, "x")).unwrap();
        }
        let events = rec.0.lock().unwrap();
        assert!(!events.is_empty());
        assert!(events.iter().all(|e| !e.obsolete_files.is_empty()));
    }

    #[test]
    fn query_block_reads_excludes_compaction_io() {
        let db = tree();
        let p = DirectProvider;
        for i in 0..20_000 {
            db.put(key(i % 2000), value(i, "x")).unwrap();
        }
        let total = db.storage().stats().reads();
        let compaction = db.stats().compaction_block_reads();
        assert!(compaction > 0);
        // No queries ran yet, so query reads must be zero.
        assert_eq!(db.query_block_reads(), total - compaction);
        assert_eq!(db.query_block_reads(), 0);
        db.get(&key(1), &p).unwrap();
        assert!(db.query_block_reads() > 0);
    }

    #[test]
    fn slowdown_counter_reflects_l0_pressure() {
        // With a huge trigger, L0 accumulates and the slowdown fires.
        let opts = Options {
            l0_compaction_trigger: 100,
            l0_slowdown_files: 2,
            l0_stop_files: 200,
            ..Options::small()
        };
        let db = LsmTree::new(opts, Arc::new(MemStorage::new())).unwrap();
        for i in 0..8000 {
            db.put(key(i), value(i, "x")).unwrap();
        }
        assert!(db.stats().write_slowdowns.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn write_amplification_grows_with_compactions() {
        let db = tree();
        for i in 0..1000 {
            db.put(key(i), value(i, "x")).unwrap();
        }
        db.flush().unwrap();
        let early = db.write_amplification();
        assert!(early >= 1.0, "amp {early}");
        // Repeated overwrites force compaction rewrites.
        for round in 0..10 {
            for i in 0..1000 {
                db.put(key(i), value(round * 1000 + i, "y")).unwrap();
            }
        }
        db.flush().unwrap();
        let late = db.write_amplification();
        assert!(
            late > early,
            "compactions must raise write amp: {early} -> {late}"
        );
        assert!(late < 50.0, "amp implausibly high: {late}");
    }

    #[test]
    fn compression_is_transparent_and_saves_bytes() {
        // Values with heavy internal redundancy compress well.
        let run = |compression: bool| -> (LsmTree, usize) {
            let mut opts = Options::small();
            opts.compression = compression;
            let db = LsmTree::new(opts, Arc::new(MemStorage::new())).unwrap();
            for i in 0..2000 {
                db.put(key(i), Bytes::from(format!("padding-{}", "x".repeat(60))))
                    .unwrap();
            }
            db.flush().unwrap();
            while db.maybe_compact_once().unwrap() {}
            let bytes: u64 = db.level_summary().iter().map(|(_, _, b)| *b).sum();
            (db, bytes as usize)
        };
        let (plain_db, plain_bytes) = run(false);
        let (packed_db, packed_bytes) = run(true);
        assert!(
            packed_bytes * 2 < plain_bytes,
            "compression should at least halve redundant data: {packed_bytes} vs {plain_bytes}"
        );
        // Reads and scans are identical through both trees.
        let p = DirectProvider;
        for i in (0..2000).step_by(97) {
            assert_eq!(
                plain_db.get(&key(i), &p).unwrap(),
                packed_db.get(&key(i), &p).unwrap()
            );
        }
        assert_eq!(
            plain_db.scan(&key(500), 40, &p).unwrap(),
            packed_db.scan(&key(500), 40, &p).unwrap()
        );
    }

    #[test]
    fn write_batch_applies_atomically() {
        let db = tree();
        let p = DirectProvider;
        let batch: Vec<(Bytes, Entry)> = (0..100)
            .map(|i| (key(i), Entry::Put(value(i, "batch"))))
            .chain([(key(5), Entry::Tombstone)])
            .collect();
        db.write_batch(batch).unwrap();
        assert_eq!(db.get(&key(0), &p).unwrap().unwrap(), value(0, "batch"));
        assert!(
            db.get(&key(5), &p).unwrap().is_none(),
            "later tombstone wins in-batch"
        );
        assert_eq!(db.get(&key(99), &p).unwrap().unwrap(), value(99, "batch"));
        // Empty batch is a no-op.
        db.write_batch(Vec::new()).unwrap();
        // Large batches trigger flushes like individual writes do.
        let big: Vec<(Bytes, Entry)> = (0..2000)
            .map(|i| (key(i), Entry::Put(value(i, "big"))))
            .collect();
        db.write_batch(big).unwrap();
        assert!(db.stats().flushes.load(Ordering::Relaxed) > 0);
        assert_eq!(db.get(&key(1999), &p).unwrap().unwrap(), value(1999, "big"));
    }

    #[test]
    fn storage_errors_propagate_not_panic() {
        use crate::fault::{FaultPlan, FaultStorage};
        let fault = Arc::new(FaultStorage::new(
            Arc::new(MemStorage::new()),
            42,
            FaultPlan::none(),
        ));
        let db = LsmTree::new(Options::small(), fault.clone()).unwrap();
        let p = DirectProvider;
        for i in 0..3000 {
            db.put(key(i), value(i, "x")).unwrap();
        }
        db.flush().unwrap();
        // Every read (including each bounded retry) fails.
        fault.set_plan(FaultPlan {
            read_transient: 1.0,
            ..FaultPlan::default()
        });
        let mut saw_error = false;
        for i in 0..3000 {
            if db.get(&key(i), &p).is_err() {
                saw_error = true;
                break;
            }
        }
        assert!(saw_error, "injected failure must surface as Err");
        assert!(
            db.stats().read_retries.load(Ordering::Relaxed) > 0,
            "the bounded retry path must have engaged first"
        );
        // Engine still usable once the device recovers.
        fault.set_active(false);
        assert!(db.get(&key(1), &p).is_ok());
    }

    #[test]
    fn transient_faults_are_absorbed_by_retries() {
        use crate::fault::{FaultPlan, FaultStorage};
        let fault = Arc::new(FaultStorage::new(
            Arc::new(MemStorage::new()),
            7,
            FaultPlan::none(),
        ));
        let opts = Options {
            read_retries: 6,
            ..Options::small()
        };
        let db = LsmTree::new(opts, fault.clone()).unwrap();
        let p = DirectProvider;
        for i in 0..2000 {
            db.put(key(i), value(i, "x")).unwrap();
        }
        db.flush().unwrap();
        // Deterministic for the fixed seed: every read either succeeds
        // outright or within the retry budget.
        fault.set_plan(FaultPlan {
            read_transient: 0.3,
            ..FaultPlan::default()
        });
        for i in (0..2000).step_by(37) {
            assert_eq!(db.get(&key(i), &p).unwrap().unwrap(), value(i, "x"));
        }
        assert!(db.stats().read_retries.load(Ordering::Relaxed) > 0);
        // Backoff was charged to the simulated clock.
        let ns = db.storage().stats().simulated_ns();
        assert!(ns > 0);
    }

    #[test]
    fn corrupt_block_is_quarantined_and_engine_serves_on() {
        use crate::fault::{FaultPlan, FaultStorage};
        let fault = Arc::new(FaultStorage::new(
            Arc::new(MemStorage::new()),
            3,
            FaultPlan::none(),
        ));
        let db = LsmTree::new(Options::small(), fault.clone()).unwrap();
        let p = DirectProvider;
        for i in 0..2000 {
            db.put(key(i), value(i, "x")).unwrap();
        }
        db.flush().unwrap();
        // Every read comes back bit-flipped, so checksum verification fails
        // on every retry and the block must be quarantined.
        fault.set_plan(FaultPlan {
            bit_flip: 1.0,
            ..FaultPlan::default()
        });
        let err = db.get(&key(10), &p).unwrap_err();
        assert!(matches!(err, LsmError::Corruption(_)), "got {err:?}");
        assert_eq!(db.quarantined().len(), 1);
        assert_eq!(db.stats().quarantined_blocks.load(Ordering::Relaxed), 1);
        // Device recovers: the same address serves again (quarantine marks
        // history, it does not fence reads — the cache was purged instead).
        fault.set_active(false);
        assert_eq!(db.get(&key(10), &p).unwrap().unwrap(), value(10, "x"));
    }

    #[test]
    fn crash_points_abort_flush_and_recovery_reopens() {
        use crate::fault::{CrashController, CrashPoint};
        let dir = std::env::temp_dir().join(format!("adcache-db-crash-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let sst = dir.join("sst");
        let wal_dir = dir.join("meta");
        {
            let storage = Arc::new(crate::storage::FileStorage::open(&sst).unwrap());
            let db = LsmTree::with_durability(Options::small(), storage, &wal_dir).unwrap();
            let cc = CrashController::new();
            db.set_crash_controller(cc.clone());
            cc.arm(CrashPoint::FlushAfterSst, 1);
            for i in 0..5000 {
                if db.put(key(i), value(i, "x")).is_err() {
                    break;
                }
            }
            assert!(cc.fired(), "a flush must have hit the armed crash point");
        }
        // Reopen: the WAL still covers everything the aborted flush lost.
        let storage = Arc::new(crate::storage::FileStorage::open(&sst).unwrap());
        let db = LsmTree::with_durability(Options::small(), storage, &wal_dir).unwrap();
        let p = DirectProvider;
        assert_eq!(db.get(&key(0), &p).unwrap().unwrap(), value(0, "x"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
