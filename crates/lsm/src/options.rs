//! Engine configuration.

/// When the engine issues device syncs (fsync) for its durability
/// metadata — WAL, manifest, and SSTable files.
///
/// The policy only matters when the engine runs with a durability
/// directory; purely in-memory trees never sync. Costs are charged to the
/// simulated clock through [`crate::CostModel::sync_ns`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// Sync the WAL after every write batch and sync every flush /
    /// compaction artifact (file and directory). No acked write is ever
    /// lost to a crash.
    Always,
    /// Push WAL appends to the OS per write but only fsync at flush and
    /// compaction boundaries. A crash can lose the unsynced memtable tail,
    /// but never data that a flush made durable. This mirrors common
    /// production defaults (RocksDB with `sync=false` + WAL).
    #[default]
    OnFlush,
    /// Never fsync anything. A crash can lose any unsynced suffix of the
    /// history; recovery must still succeed on whatever survived.
    Never,
}

impl SyncPolicy {
    /// Stable lowercase name (CLI flag value).
    pub fn name(self) -> &'static str {
        match self {
            SyncPolicy::Always => "always",
            SyncPolicy::OnFlush => "on_flush",
            SyncPolicy::Never => "never",
        }
    }

    /// Parses a CLI flag value; accepts the stable names.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "always" => Some(SyncPolicy::Always),
            "on_flush" | "on-flush" | "onflush" => Some(SyncPolicy::OnFlush),
            "never" => Some(SyncPolicy::Never),
            _ => None,
        }
    }

    /// All policies, for matrix-style tests and drills.
    pub fn all() -> [SyncPolicy; 3] {
        [SyncPolicy::Always, SyncPolicy::OnFlush, SyncPolicy::Never]
    }
}

/// A deliberately *suppressed* fsync site — a guarded test hook that
/// re-introduces one of the durability bugs this engine fixes, so crash
/// drills can prove they detect each hole. Never set in production paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncSite {
    /// Skip the per-batch WAL sync under [`SyncPolicy::Always`]: acks come
    /// out of an unsynced buffer again.
    WalAppend,
    /// Skip the sync-before-truncate ordering in `WalWriter::reset`: a
    /// crash can resurrect stale WAL records that shadow newer SSTs.
    WalReset,
    /// Skip the parent-directory fsync after the manifest renames: the
    /// committed manifest itself is not durable.
    ManifestDir,
    /// Skip the storage-directory fsync after SSTable creation: flushed
    /// tables can vanish even though the manifest references them.
    SstDir,
}

impl FsyncSite {
    /// Stable lowercase label (CLI flag value).
    pub fn label(self) -> &'static str {
        match self {
            FsyncSite::WalAppend => "wal_append",
            FsyncSite::WalReset => "wal_reset",
            FsyncSite::ManifestDir => "manifest_dir",
            FsyncSite::SstDir => "sst_dir",
        }
    }

    /// Parses a CLI flag value; accepts the stable labels.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "wal_append" => Some(FsyncSite::WalAppend),
            "wal_reset" => Some(FsyncSite::WalReset),
            "manifest_dir" => Some(FsyncSite::ManifestDir),
            "sst_dir" => Some(FsyncSite::SstDir),
            _ => None,
        }
    }
}

/// Tuning knobs for the LSM-tree, mirroring the paper's experimental setup
/// (Section 5.1) at a configurable scale.
///
/// The defaults model the paper's RocksDB configuration proportionally:
/// 1-leveling (leveled compaction with a tiered Level 0), size ratio 10
/// between levels, Bloom filters at 10 bits per key, write slowdown at 4
/// Level-0 files and stop at 8.
#[derive(Debug, Clone)]
pub struct Options {
    /// Target encoded size of one data block in bytes (paper: 4 KiB).
    pub block_size: usize,
    /// Number of keys between restart points inside a block.
    pub block_restart_interval: usize,
    /// Target total size of one SSTable in bytes (paper: 4 MiB).
    pub sstable_size: usize,
    /// Memtable flush threshold in bytes.
    pub memtable_size: usize,
    /// Number of Level-0 files that triggers an L0->L1 compaction.
    pub l0_compaction_trigger: usize,
    /// Number of Level-0 files at which writes are slowed (paper: 4).
    pub l0_slowdown_files: usize,
    /// Number of Level-0 files at which writes stall (paper: 8);
    /// used as `r0_max` in the reward model.
    pub l0_stop_files: usize,
    /// Size ratio between adjacent levels (paper: 10).
    pub size_ratio: usize,
    /// Maximum bytes in Level 1; deeper levels scale by `size_ratio`.
    pub l1_max_bytes: usize,
    /// Bloom filter bits per key (paper: 10). Zero disables the filter.
    pub bloom_bits_per_key: usize,
    /// Hard cap on the number of levels.
    pub max_levels: usize,
    /// Compress data blocks on disk (LZSS; incompressible blocks are
    /// stored raw automatically). The paper's evaluation runs without
    /// compression, so this defaults to off.
    pub compression: bool,
    /// Retries for a failed query-path block read before the error
    /// surfaces (transient device errors and checksum failures resolve on
    /// re-read; see `fault::FaultStorage`). Zero disables retrying.
    pub read_retries: u32,
    /// Backoff charged to the simulated clock before the first retry;
    /// doubles per attempt. Never a real sleep.
    pub retry_backoff_ns: u64,
    /// Fsync placement policy for the durability path (WAL, manifest,
    /// SSTables). Ignored by purely in-memory trees.
    pub sync: SyncPolicy,
    /// Test hook: suppress the fsync at exactly one site, re-introducing a
    /// known durability bug so crash drills can prove they catch it.
    /// `None` (the only sane production value) syncs every site the policy
    /// requires.
    pub misplaced_fsync: Option<FsyncSite>,
    /// Engine-lock acquisitions that wait longer than this journal a
    /// `LockContention` event (when lock timing is enabled via an attached
    /// `Obs`). Zero disables the events; counters still accumulate.
    pub lock_wait_budget_ns: u64,
    /// Number of keyspace stripes for [`crate::striped::StripedDb`]: each
    /// stripe is an independent engine (own memtable, WAL segments, SST
    /// levels, manifest shard) selected by a hash of the key. `1` keeps
    /// the classic single-engine layout. Also doubles as the file-id
    /// allocation stride so stripes sharing one storage device never
    /// collide.
    pub stripes: usize,
    /// Which stripe this engine instance is (`0..stripes`). Determines the
    /// file-id residue class this engine allocates from when several
    /// stripes share one storage device. Leave 0 for standalone trees.
    pub stripe_index: usize,
    /// Move flush and compaction off the write path: a full memtable is
    /// *sealed* (frozen + WAL segment rotated) and handed to a background
    /// worker, and writers only stall when their own stripe's sealed
    /// memtable is still in flight and the active one is over budget. Off
    /// (the default) preserves the classic synchronous behavior that the
    /// deterministic simulations and unit tests rely on; the serving
    /// layer turns it on.
    pub background_maintenance: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            block_size: 4096,
            block_restart_interval: 16,
            sstable_size: 4 << 20,
            memtable_size: 4 << 20,
            l0_compaction_trigger: 4,
            l0_slowdown_files: 4,
            l0_stop_files: 8,
            size_ratio: 10,
            l1_max_bytes: 40 << 20,
            bloom_bits_per_key: 10,
            max_levels: 7,
            compression: false,
            read_retries: 2,
            retry_backoff_ns: 50_000,
            sync: SyncPolicy::OnFlush,
            misplaced_fsync: None,
            lock_wait_budget_ns: 1_000_000,
            stripes: 1,
            stripe_index: 0,
            background_maintenance: false,
        }
    }
}

impl Options {
    /// The paper's exact Section 5.1 configuration: 4 KiB blocks, 4 MiB
    /// SSTables, leveled compaction with size ratio 10, Bloom filters at
    /// 10 bits/key, write slowdown at 4 Level-0 files and stop at 8. Use
    /// with `--full`-scale experiments and real datasets.
    pub fn paper() -> Self {
        Options {
            block_size: 4096,
            block_restart_interval: 16,
            sstable_size: 4 << 20,
            memtable_size: 4 << 20,
            l0_compaction_trigger: 4,
            l0_slowdown_files: 4,
            l0_stop_files: 8,
            size_ratio: 10,
            l1_max_bytes: 40 << 20,
            bloom_bits_per_key: 10,
            max_levels: 7,
            compression: false,
            read_retries: 2,
            retry_backoff_ns: 50_000,
            sync: SyncPolicy::OnFlush,
            misplaced_fsync: None,
            lock_wait_budget_ns: 1_000_000,
            stripes: 1,
            stripe_index: 0,
            background_maintenance: false,
        }
    }

    /// A small-scale configuration for unit tests and fast simulations:
    /// tiny blocks, tables and memtables so that compactions and multi-level
    /// shapes appear with only thousands of keys.
    pub fn small() -> Self {
        Options {
            block_size: 512,
            block_restart_interval: 8,
            sstable_size: 16 << 10,
            memtable_size: 16 << 10,
            l0_compaction_trigger: 4,
            l0_slowdown_files: 4,
            l0_stop_files: 8,
            size_ratio: 10,
            l1_max_bytes: 160 << 10,
            bloom_bits_per_key: 10,
            max_levels: 7,
            compression: false,
            read_retries: 2,
            retry_backoff_ns: 50_000,
            sync: SyncPolicy::OnFlush,
            misplaced_fsync: None,
            lock_wait_budget_ns: 1_000_000,
            stripes: 1,
            stripe_index: 0,
            background_maintenance: false,
        }
    }

    /// Maximum allowed bytes for `level` (1-based levels; Level 0 is
    /// file-count-triggered instead).
    pub fn level_max_bytes(&self, level: usize) -> usize {
        debug_assert!(level >= 1);
        let mut size = self.l1_max_bytes;
        for _ in 1..level {
            size = size.saturating_mul(self.size_ratio);
        }
        size
    }

    /// Validates internal consistency; returns a human-readable complaint.
    pub fn validate(&self) -> Result<(), String> {
        if self.block_size < 64 {
            return Err("block_size must be at least 64 bytes".into());
        }
        if self.block_restart_interval == 0 {
            return Err("block_restart_interval must be positive".into());
        }
        if self.sstable_size < self.block_size {
            return Err("sstable_size must be at least one block".into());
        }
        if self.l0_stop_files < self.l0_slowdown_files {
            return Err("l0_stop_files must be >= l0_slowdown_files".into());
        }
        if self.size_ratio < 2 {
            return Err("size_ratio must be at least 2".into());
        }
        if self.max_levels < 2 {
            return Err("max_levels must be at least 2".into());
        }
        if self.stripes == 0 {
            return Err("stripes must be at least 1".into());
        }
        if self.stripe_index >= self.stripes {
            return Err("stripe_index must be < stripes".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        Options::default().validate().unwrap();
        Options::small().validate().unwrap();
    }

    #[test]
    fn level_sizes_scale_by_ratio() {
        let o = Options::default();
        assert_eq!(o.level_max_bytes(1), o.l1_max_bytes);
        assert_eq!(o.level_max_bytes(2), o.l1_max_bytes * 10);
        assert_eq!(o.level_max_bytes(3), o.l1_max_bytes * 100);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let base = Options::default;
        assert!(Options {
            block_size: 8,
            ..base()
        }
        .validate()
        .is_err());
        assert!(Options {
            block_restart_interval: 0,
            ..base()
        }
        .validate()
        .is_err());
        assert!(Options {
            sstable_size: 63,
            ..base()
        }
        .validate()
        .is_err());
        assert!(Options {
            l0_stop_files: base().l0_slowdown_files - 1,
            ..base()
        }
        .validate()
        .is_err());
        assert!(Options {
            size_ratio: 1,
            ..base()
        }
        .validate()
        .is_err());
        assert!(Options {
            max_levels: 1,
            ..base()
        }
        .validate()
        .is_err());
    }
}
