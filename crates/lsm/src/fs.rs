//! The metadata filesystem seam.
//!
//! WAL and manifest I/O go through the [`MetaFs`] trait instead of
//! `std::fs` directly, so crash drills can model an OS write-back cache:
//! a write that *completed* is not *durable* until an explicit
//! [`MetaFs::sync_file`], and a rename / create / remove is not durable
//! until the parent directory is synced with [`MetaFs::sync_dir`]. Two
//! implementations exist:
//!
//! - [`RealFs`] passes through to `std::fs` (production and the
//!   file-backed integration tests);
//! - [`SimFs`] keeps everything in memory and buffers completed-but-
//!   unsynced operations per file, so [`SimFs::crash`] can drop an
//!   arbitrary unsynced suffix — wholly or torn mid-append — exactly the
//!   way a power loss treats a volatile device cache.

use crate::error::{LsmError, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Filesystem operations used by the durability path (WAL + manifest).
///
/// All operations are whole-file or append-oriented; nothing in the
/// engine needs random-access writes. `sync_file` and `sync_dir` are the
/// only operations that promise durability — everything else may sit in a
/// modeled write-back cache until then.
pub trait MetaFs: Send + Sync {
    /// Creates `path` and all missing parents.
    fn create_dir_all(&self, path: &Path) -> Result<()>;
    /// Reads the full contents of `path`; `Ok(None)` when it does not
    /// exist.
    fn read(&self, path: &Path) -> Result<Option<Vec<u8>>>;
    /// Creates or replaces `path` with `data` (not durable until synced).
    fn write_file(&self, path: &Path, data: &[u8]) -> Result<()>;
    /// Appends `data` to `path`, creating it when missing.
    fn append(&self, path: &Path, data: &[u8]) -> Result<()>;
    /// Truncates `path` to `len` bytes.
    fn truncate(&self, path: &Path, len: u64) -> Result<()>;
    /// Renames `from` to `to`, replacing `to` when it exists. Durable
    /// only after the parent directory is synced.
    fn rename(&self, from: &Path, to: &Path) -> Result<()>;
    /// Removes `path`. Durable only after the parent directory is synced.
    fn remove(&self, path: &Path) -> Result<()>;
    /// Whether `path` currently exists (in the possibly-unsynced view).
    fn exists(&self, path: &Path) -> bool;
    /// Current length of `path` in bytes.
    fn len(&self, path: &Path) -> Result<u64>;
    /// Makes the *contents* of `path` durable (fsync).
    fn sync_file(&self, path: &Path) -> Result<()>;
    /// Makes the directory entries under `dir` durable (directory fsync):
    /// creations, renames and removals issued before this call survive a
    /// crash.
    fn sync_dir(&self, dir: &Path) -> Result<()>;
    /// Paths of the files directly under `dir` (in the possibly-unsynced
    /// view), in unspecified order. A missing directory lists as empty.
    fn list_dir(&self, dir: &Path) -> Result<Vec<PathBuf>>;
}

fn not_found(path: &Path) -> LsmError {
    LsmError::NotFound(format!("{} does not exist", path.display()))
}

/// Pass-through [`MetaFs`] over `std::fs`.
///
/// Keeps a small cache of append handles so per-write WAL appends do not
/// reopen the log file each time (the handles are opened `O_APPEND`, so
/// they stay correct across truncation).
pub struct RealFs {
    appenders: Mutex<HashMap<PathBuf, File>>,
}

impl RealFs {
    /// A new pass-through filesystem.
    pub fn new() -> Self {
        RealFs {
            appenders: Mutex::new(HashMap::new()),
        }
    }

    fn drop_handle(&self, path: &Path) {
        self.appenders.lock().remove(path);
    }
}

impl Default for RealFs {
    fn default() -> Self {
        RealFs::new()
    }
}

impl MetaFs for RealFs {
    fn create_dir_all(&self, path: &Path) -> Result<()> {
        std::fs::create_dir_all(path)?;
        Ok(())
    }

    fn read(&self, path: &Path) -> Result<Option<Vec<u8>>> {
        match std::fs::read(path) {
            Ok(data) => Ok(Some(data)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn write_file(&self, path: &Path, data: &[u8]) -> Result<()> {
        self.drop_handle(path);
        std::fs::write(path, data)?;
        Ok(())
    }

    fn append(&self, path: &Path, data: &[u8]) -> Result<()> {
        let mut handles = self.appenders.lock();
        let file = match handles.entry(path.to_path_buf()) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let f = OpenOptions::new().create(true).append(true).open(path)?;
                e.insert(f)
            }
        };
        file.write_all(data)?;
        Ok(())
    }

    fn truncate(&self, path: &Path, len: u64) -> Result<()> {
        // O_APPEND handles keep writing at the (new) end, so the cached
        // appender stays valid across truncation.
        let f = OpenOptions::new().write(true).open(path)?;
        f.set_len(len)?;
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<()> {
        self.drop_handle(from);
        self.drop_handle(to);
        std::fs::rename(from, to)?;
        Ok(())
    }

    fn remove(&self, path: &Path) -> Result<()> {
        self.drop_handle(path);
        std::fs::remove_file(path)?;
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn len(&self, path: &Path) -> Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }

    fn sync_file(&self, path: &Path) -> Result<()> {
        if let Some(f) = self.appenders.lock().get(path) {
            f.sync_data()?;
            return Ok(());
        }
        let f = OpenOptions::new().read(true).open(path)?;
        f.sync_data()?;
        Ok(())
    }

    fn sync_dir(&self, dir: &Path) -> Result<()> {
        // On Unix a directory can be opened read-only and fsynced to make
        // its entries durable.
        let f = File::open(dir)?;
        f.sync_all()?;
        Ok(())
    }

    fn list_dir(&self, dir: &Path) -> Result<Vec<PathBuf>> {
        let rd = match std::fs::read_dir(dir) {
            Ok(rd) => rd,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        };
        let mut out = Vec::new();
        for entry in rd {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                out.push(entry.path());
            }
        }
        Ok(out)
    }
}

/// One buffered, completed-but-unsynced mutation of a file's contents.
#[derive(Debug, Clone)]
enum PendingOp {
    /// Whole-file replacement (`write_file`). Atomic: survives a crash
    /// entirely or not at all.
    SetContent(Vec<u8>),
    /// An append, which a crash may tear (persist a strict byte prefix).
    Append(Vec<u8>),
    /// A truncation to the given length. Atomic under crash.
    Truncate(u64),
}

#[derive(Debug, Default, Clone)]
struct Inode {
    /// Contents as of the last `sync_file` (`None`: never synced).
    durable: Option<Vec<u8>>,
    /// Completed-but-unsynced operations, in issue order.
    pending: Vec<PendingOp>,
    /// Contents as the running process sees them (durable + all pending).
    view: Vec<u8>,
}

#[derive(Default)]
struct SimState {
    inodes: HashMap<u64, Inode>,
    /// Live namespace: path -> inode, as the running process sees it.
    dir: HashMap<PathBuf, u64>,
    /// Namespace as of the last `sync_dir` — what a crash reverts to.
    durable_dir: HashMap<PathBuf, u64>,
    next_inode: u64,
}

/// What one [`SimFs::crash`] threw away from the write-back cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnsyncedLoss {
    /// Files whose unsynced contents or directory entries were affected.
    pub files: u64,
    /// Content bytes dropped (including torn-append suffixes).
    pub bytes: u64,
}

/// In-memory [`MetaFs`] with an explicit write-back cache model.
///
/// Every mutation lands in a per-file pending list; `sync_file` moves a
/// file's pending list into its durable image, and `sync_dir` makes the
/// current namespace (creations / renames / removals) the one a crash
/// reverts to. [`SimFs::crash`] then plays the role of power loss: each
/// file keeps only a seeded prefix of its pending operations (an append at
/// the cut may tear mid-record) and the namespace snaps back to the last
/// synced one.
pub struct SimFs {
    state: Mutex<SimState>,
}

impl SimFs {
    /// A new, empty simulated filesystem.
    pub fn new() -> Self {
        SimFs {
            state: Mutex::new(SimState::default()),
        }
    }

    /// Simulates power loss: drops an arbitrary (seeded) suffix of each
    /// file's unsynced operations — possibly tearing an append mid-record
    /// — and reverts the namespace to the last `sync_dir`. Returns what
    /// was lost. Deterministic in `seed`.
    pub fn crash(&self, seed: u64) -> UnsyncedLoss {
        let mut st = self.state.lock();
        let mut loss = UnsyncedLoss::default();
        let mut ids: Vec<u64> = st.inodes.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let inode = st.inodes.get_mut(&id).expect("inode listed");
            let n = inode.pending.len();
            if n == 0 {
                continue;
            }
            let h = crate::fault::splitmix64(seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let keep = (h % (n as u64 + 1)) as usize;
            let mut content = inode.durable.clone().unwrap_or_default();
            for op in &inode.pending[..keep] {
                apply(&mut content, op);
            }
            // The operation at the cut: an append may tear (a strict byte
            // prefix persists); whole-file writes and truncations are
            // atomic and simply vanish.
            if keep < n {
                if let PendingOp::Append(data) = &inode.pending[keep] {
                    let h2 = crate::fault::splitmix64(h ^ 0xD1B5_4A32_D192_ED03);
                    let torn = (h2 % (data.len() as u64 + 1)) as usize;
                    content.extend_from_slice(&data[..torn]);
                }
                loss.files += 1;
            }
            loss.bytes += (inode.view.len() as u64).saturating_sub(content.len() as u64);
            inode.durable = Some(content.clone());
            inode.pending.clear();
            inode.view = content;
        }
        // Unsynced namespace changes (creations, renames, removals) are
        // undone: the directory snaps back to its last synced image.
        for (path, id) in &st.dir {
            if st.durable_dir.get(path) != Some(id) {
                loss.files += 1;
            }
        }
        st.dir = st.durable_dir.clone();
        let live: std::collections::HashSet<u64> = st.dir.values().copied().collect();
        st.inodes.retain(|id, _| live.contains(id));
        loss
    }

    /// Number of distinct files in the live namespace (test helper).
    pub fn file_count(&self) -> usize {
        self.state.lock().dir.len()
    }

    fn with_inode<T>(&self, path: &Path, f: impl FnOnce(&mut Inode) -> T) -> Result<T> {
        let mut st = self.state.lock();
        let id = *st.dir.get(path).ok_or_else(|| not_found(path))?;
        let inode = st.inodes.get_mut(&id).expect("dir entry has an inode");
        Ok(f(inode))
    }
}

impl Default for SimFs {
    fn default() -> Self {
        SimFs::new()
    }
}

fn apply(content: &mut Vec<u8>, op: &PendingOp) {
    match op {
        PendingOp::SetContent(data) => *content = data.clone(),
        PendingOp::Append(data) => content.extend_from_slice(data),
        PendingOp::Truncate(len) => content.truncate(*len as usize),
    }
}

impl MetaFs for SimFs {
    fn create_dir_all(&self, _path: &Path) -> Result<()> {
        // The simulated namespace is flat; directories always exist.
        Ok(())
    }

    fn read(&self, path: &Path) -> Result<Option<Vec<u8>>> {
        let st = self.state.lock();
        Ok(st.dir.get(path).map(|id| st.inodes[id].view.clone()))
    }

    fn write_file(&self, path: &Path, data: &[u8]) -> Result<()> {
        let mut st = self.state.lock();
        if let Some(id) = st.dir.get(path).copied() {
            let inode = st.inodes.get_mut(&id).expect("dir entry has an inode");
            inode.pending.push(PendingOp::SetContent(data.to_vec()));
            inode.view = data.to_vec();
        } else {
            let id = st.next_inode;
            st.next_inode += 1;
            st.inodes.insert(
                id,
                Inode {
                    durable: None,
                    pending: vec![PendingOp::SetContent(data.to_vec())],
                    view: data.to_vec(),
                },
            );
            st.dir.insert(path.to_path_buf(), id);
        }
        Ok(())
    }

    fn append(&self, path: &Path, data: &[u8]) -> Result<()> {
        if !self.exists(path) {
            return self.write_file(path, data);
        }
        self.with_inode(path, |inode| {
            inode.pending.push(PendingOp::Append(data.to_vec()));
            inode.view.extend_from_slice(data);
        })
    }

    fn truncate(&self, path: &Path, len: u64) -> Result<()> {
        self.with_inode(path, |inode| {
            inode.pending.push(PendingOp::Truncate(len));
            inode.view.truncate(len as usize);
        })
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<()> {
        let mut st = self.state.lock();
        let id = st.dir.remove(from).ok_or_else(|| not_found(from))?;
        st.dir.insert(to.to_path_buf(), id);
        Ok(())
    }

    fn remove(&self, path: &Path) -> Result<()> {
        let mut st = self.state.lock();
        st.dir.remove(path).ok_or_else(|| not_found(path))?;
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        self.state.lock().dir.contains_key(path)
    }

    fn len(&self, path: &Path) -> Result<u64> {
        self.with_inode(path, |inode| inode.view.len() as u64)
    }

    fn sync_file(&self, path: &Path) -> Result<()> {
        self.with_inode(path, |inode| {
            inode.durable = Some(inode.view.clone());
            inode.pending.clear();
        })
    }

    fn sync_dir(&self, _dir: &Path) -> Result<()> {
        let mut st = self.state.lock();
        st.durable_dir = st.dir.clone();
        Ok(())
    }

    fn list_dir(&self, dir: &Path) -> Result<Vec<PathBuf>> {
        // The namespace is flat, so "directly under `dir`" means "path has
        // `dir` as its parent".
        let st = self.state.lock();
        Ok(st
            .dir
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .cloned()
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(name: &str) -> PathBuf {
        PathBuf::from(format!("/sim/{name}"))
    }

    #[test]
    fn simfs_basic_file_operations() {
        let fs = SimFs::new();
        assert!(!fs.exists(&p("a")));
        assert!(fs.read(&p("a")).unwrap().is_none());
        fs.write_file(&p("a"), b"hello").unwrap();
        assert_eq!(fs.read(&p("a")).unwrap().unwrap(), b"hello");
        fs.append(&p("a"), b" world").unwrap();
        assert_eq!(fs.len(&p("a")).unwrap(), 11);
        fs.truncate(&p("a"), 5).unwrap();
        assert_eq!(fs.read(&p("a")).unwrap().unwrap(), b"hello");
        fs.rename(&p("a"), &p("b")).unwrap();
        assert!(!fs.exists(&p("a")));
        assert_eq!(fs.read(&p("b")).unwrap().unwrap(), b"hello");
        fs.remove(&p("b")).unwrap();
        assert!(!fs.exists(&p("b")));
        assert!(matches!(fs.remove(&p("b")), Err(LsmError::NotFound(_))));
    }

    #[test]
    fn crash_without_sync_loses_everything() {
        let fs = SimFs::new();
        fs.write_file(&p("a"), b"data").unwrap();
        let loss = fs.crash(7);
        assert!(loss.files >= 1);
        assert!(!fs.exists(&p("a")), "unsynced creation must not survive");
    }

    #[test]
    fn crash_after_full_sync_loses_nothing() {
        let fs = SimFs::new();
        fs.write_file(&p("a"), b"data").unwrap();
        fs.sync_file(&p("a")).unwrap();
        fs.sync_dir(&p("")).unwrap();
        let loss = fs.crash(7);
        assert_eq!(loss, UnsyncedLoss::default());
        assert_eq!(fs.read(&p("a")).unwrap().unwrap(), b"data");
    }

    #[test]
    fn crash_keeps_only_a_prefix_of_unsynced_appends() {
        let fs = SimFs::new();
        fs.write_file(&p("log"), b"").unwrap();
        fs.sync_file(&p("log")).unwrap();
        fs.sync_dir(&p("")).unwrap();
        let full: Vec<u8> = (0..100u8).collect();
        for chunk in full.chunks(10) {
            fs.append(&p("log"), chunk).unwrap();
        }
        // Whatever the seed, the surviving content is a strict prefix of
        // what was appended.
        for seed in 0..32u64 {
            let probe = SimFs::new();
            probe.write_file(&p("log"), b"").unwrap();
            probe.sync_file(&p("log")).unwrap();
            probe.sync_dir(&p("")).unwrap();
            for chunk in full.chunks(10) {
                probe.append(&p("log"), chunk).unwrap();
            }
            probe.crash(seed);
            let got = probe.read(&p("log")).unwrap().unwrap();
            assert!(got.len() <= full.len());
            assert_eq!(&got[..], &full[..got.len()], "seed {seed}: prefix only");
        }
        // And at least one seed in a small range actually drops a suffix.
        let mut any_loss = false;
        for seed in 0..32u64 {
            let probe = SimFs::new();
            probe.write_file(&p("log"), b"").unwrap();
            probe.sync_file(&p("log")).unwrap();
            probe.sync_dir(&p("")).unwrap();
            probe.append(&p("log"), &full).unwrap();
            any_loss |= probe.crash(seed).bytes > 0;
        }
        assert!(any_loss, "the write-back model must be able to lose data");
    }

    #[test]
    fn crash_reverts_unsynced_rename() {
        let fs = SimFs::new();
        fs.write_file(&p("cur"), b"old").unwrap();
        fs.sync_file(&p("cur")).unwrap();
        fs.sync_dir(&p("")).unwrap();
        fs.write_file(&p("tmp"), b"new").unwrap();
        fs.sync_file(&p("tmp")).unwrap();
        // rename without sync_dir: the swap is not durable.
        fs.rename(&p("cur"), &p("bak")).unwrap();
        fs.rename(&p("tmp"), &p("cur")).unwrap();
        fs.crash(3);
        assert_eq!(fs.read(&p("cur")).unwrap().unwrap(), b"old");
        assert!(!fs.exists(&p("bak")));
        assert!(!fs.exists(&p("tmp")));
        // With the directory synced, the swap sticks.
        let fs = SimFs::new();
        fs.write_file(&p("cur"), b"old").unwrap();
        fs.sync_file(&p("cur")).unwrap();
        fs.sync_dir(&p("")).unwrap();
        fs.write_file(&p("tmp"), b"new").unwrap();
        fs.sync_file(&p("tmp")).unwrap();
        fs.rename(&p("cur"), &p("bak")).unwrap();
        fs.rename(&p("tmp"), &p("cur")).unwrap();
        fs.sync_dir(&p("")).unwrap();
        fs.crash(3);
        assert_eq!(fs.read(&p("cur")).unwrap().unwrap(), b"new");
        assert_eq!(fs.read(&p("bak")).unwrap().unwrap(), b"old");
    }

    #[test]
    fn crash_is_deterministic_in_the_seed() {
        let build = || {
            let fs = SimFs::new();
            fs.write_file(&p("log"), b"base").unwrap();
            fs.sync_file(&p("log")).unwrap();
            fs.sync_dir(&p("")).unwrap();
            for i in 0..20u8 {
                fs.append(&p("log"), &[i; 7]).unwrap();
            }
            fs
        };
        let a = build();
        let b = build();
        assert_eq!(a.crash(99), b.crash(99));
        assert_eq!(a.read(&p("log")).unwrap(), b.read(&p("log")).unwrap());
    }

    #[test]
    fn realfs_round_trips_and_syncs() {
        let dir = std::env::temp_dir().join(format!("adcache-realfs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fs = RealFs::new();
        fs.create_dir_all(&dir).unwrap();
        let f = dir.join("x.log");
        assert!(fs.read(&f).unwrap().is_none());
        fs.write_file(&f, b"abc").unwrap();
        fs.append(&f, b"def").unwrap();
        assert_eq!(fs.read(&f).unwrap().unwrap(), b"abcdef");
        assert_eq!(fs.len(&f).unwrap(), 6);
        fs.sync_file(&f).unwrap();
        fs.truncate(&f, 3).unwrap();
        assert_eq!(fs.read(&f).unwrap().unwrap(), b"abc");
        // O_APPEND keeps the cached handle valid across truncation.
        fs.append(&f, b"xyz").unwrap();
        assert_eq!(fs.read(&f).unwrap().unwrap(), b"abcxyz");
        let g = dir.join("y.log");
        fs.rename(&f, &g).unwrap();
        fs.sync_dir(&dir).unwrap();
        assert!(!fs.exists(&f));
        assert_eq!(fs.read(&g).unwrap().unwrap(), b"abcxyz");
        fs.remove(&g).unwrap();
        assert!(!fs.exists(&g));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
