//! Level bookkeeping: which SSTables are live and where.
//!
//! The tree follows RocksDB's 1-leveling: Level 0 holds overlapping sorted
//! runs in flush order (newest first); every deeper level is a single sorted
//! run partitioned into non-overlapping tables. The version is mutated in
//! place under the engine's write lock — reads hold the read lock for their
//! whole duration, so no MVCC snapshots are needed.

use crate::error::{LsmError, Result};
use crate::options::Options;
use crate::sstable::TableMeta;
use crate::types::FileId;
use std::sync::Arc;

/// The live-table manifest.
pub struct Version {
    /// `levels[0]` is Level 0, newest run first. Deeper levels are sorted by
    /// smallest key and pairwise non-overlapping.
    levels: Vec<Vec<Arc<TableMeta>>>,
    /// Round-robin compaction cursors, one per level.
    cursors: Vec<usize>,
}

/// What a compaction decided to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompactionTask {
    /// Merge every Level-0 run, plus overlapping Level-1 tables, into L1.
    L0ToL1,
    /// Merge one table from `level` with overlaps in `level + 1`.
    LevelDown {
        /// Source level (>= 1).
        level: usize,
    },
}

impl Version {
    /// Creates an empty manifest with `max_levels` levels.
    pub fn new(max_levels: usize) -> Self {
        Version {
            levels: vec![Vec::new(); max_levels],
            cursors: vec![0; max_levels],
        }
    }

    /// Number of levels (fixed at construction).
    pub fn max_levels(&self) -> usize {
        self.levels.len()
    }

    /// Tables in `level`, in search order.
    pub fn level(&self, level: usize) -> &[Arc<TableMeta>] {
        &self.levels[level]
    }

    /// Registers a fresh flush output as the newest Level-0 run.
    pub fn add_l0(&mut self, meta: Arc<TableMeta>) {
        self.levels[0].insert(0, meta);
    }

    /// Re-registers a table during recovery, appending in manifest order
    /// (Level 0 is recorded newest-first; deeper levels key-sorted).
    pub fn restore_table(&mut self, level: usize, meta: Arc<TableMeta>) -> Result<()> {
        if level >= self.levels.len() {
            return Err(LsmError::Corruption(format!(
                "manifest level {level} out of range"
            )));
        }
        self.levels[level].push(meta);
        Ok(())
    }

    /// Installs compaction results: removes `deleted` from `from_level` and
    /// `to_level`, and inserts `added` into `to_level` keeping key order.
    pub fn apply_compaction(
        &mut self,
        from_level: usize,
        to_level: usize,
        deleted: &[FileId],
        added: Vec<Arc<TableMeta>>,
    ) -> Result<()> {
        if to_level >= self.levels.len() {
            return Err(LsmError::InvalidArgument(
                "compaction below bottom level".into(),
            ));
        }
        for lvl in [from_level, to_level] {
            self.levels[lvl].retain(|t| !deleted.contains(&t.id));
        }
        for meta in added {
            let pos = self.levels[to_level].partition_point(|t| t.smallest < meta.smallest);
            self.levels[to_level].insert(pos, meta);
        }
        // Sanity: deeper levels must stay non-overlapping.
        debug_assert!(self.check_level_invariants().is_ok());
        Ok(())
    }

    /// Validates that levels >= 1 are sorted and non-overlapping.
    pub fn check_level_invariants(&self) -> Result<()> {
        for (lvl, tables) in self.levels.iter().enumerate().skip(1) {
            for pair in tables.windows(2) {
                if pair[0].largest >= pair[1].smallest {
                    return Err(LsmError::Corruption(format!(
                        "level {lvl} tables overlap: {:?} vs {:?}",
                        pair[0].id, pair[1].id
                    )));
                }
            }
        }
        Ok(())
    }

    /// Total data bytes in `level`.
    pub fn level_bytes(&self, level: usize) -> u64 {
        self.levels[level].iter().map(|t| t.total_bytes).sum()
    }

    /// Number of files in `level`.
    pub fn level_files(&self, level: usize) -> usize {
        self.levels[level].len()
    }

    /// Number of sorted runs: each L0 file is a run; each non-empty deeper
    /// level is one run. This is `r` in the paper's reward model.
    pub fn num_runs(&self) -> usize {
        self.levels[0].len() + self.levels.iter().skip(1).filter(|l| !l.is_empty()).count()
    }

    /// Number of non-empty levels, i.e. `L` in the paper's reward model
    /// (counting Level 0 as one level when populated).
    pub fn num_levels_nonempty(&self) -> usize {
        self.levels.iter().filter(|l| !l.is_empty()).count()
    }

    /// Index of the deepest non-empty level, or 0.
    pub fn deepest_level(&self) -> usize {
        self.levels.iter().rposition(|l| !l.is_empty()).unwrap_or(0)
    }

    /// Every live file id.
    pub fn live_files(&self) -> Vec<FileId> {
        self.levels.iter().flatten().map(|t| t.id).collect()
    }

    /// Tables in `level` overlapping `[start, end]`; `end = None` means
    /// unbounded above. For L0, returns every overlapping run newest-first.
    pub fn overlapping(
        &self,
        level: usize,
        start: &[u8],
        end: Option<&[u8]>,
    ) -> Vec<Arc<TableMeta>> {
        self.levels[level]
            .iter()
            .filter(|t| t.overlaps(start, end))
            .cloned()
            .collect()
    }

    /// In a deeper level, the single table that could contain `key`.
    pub fn table_for_key(&self, level: usize, key: &[u8]) -> Option<Arc<TableMeta>> {
        debug_assert!(level >= 1);
        let tables = &self.levels[level];
        let pp = tables.partition_point(|t| t.smallest.as_ref() <= key);
        if pp == 0 {
            return None;
        }
        let t = &tables[pp - 1];
        t.key_in_range(key).then(|| t.clone())
    }

    /// In a deeper level, the tables with `largest >= from`, in key order —
    /// the chain a scan starting at `from` walks.
    pub fn tables_from(&self, level: usize, from: &[u8]) -> Vec<Arc<TableMeta>> {
        debug_assert!(level >= 1);
        let tables = &self.levels[level];
        let pp = tables.partition_point(|t| t.largest.as_ref() < from);
        tables[pp..].to_vec()
    }

    /// Chooses the next compaction, if any is needed.
    ///
    /// Level 0 compacts when its file count reaches the trigger; deeper
    /// levels compact when their byte size exceeds the budget derived from
    /// `size_ratio`. The most overfull level wins.
    pub fn pick_compaction(&self, opts: &Options) -> Option<CompactionTask> {
        if self.levels[0].len() >= opts.l0_compaction_trigger {
            return Some(CompactionTask::L0ToL1);
        }
        let mut best: Option<(f64, usize)> = None;
        for lvl in 1..self.levels.len() - 1 {
            let max = opts.level_max_bytes(lvl) as f64;
            let score = self.level_bytes(lvl) as f64 / max;
            if score > 1.0 && best.is_none_or(|(s, _)| score > s) {
                best = Some((score, lvl));
            }
        }
        best.map(|(_, level)| CompactionTask::LevelDown { level })
    }

    /// Picks the source table for a `LevelDown { level }` task using the
    /// per-level round-robin cursor (RocksDB's default heuristic).
    pub fn pick_table(&mut self, level: usize) -> Option<Arc<TableMeta>> {
        let tables = &self.levels[level];
        if tables.is_empty() {
            return None;
        }
        let cursor = self.cursors[level] % tables.len();
        self.cursors[level] = cursor + 1;
        Some(tables[cursor].clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bloom::BloomFilter;
    use bytes::Bytes;

    fn meta(id: FileId, smallest: &str, largest: &str, bytes: u64) -> Arc<TableMeta> {
        Arc::new(TableMeta {
            id,
            num_blocks: 1,
            num_entries: 1,
            total_bytes: bytes,
            smallest: Bytes::copy_from_slice(smallest.as_bytes()),
            largest: Bytes::copy_from_slice(largest.as_bytes()),
            index: vec![Bytes::copy_from_slice(smallest.as_bytes())],
            bloom: BloomFilter::build(&[smallest.as_bytes()], 10),
        })
    }

    #[test]
    fn l0_is_newest_first() {
        let mut v = Version::new(7);
        v.add_l0(meta(1, "a", "m", 10));
        v.add_l0(meta(2, "c", "z", 10));
        assert_eq!(v.level(0)[0].id, 2);
        assert_eq!(v.level(0)[1].id, 1);
        assert_eq!(v.num_runs(), 2);
    }

    #[test]
    fn apply_compaction_moves_files_and_sorts() {
        let mut v = Version::new(7);
        v.add_l0(meta(1, "a", "m", 10));
        v.add_l0(meta(2, "n", "z", 10));
        v.apply_compaction(
            0,
            1,
            &[1, 2],
            vec![meta(4, "n", "z", 10), meta(3, "a", "m", 10)],
        )
        .unwrap();
        assert_eq!(v.level_files(0), 0);
        assert_eq!(v.level_files(1), 2);
        assert_eq!(v.level(1)[0].id, 3);
        assert_eq!(v.level(1)[1].id, 4);
        assert_eq!(v.num_runs(), 1);
        assert_eq!(v.num_levels_nonempty(), 1);
        assert_eq!(v.deepest_level(), 1);
        v.check_level_invariants().unwrap();
    }

    #[test]
    fn invariant_detects_overlap() {
        let mut v = Version::new(7);
        v.apply_compaction(0, 1, &[], vec![meta(1, "a", "m", 10)])
            .unwrap();
        // Force an overlapping insert bypassing the checked path.
        v.levels[1].push(meta(2, "k", "z", 10));
        assert!(v.check_level_invariants().is_err());
    }

    #[test]
    fn table_for_key_routes_correctly() {
        let mut v = Version::new(7);
        v.apply_compaction(
            0,
            1,
            &[],
            vec![
                meta(1, "a", "f", 10),
                meta(2, "h", "m", 10),
                meta(3, "p", "z", 10),
            ],
        )
        .unwrap();
        assert_eq!(v.table_for_key(1, b"b").unwrap().id, 1);
        assert_eq!(v.table_for_key(1, b"h").unwrap().id, 2);
        assert_eq!(v.table_for_key(1, b"m").unwrap().id, 2);
        assert!(v.table_for_key(1, b"g").is_none(), "gap between tables");
        assert!(v.table_for_key(1, b"A").is_none(), "before first");
        assert_eq!(v.table_for_key(1, b"z").unwrap().id, 3);
    }

    #[test]
    fn tables_from_returns_scan_chain() {
        let mut v = Version::new(7);
        v.apply_compaction(
            0,
            1,
            &[],
            vec![
                meta(1, "a", "f", 10),
                meta(2, "h", "m", 10),
                meta(3, "p", "z", 10),
            ],
        )
        .unwrap();
        let chain: Vec<_> = v.tables_from(1, b"i").iter().map(|t| t.id).collect();
        assert_eq!(chain, vec![2, 3]);
        let chain: Vec<_> = v.tables_from(1, b"g").iter().map(|t| t.id).collect();
        assert_eq!(chain, vec![2, 3]);
        assert!(v.tables_from(1, b"zz").is_empty());
    }

    #[test]
    fn pick_compaction_prefers_l0_then_overfull_level() {
        let opts = Options {
            l0_compaction_trigger: 2,
            l1_max_bytes: 100,
            ..Options::small()
        };
        let mut v = Version::new(4);
        assert_eq!(v.pick_compaction(&opts), None);
        v.add_l0(meta(1, "a", "b", 10));
        v.add_l0(meta(2, "a", "b", 10));
        assert_eq!(v.pick_compaction(&opts), Some(CompactionTask::L0ToL1));
        // Clear L0; overfill L1.
        v.apply_compaction(0, 1, &[1, 2], vec![meta(3, "a", "m", 150)])
            .unwrap();
        assert_eq!(
            v.pick_compaction(&opts),
            Some(CompactionTask::LevelDown { level: 1 })
        );
        // Move to L2 (within budget 100*ratio) => nothing to do.
        v.apply_compaction(1, 2, &[3], vec![meta(4, "a", "m", 150)])
            .unwrap();
        assert_eq!(v.pick_compaction(&opts), None);
    }

    #[test]
    fn round_robin_table_picking() {
        let mut v = Version::new(4);
        v.apply_compaction(0, 1, &[], vec![meta(1, "a", "b", 1), meta(2, "c", "d", 1)])
            .unwrap();
        assert_eq!(v.pick_table(1).unwrap().id, 1);
        assert_eq!(v.pick_table(1).unwrap().id, 2);
        assert_eq!(v.pick_table(1).unwrap().id, 1);
        assert!(v.pick_table(3).is_none());
    }

    #[test]
    fn overlapping_filters_by_range() {
        let mut v = Version::new(4);
        v.add_l0(meta(1, "a", "f", 1));
        v.add_l0(meta(2, "e", "k", 1));
        v.add_l0(meta(3, "x", "z", 1));
        let ids: Vec<_> = v
            .overlapping(0, b"d", Some(b"g"))
            .iter()
            .map(|t| t.id)
            .collect();
        assert_eq!(ids, vec![2, 1]); // newest first
        let ids: Vec<_> = v.overlapping(0, b"y", None).iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![3]);
    }

    #[test]
    fn live_files_lists_everything() {
        let mut v = Version::new(4);
        v.add_l0(meta(1, "a", "b", 1));
        v.apply_compaction(0, 1, &[], vec![meta(2, "c", "d", 1)])
            .unwrap();
        let mut files = v.live_files();
        files.sort_unstable();
        assert_eq!(files, vec![1, 2]);
    }
}
