//! SSTable building and reading.
//!
//! An SSTable is a sequence of prefix-compressed data blocks plus pinned
//! metadata: a sparse index (first key of every block), a Bloom filter over
//! all user keys, and key-range bounds. Metadata lives in memory for every
//! open table — as with RocksDB's pinned index/filter blocks — so only data
//! block fetches count as device I/O.
//!
//! Reads go through a [`BlockProvider`], the seam where the block cache
//! plugs in: the default provider always decodes from storage, while the
//! cache crate supplies one that consults the cache first and admits fills.

use crate::block::{Block, BlockBuilder};
use crate::bloom::BloomFilter;
use crate::compress::{unwrap_block, wrap_block};
use crate::error::{LsmError, Result};
use crate::options::Options;
use crate::storage::Storage;
use crate::types::{BlockRef, Entry, FileId, Key, KeyEntry};
use bytes::Bytes;
use std::collections::VecDeque;
use std::sync::Arc;

/// Pinned, immutable metadata for one SSTable.
#[derive(Debug, Clone)]
pub struct TableMeta {
    /// File id; doubles as the recency priority among Level-0 runs.
    pub id: FileId,
    /// Number of data blocks.
    pub num_blocks: u32,
    /// Number of entries across all blocks (tombstones included).
    pub num_entries: u64,
    /// Total encoded bytes of all data blocks.
    pub total_bytes: u64,
    /// Smallest user key in the table.
    pub smallest: Key,
    /// Largest user key in the table.
    pub largest: Key,
    /// First key of each block, for binary-searched block routing.
    pub index: Vec<Key>,
    /// Per-table Bloom filter over all user keys.
    pub bloom: BloomFilter,
}

impl TableMeta {
    /// Whether `key` falls inside this table's key range.
    pub fn key_in_range(&self, key: &[u8]) -> bool {
        self.smallest.as_ref() <= key && key <= self.largest.as_ref()
    }

    /// Whether the table's range overlaps `[start, end]` (inclusive bounds;
    /// `end = None` means unbounded above).
    pub fn overlaps(&self, start: &[u8], end: Option<&[u8]>) -> bool {
        let below = match end {
            Some(e) => self.smallest.as_ref() <= e,
            None => true,
        };
        below && self.largest.as_ref() >= start
    }

    /// The block that could contain `key`: the rightmost block whose first
    /// key is `<= key`. Returns `None` when `key` precedes the table.
    pub fn block_for_key(&self, key: &[u8]) -> Option<u32> {
        let pp = self.index.partition_point(|first| first.as_ref() <= key);
        if pp == 0 {
            None
        } else {
            Some((pp - 1) as u32)
        }
    }

    /// Approximate pinned-memory footprint (index + bloom), in bytes.
    pub fn pinned_bytes(&self) -> usize {
        self.index.iter().map(|k| k.len()).sum::<usize>() + self.bloom.memory_bytes()
    }

    /// Serializes the metadata for persistence alongside the blocks.
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::new();
        out.extend_from_slice(&self.id.to_le_bytes());
        out.extend_from_slice(&self.num_blocks.to_le_bytes());
        out.extend_from_slice(&self.num_entries.to_le_bytes());
        out.extend_from_slice(&self.total_bytes.to_le_bytes());
        let put_bytes = |out: &mut Vec<u8>, b: &[u8]| {
            out.extend_from_slice(&(b.len() as u32).to_le_bytes());
            out.extend_from_slice(b);
        };
        put_bytes(&mut out, &self.smallest);
        put_bytes(&mut out, &self.largest);
        for k in &self.index {
            put_bytes(&mut out, k);
        }
        self.bloom.encode(&mut out);
        Bytes::from(out)
    }

    /// Deserializes metadata previously written by [`TableMeta::encode`].
    pub fn decode(data: &[u8]) -> Result<Self> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
            if *pos + n > data.len() {
                return Err(LsmError::Corruption("table meta truncated".into()));
            }
            let s = &data[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        let id = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
        let num_blocks = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
        let num_entries = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
        let total_bytes = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
        let take_bytes = |pos: &mut usize| -> Result<Bytes> {
            let len = u32::from_le_bytes(take(pos, 4)?.try_into().unwrap()) as usize;
            Ok(Bytes::copy_from_slice(take(pos, len)?))
        };
        let smallest = take_bytes(&mut pos)?;
        let largest = take_bytes(&mut pos)?;
        let mut index = Vec::with_capacity(num_blocks as usize);
        for _ in 0..num_blocks {
            index.push(take_bytes(&mut pos)?);
        }
        let (bloom, _used) = BloomFilter::decode(&data[pos..])
            .ok_or_else(|| LsmError::Corruption("table meta bloom truncated".into()))?;
        Ok(TableMeta {
            id,
            num_blocks,
            num_entries,
            total_bytes,
            smallest,
            largest,
            index,
            bloom,
        })
    }
}

/// Source of decoded data blocks; the block cache's integration point.
pub trait BlockProvider: Send + Sync {
    /// Returns the decoded block `(table, block_no)`, fetching from storage
    /// on a cache miss. Implementations decide admission.
    fn block(&self, meta: &TableMeta, block_no: u32, storage: &dyn Storage) -> Result<Arc<Block>>;

    /// Notifies the provider that `files` were deleted by a compaction, so
    /// block-granularity state tied to those files must be invalidated.
    fn invalidate_files(&self, _files: &[FileId]) {}
}

/// Decodes a block as stored on the device: unwraps the compression frame,
/// then parses (and checksum-verifies) the block encoding.
pub fn decode_stored_block(stored: Bytes) -> Result<Block> {
    let raw = unwrap_block(&stored)?;
    Block::decode(Bytes::from(raw))
}

/// [`decode_stored_block`] with the block's address stamped into any
/// corruption error, so quarantine bookkeeping and fault journals can name
/// the damaged block instead of an anonymous payload.
pub fn decode_stored_block_at(file: FileId, block_no: u32, stored: Bytes) -> Result<Block> {
    decode_stored_block(stored).map_err(|e| match e {
        crate::error::LsmError::Corruption(msg) => {
            crate::error::LsmError::Corruption(format!("table {file} block {block_no}: {msg}"))
        }
        other => other,
    })
}

/// Provider that always fetches from storage: the no-block-cache baseline.
#[derive(Debug, Default)]
pub struct DirectProvider;

impl BlockProvider for DirectProvider {
    fn block(&self, meta: &TableMeta, block_no: u32, storage: &dyn Storage) -> Result<Arc<Block>> {
        let stored = storage.read_block(meta.id, block_no)?;
        Ok(Arc::new(decode_stored_block_at(meta.id, block_no, stored)?))
    }
}

/// Builds one SSTable, cutting blocks at the configured size.
pub struct TableBuilder {
    id: FileId,
    opts: Options,
    current: BlockBuilder,
    blocks: Vec<Bytes>,
    index: Vec<Key>,
    keys: Vec<Key>,
    smallest: Option<Key>,
    largest: Option<Key>,
    num_entries: u64,
    pending_first_key: Option<Key>,
}

impl TableBuilder {
    /// Starts a builder for file `id`.
    pub fn new(id: FileId, opts: &Options) -> Self {
        TableBuilder {
            id,
            opts: opts.clone(),
            current: BlockBuilder::new(opts.block_restart_interval),
            blocks: Vec::new(),
            index: Vec::new(),
            keys: Vec::new(),
            smallest: None,
            largest: None,
            num_entries: 0,
            pending_first_key: None,
        }
    }

    /// Appends an entry; keys must be strictly ascending across the table.
    pub fn add(&mut self, key: &[u8], entry: &Entry) -> Result<()> {
        if self.current.is_empty() {
            self.pending_first_key = Some(Bytes::copy_from_slice(key));
        }
        self.current.add(key, entry)?;
        let kb = Bytes::copy_from_slice(key);
        if self.smallest.is_none() {
            self.smallest = Some(kb.clone());
        }
        self.largest = Some(kb.clone());
        self.keys.push(kb);
        self.num_entries += 1;
        if self.current.size_estimate() >= self.opts.block_size {
            self.cut_block();
        }
        Ok(())
    }

    fn cut_block(&mut self) {
        if self.current.is_empty() {
            return;
        }
        let builder = std::mem::replace(
            &mut self.current,
            BlockBuilder::new(self.opts.block_restart_interval),
        );
        // Frame (and optionally compress) the encoded block for storage.
        let stored = wrap_block(&builder.finish(), self.opts.compression);
        self.blocks.push(Bytes::from(stored));
        self.index.push(
            self.pending_first_key
                .take()
                .expect("non-empty block has a first key"),
        );
    }

    /// Estimated total encoded size so far (used by compaction to cut
    /// output tables at `sstable_size`).
    pub fn estimated_size(&self) -> usize {
        self.blocks.iter().map(|b| b.len()).sum::<usize>() + self.current.size_estimate()
    }

    /// Number of entries added so far.
    pub fn num_entries(&self) -> u64 {
        self.num_entries
    }

    /// Whether nothing has been added.
    pub fn is_empty(&self) -> bool {
        self.num_entries == 0
    }

    /// Seals the table, writes blocks + metadata to `storage`, and returns
    /// the pinned metadata.
    pub fn finish(mut self, storage: &dyn Storage) -> Result<Arc<TableMeta>> {
        self.cut_block();
        if self.blocks.is_empty() {
            return Err(LsmError::InvalidArgument(
                "cannot finish an empty table".into(),
            ));
        }
        let total_bytes: u64 = self.blocks.iter().map(|b| b.len() as u64).sum();
        let bloom = BloomFilter::build(&self.keys, self.opts.bloom_bits_per_key);
        let meta = TableMeta {
            id: self.id,
            num_blocks: self.blocks.len() as u32,
            num_entries: self.num_entries,
            total_bytes,
            smallest: self.smallest.expect("non-empty table"),
            largest: self.largest.expect("non-empty table"),
            index: self.index,
            bloom,
        };
        storage.write_table(self.id, self.blocks, meta.encode())?;
        Ok(Arc::new(meta))
    }
}

/// Point lookup inside one table.
///
/// Returns `Ok(None)` when the table provably does not contain the key
/// (range/bloom/index negative) — without any device I/O — and otherwise
/// fetches exactly one block through the provider.
pub fn table_get(
    meta: &TableMeta,
    provider: &dyn BlockProvider,
    storage: &dyn Storage,
    key: &[u8],
) -> Result<Option<Entry>> {
    if !meta.key_in_range(key) || !meta.bloom.may_contain(key) {
        return Ok(None);
    }
    let Some(block_no) = meta.block_for_key(key) else {
        return Ok(None);
    };
    let block = provider.block(meta, block_no, storage)?;
    block.get(key)
}

/// Streaming iterator over one table starting at `from`.
///
/// Blocks are fetched lazily through the provider as the cursor crosses
/// block boundaries; creating the iterator costs at most one block fetch
/// (the seek phase of a scan, per the paper's I/O model).
pub struct TableIter {
    meta: Arc<TableMeta>,
    next_block: u32,
    buf: VecDeque<KeyEntry>,
}

impl TableIter {
    /// Positions a cursor at the first entry with key `>= from`.
    pub fn seek(
        meta: Arc<TableMeta>,
        provider: &dyn BlockProvider,
        storage: &dyn Storage,
        from: &[u8],
    ) -> Result<Self> {
        let start_block = meta.block_for_key(from).unwrap_or(0);
        let mut iter = TableIter {
            meta,
            next_block: start_block,
            buf: VecDeque::new(),
        };
        iter.fill(provider, storage, Some(from))?;
        Ok(iter)
    }

    fn fill(
        &mut self,
        provider: &dyn BlockProvider,
        storage: &dyn Storage,
        from: Option<&[u8]>,
    ) -> Result<()> {
        while self.buf.is_empty() && self.next_block < self.meta.num_blocks {
            let block = provider.block(&self.meta, self.next_block, storage)?;
            self.next_block += 1;
            match from {
                Some(f) => {
                    for ke in block.iter_from(f)? {
                        self.buf.push_back(ke?);
                    }
                }
                None => {
                    for ke in block.iter() {
                        self.buf.push_back(ke?);
                    }
                }
            }
        }
        Ok(())
    }

    /// Current head entry without consuming it.
    pub fn peek(&self) -> Option<&KeyEntry> {
        self.buf.front()
    }

    /// Consumes and returns the head entry, refilling from the next block
    /// when the buffered one is exhausted.
    pub fn advance(
        &mut self,
        provider: &dyn BlockProvider,
        storage: &dyn Storage,
    ) -> Result<Option<KeyEntry>> {
        let head = self.buf.pop_front();
        if self.buf.is_empty() {
            self.fill(provider, storage, None)?;
        }
        Ok(head)
    }

    /// The table this cursor reads.
    pub fn table_id(&self) -> FileId {
        self.meta.id
    }
}

/// Convenience: a [`BlockRef`] for a position in `meta`.
pub fn block_ref(meta: &TableMeta, block_no: u32) -> BlockRef {
    BlockRef::new(meta.id, block_no)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn build_table(n: usize, opts: &Options, storage: &dyn Storage) -> Arc<TableMeta> {
        let mut b = TableBuilder::new(1, opts);
        for i in 0..n {
            let k = format!("key{i:06}");
            let v = format!("value-{i}");
            b.add(k.as_bytes(), &Entry::Put(Bytes::from(v))).unwrap();
        }
        b.finish(storage).unwrap()
    }

    #[test]
    fn build_and_get_all_keys() {
        let opts = Options::small();
        let storage = MemStorage::new();
        let meta = build_table(1000, &opts, &storage);
        assert!(meta.num_blocks > 1, "should span multiple blocks");
        assert_eq!(meta.num_entries, 1000);
        assert_eq!(meta.smallest.as_ref(), b"key000000");
        assert_eq!(meta.largest.as_ref(), b"key000999");

        let p = DirectProvider;
        for i in (0..1000).step_by(37) {
            let k = format!("key{i:06}");
            let got = table_get(&meta, &p, &storage, k.as_bytes())
                .unwrap()
                .unwrap();
            assert_eq!(
                got.value().unwrap().as_ref(),
                format!("value-{i}").as_bytes()
            );
        }
        assert!(table_get(&meta, &p, &storage, b"missing")
            .unwrap()
            .is_none());
        assert!(table_get(&meta, &p, &storage, b"key9999999")
            .unwrap()
            .is_none());
    }

    #[test]
    fn bloom_and_range_skip_without_io() {
        let opts = Options::small();
        let storage = MemStorage::new();
        let meta = build_table(1000, &opts, &storage);
        let p = DirectProvider;
        let before = storage.stats().reads();
        // Out of range: no I/O.
        table_get(&meta, &p, &storage, b"zzz").unwrap();
        assert_eq!(storage.stats().reads(), before);
        // In range but bloom-filtered (with overwhelming probability).
        let mut skipped = 0;
        for i in 0..100 {
            let probe = format!("key{i:06}x");
            let r0 = storage.stats().reads();
            table_get(&meta, &p, &storage, probe.as_bytes()).unwrap();
            if storage.stats().reads() == r0 {
                skipped += 1;
            }
        }
        assert!(
            skipped >= 95,
            "bloom should skip nearly all absent keys, skipped={skipped}"
        );
    }

    #[test]
    fn point_lookup_reads_exactly_one_block() {
        let opts = Options::small();
        let storage = MemStorage::new();
        let meta = build_table(1000, &opts, &storage);
        let p = DirectProvider;
        let before = storage.stats().reads();
        table_get(&meta, &p, &storage, b"key000500")
            .unwrap()
            .unwrap();
        assert_eq!(storage.stats().reads(), before + 1);
    }

    #[test]
    fn iter_scans_across_blocks() {
        let opts = Options::small();
        let storage = MemStorage::new();
        let meta = build_table(500, &opts, &storage);
        let p = DirectProvider;
        let mut it = TableIter::seek(meta.clone(), &p, &storage, b"key000123").unwrap();
        let mut got = Vec::new();
        while let Some(ke) = it.advance(&p, &storage).unwrap() {
            got.push(ke.key);
            if got.len() == 300 {
                break;
            }
        }
        assert_eq!(got.len(), 300);
        assert_eq!(got[0].as_ref(), b"key000123");
        assert_eq!(got[299].as_ref(), b"key000422");
        for w in got.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn iter_seek_before_start_and_past_end() {
        let opts = Options::small();
        let storage = MemStorage::new();
        let meta = build_table(10, &opts, &storage);
        let p = DirectProvider;
        let mut it = TableIter::seek(meta.clone(), &p, &storage, b"a").unwrap();
        assert_eq!(
            it.advance(&p, &storage).unwrap().unwrap().key.as_ref(),
            b"key000000"
        );
        let mut it = TableIter::seek(meta, &p, &storage, b"zzz").unwrap();
        assert!(it.advance(&p, &storage).unwrap().is_none());
    }

    #[test]
    fn meta_encode_decode_roundtrip() {
        let opts = Options::small();
        let storage = MemStorage::new();
        let meta = build_table(300, &opts, &storage);
        let blob = meta.encode();
        let decoded = TableMeta::decode(&blob).unwrap();
        assert_eq!(decoded.id, meta.id);
        assert_eq!(decoded.num_blocks, meta.num_blocks);
        assert_eq!(decoded.num_entries, meta.num_entries);
        assert_eq!(decoded.total_bytes, meta.total_bytes);
        assert_eq!(decoded.smallest, meta.smallest);
        assert_eq!(decoded.largest, meta.largest);
        assert_eq!(decoded.index, meta.index);
        assert!(decoded.bloom.may_contain(b"key000000"));
        // And the persisted copy in storage matches.
        let persisted = TableMeta::decode(&storage.read_meta(meta.id).unwrap()).unwrap();
        assert_eq!(persisted.index, meta.index);
    }

    #[test]
    fn meta_decode_rejects_truncation() {
        let opts = Options::small();
        let storage = MemStorage::new();
        let meta = build_table(50, &opts, &storage);
        let blob = meta.encode();
        for cut in [0, 4, 10, blob.len() / 2, blob.len() - 1] {
            assert!(TableMeta::decode(&blob[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn overlap_checks() {
        let opts = Options::small();
        let storage = MemStorage::new();
        let meta = build_table(100, &opts, &storage);
        assert!(meta.overlaps(b"key000050", Some(b"key000060")));
        assert!(meta.overlaps(b"a", None));
        assert!(meta.overlaps(b"key000099", Some(b"zzz")));
        assert!(!meta.overlaps(b"zzz", None));
        assert!(!meta.overlaps(b"a", Some(b"b")));
    }

    #[test]
    fn tombstones_roundtrip_through_tables() {
        let opts = Options::small();
        let storage = MemStorage::new();
        let mut b = TableBuilder::new(9, &opts);
        b.add(b"alive", &Entry::Put(Bytes::from_static(b"v")))
            .unwrap();
        b.add(b"dead", &Entry::Tombstone).unwrap();
        let meta = b.finish(&storage).unwrap();
        let p = DirectProvider;
        assert_eq!(
            table_get(&meta, &p, &storage, b"dead").unwrap(),
            Some(Entry::Tombstone)
        );
    }

    #[test]
    fn empty_table_finish_is_error() {
        let opts = Options::small();
        let storage = MemStorage::new();
        let b = TableBuilder::new(2, &opts);
        assert!(b.finish(&storage).is_err());
    }
}
