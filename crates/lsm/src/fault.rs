//! Deterministic fault injection for the storage layer.
//!
//! Robustness experiments need misbehaving devices that misbehave the *same
//! way* on every run. This module provides two seeded, scriptable primitives:
//!
//! - [`FaultStorage`]: a decorator over any [`Storage`] backend that injects
//!   faults according to a [`FaultPlan`] — transient and permanent read
//!   errors, whole-write failures, torn writes (a truncated prefix of the
//!   table reaches the device before the "power cut"), bit-flip corruption
//!   of returned blocks, and latency spikes charged to the simulated clock.
//!   Every decision is a pure function of `(seed, op counter)` or
//!   `(seed, file, block)`, so a run replays bit-for-bit from its seed.
//! - [`CrashController`] / [`CrashPoint`]: armable process-death hooks that
//!   the engine checks at its crash-consistency seams (flush, compaction,
//!   manifest commit, WAL reset). When the armed hook fires the engine call
//!   returns [`LsmError::Injected`]; the harness must treat the instance as
//!   dead, drop it, and reopen from durable state — exactly a `kill -9`.
//!
//! Transient faults resolve on retry because the per-op counter advances;
//! permanent read faults are a property of the `(file, block)` address and
//! never heal. Bit flips corrupt the *returned copy* only — the device data
//! stays intact, so a retry after checksum rejection reads clean bytes.
//! Metadata reads are left fault-free by design: table metadata is pinned at
//! open and faulting it would only model a corrupted open, which the manifest
//! rollback path covers separately.

use crate::error::{LsmError, Result};
use crate::storage::{IoStats, Storage};
use crate::types::FileId;
use adcache_obs::{Event, FaultKind, Obs};
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// SplitMix64 — the standard 64-bit finalizer; one call per decision keeps
/// fault draws independent across ops and fault kinds.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` from 53 high bits.
fn u01(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

const SALT_READ_TRANSIENT: u64 = 0x01;
const SALT_READ_PERMANENT: u64 = 0x02;
const SALT_WRITE_FAIL: u64 = 0x03;
const SALT_TORN_WRITE: u64 = 0x04;
const SALT_TORN_LEN: u64 = 0x05;
const SALT_BIT_FLIP: u64 = 0x06;
const SALT_FLIP_POS: u64 = 0x07;
const SALT_DELETE_FAIL: u64 = 0x08;
const SALT_LATENCY: u64 = 0x09;
const SALT_CRASH_DROP: u64 = 0x0A;
const SALT_CRASH_KEEP: u64 = 0x0B;

/// Per-fault-kind probabilities for a [`FaultStorage`].
///
/// All probabilities are in `[0, 1]` and are drawn independently per
/// operation (per address for `read_permanent`). A default plan injects
/// nothing.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Probability a block read fails once with [`LsmError::Injected`];
    /// the same read retried succeeds (unless it draws a new fault).
    pub read_transient: f64,
    /// Probability a given `(file, block)` address is permanently
    /// unreadable. Sticky: a function of the address, not the op counter.
    pub read_permanent: f64,
    /// Probability a table write fails atomically — nothing reaches the
    /// device.
    pub write_fail: f64,
    /// Probability a table write is torn: a strict prefix of the blocks is
    /// persisted (metadata lost) and the write reports failure.
    pub torn_write: f64,
    /// Probability a successfully read block is returned with one byte
    /// flipped. The device copy stays intact; block checksums catch it.
    pub bit_flip: f64,
    /// Probability a table delete (the storage sync/GC path) fails
    /// transiently, leaving the obsolete file behind.
    pub delete_fail: f64,
    /// Probability a block read is charged [`FaultPlan::latency_spike_ns`]
    /// extra simulated nanoseconds.
    pub latency_spike: f64,
    /// Extra simulated time per latency spike.
    pub latency_spike_ns: u64,
}

impl FaultPlan {
    /// No faults at all (useful as a neutral baseline for plan swapping).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// The `faultcheck` storm: torn writes, bit flips, transient read
    /// errors, occasional failed writes/deletes, and latency spikes — every
    /// fault class the engine must degrade gracefully under, but no
    /// permanent faults, so all acknowledged data stays reachable.
    pub fn storm() -> Self {
        FaultPlan {
            read_transient: 0.08,
            read_permanent: 0.0,
            write_fail: 0.05,
            torn_write: 0.08,
            bit_flip: 0.04,
            delete_fail: 0.10,
            latency_spike: 0.05,
            latency_spike_ns: 2_000_000,
        }
    }
}

/// Running counters for injected faults, one per fault class.
#[derive(Debug, Default)]
pub struct FaultStats {
    /// Transient read errors injected.
    pub read_transient: AtomicU64,
    /// Permanent read errors served (may repeat per address).
    pub read_permanent: AtomicU64,
    /// Atomic write failures injected.
    pub write_fail: AtomicU64,
    /// Torn writes injected.
    pub torn_write: AtomicU64,
    /// Bit flips injected into returned blocks.
    pub bit_flip: AtomicU64,
    /// Delete/sync failures injected.
    pub delete_fail: AtomicU64,
    /// Latency spikes charged.
    pub latency_spike: AtomicU64,
}

impl FaultStats {
    /// Total faults injected across all classes.
    pub fn total(&self) -> u64 {
        self.read_transient.load(Ordering::Relaxed)
            + self.read_permanent.load(Ordering::Relaxed)
            + self.write_fail.load(Ordering::Relaxed)
            + self.torn_write.load(Ordering::Relaxed)
            + self.bit_flip.load(Ordering::Relaxed)
            + self.delete_fail.load(Ordering::Relaxed)
            + self.latency_spike.load(Ordering::Relaxed)
    }
}

/// A [`Storage`] decorator that injects deterministic faults per a
/// [`FaultPlan`].
///
/// Wraps any backend, so both `MemStorage` experiments and `FileStorage`
/// crash drills see identical fault semantics. Fault injection can be
/// paused ([`FaultStorage::set_active`]) for setup and verification phases.
pub struct FaultStorage {
    inner: Arc<dyn Storage>,
    seed: u64,
    plan: RwLock<FaultPlan>,
    active: AtomicBool,
    ops: AtomicU64,
    /// Addresses that have served a permanent fault, for reporting.
    permanent_bad: RwLock<HashSet<(FileId, u32)>>,
    stats: FaultStats,
    obs: RwLock<Obs>,
    /// Write-back cache model (`None` until enabled): tracks which
    /// completed operations are not yet durable, so a crash can undo them.
    write_back: Mutex<Option<WriteBack>>,
}

/// Completed-but-unsynced device state, from the write-back cache's point
/// of view. Writes pass through to the inner device (so reads and I/O
/// accounting stay exact) while this undo log remembers what a power loss
/// would take back.
#[derive(Debug, Default)]
struct WriteBack {
    /// Tables written since their last `sync_table`: a crash may drop them
    /// wholly or tear them to a block prefix. Keeps a copy of the payload
    /// so the torn remnant can be re-materialized.
    created: HashMap<FileId, (Vec<Bytes>, Bytes)>,
    /// Contents synced, directory entry not: a crash erases the file from
    /// the namespace even though its bytes hit the platter.
    await_dir: HashSet<FileId>,
    /// Deletions deferred until the next `sync_dir`; a crash undoes them
    /// and the obsolete tables resurrect as orphans.
    pending_delete: HashSet<FileId>,
}

impl FaultStorage {
    /// Wraps `inner`, injecting faults per `plan` with draws seeded by
    /// `seed`. Starts active.
    pub fn new(inner: Arc<dyn Storage>, seed: u64, plan: FaultPlan) -> Self {
        FaultStorage {
            inner,
            seed,
            plan: RwLock::new(plan),
            active: AtomicBool::new(true),
            ops: AtomicU64::new(0),
            permanent_bad: RwLock::new(HashSet::new()),
            stats: FaultStats::default(),
            obs: RwLock::new(Obs::disabled()),
            write_back: Mutex::new(None),
        }
    }

    /// Enables the write-back cache model: completed writes and deletes
    /// stay undoable until the matching `sync_table` / `sync_dir`, and
    /// [`FaultStorage::crash_drop_unsynced`] can take them back. Stays on
    /// for the life of the decorator (and across `set_active(false)` —
    /// cache volatility is device semantics, not a fault).
    pub fn enable_write_back(&self) {
        let mut wb = self.write_back.lock();
        if wb.is_none() {
            *wb = Some(WriteBack::default());
        }
    }

    /// Number of tables with any unsynced state (test / drill helper).
    pub fn unsynced_tables(&self) -> usize {
        self.write_back
            .lock()
            .as_ref()
            .map(|wb| wb.created.len() + wb.await_dir.len() + wb.pending_delete.len())
            .unwrap_or(0)
    }

    /// Simulates power loss against the write-back cache: every unsynced
    /// table creation is dropped wholly, torn to a strict block prefix
    /// (metadata lost), or survives by luck — seeded per table; tables
    /// whose contents were synced but whose directory entry was not vanish
    /// from the namespace; unsynced deletions are undone, resurrecting
    /// obsolete tables as orphans. Returns `(files affected, bytes
    /// dropped)` and journals an `UnsyncedLoss` event. No-op until
    /// [`FaultStorage::enable_write_back`].
    pub fn crash_drop_unsynced(&self, seed: u64) -> (u64, u64) {
        let mut guard = self.write_back.lock();
        let Some(wb) = guard.as_mut() else {
            return (0, 0);
        };
        let mut files = 0u64;
        let mut bytes = 0u64;
        let mut ids: Vec<FileId> = wb.created.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let (blocks, meta) = wb.created.remove(&id).expect("listed id");
            let h = splitmix64(seed ^ splitmix64(id ^ (SALT_CRASH_DROP << 56)));
            let payload = blocks.iter().map(|b| b.len() as u64).sum::<u64>() + meta.len() as u64;
            match h % 4 {
                3 => continue, // the cache happened to drain in time
                0 => {
                    // Dropped wholly: the file never reached the platter.
                    let _ = self.inner.delete_table(id);
                    files += 1;
                    bytes += payload;
                }
                _ => {
                    // Torn: a strict prefix of the blocks survives and the
                    // trailing metadata is gone — an unreadable orphan.
                    let keep = if blocks.is_empty() {
                        0
                    } else {
                        (splitmix64(h ^ (SALT_CRASH_KEEP << 56)) % blocks.len() as u64) as usize
                    };
                    let kept: u64 = blocks[..keep].iter().map(|b| b.len() as u64).sum();
                    let _ = self.inner.delete_table(id);
                    let _ = self
                        .inner
                        .write_table(id, blocks[..keep].to_vec(), Bytes::new());
                    files += 1;
                    bytes += payload - kept;
                }
            }
        }
        let mut await_dir: Vec<FileId> = wb.await_dir.drain().collect();
        await_dir.sort_unstable();
        for id in await_dir {
            // fsync'd contents without a durable directory entry are
            // unreachable after restart: the file is lost all the same.
            let _ = self.inner.delete_table(id);
            files += 1;
        }
        files += wb.pending_delete.len() as u64;
        wb.pending_delete.clear();
        drop(guard);
        if files > 0 || bytes > 0 {
            self.obs
                .read()
                .emit(|| Event::UnsyncedLoss { files, bytes });
        }
        (files, bytes)
    }

    /// Completed write: passes through to the device, and when the
    /// write-back model is on, remembers the payload as undoable.
    fn write_back_write(&self, id: FileId, blocks: Vec<Bytes>, meta: Bytes) -> Result<()> {
        let mut guard = self.write_back.lock();
        if let Some(wb) = guard.as_mut() {
            if wb.pending_delete.contains(&id) {
                return Err(LsmError::InvalidArgument(format!(
                    "table {id} already exists"
                )));
            }
            self.inner.write_table(id, blocks.clone(), meta.clone())?;
            wb.created.insert(id, (blocks, meta));
            Ok(())
        } else {
            self.inner.write_table(id, blocks, meta)
        }
    }

    /// Enables or disables injection without touching the plan. The op
    /// counter keeps advancing only on faulted paths, so pausing is free.
    pub fn set_active(&self, active: bool) {
        self.active.store(active, Ordering::SeqCst);
    }

    /// Whether injection is currently active.
    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::SeqCst)
    }

    /// Replaces the fault plan (e.g. to escalate a storm mid-run).
    pub fn set_plan(&self, plan: FaultPlan) {
        *self.plan.write() = plan;
    }

    /// Attaches an observability handle; each injected fault is journaled.
    pub fn set_obs(&self, obs: Obs) {
        *self.obs.write() = obs;
    }

    /// Injected-fault counters.
    pub fn fault_stats(&self) -> &FaultStats {
        &self.stats
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &Arc<dyn Storage> {
        &self.inner
    }

    /// Addresses that have served a permanent read fault so far.
    pub fn permanent_bad(&self) -> Vec<(FileId, u32)> {
        let mut v: Vec<_> = self.permanent_bad.read().iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// One fault draw: uniform in `[0,1)` from `(seed, op, salt)`.
    fn roll(&self, op: u64, salt: u64) -> f64 {
        u01(splitmix64(self.seed ^ splitmix64(op ^ (salt << 56))))
    }

    /// Permanent faults are addressed by `(file, block)`, not by op, so
    /// they persist across retries and reopens of the same device.
    fn address_is_permanent_bad(&self, p: f64, id: FileId, block_no: u32) -> bool {
        if p <= 0.0 {
            return false;
        }
        let h = splitmix64(
            self.seed ^ splitmix64(id ^ ((block_no as u64) << 32) ^ (SALT_READ_PERMANENT << 56)),
        );
        u01(h) < p
    }

    fn emit(&self, kind: FaultKind, file: FileId, block: u64) {
        self.obs
            .read()
            .emit(|| Event::FaultInjected { kind, file, block });
    }
}

impl Storage for FaultStorage {
    fn write_table(&self, id: FileId, blocks: Vec<Bytes>, meta: Bytes) -> Result<()> {
        if !self.is_active() {
            return self.write_back_write(id, blocks, meta);
        }
        let plan = self.plan.read().clone();
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        if self.roll(op, SALT_WRITE_FAIL) < plan.write_fail {
            self.stats.write_fail.fetch_add(1, Ordering::Relaxed);
            self.emit(FaultKind::WriteFail, id, 0);
            return Err(LsmError::Injected(format!(
                "write failure: table {id} not persisted"
            )));
        }
        if self.roll(op, SALT_TORN_WRITE) < plan.torn_write {
            // Persist a strict prefix of the blocks and drop the metadata:
            // the device lost power mid-append. The caller sees an error and
            // must not reference the table; the partial file is an orphan.
            let keep = if blocks.is_empty() {
                0
            } else {
                (splitmix64(self.seed ^ splitmix64(op ^ (SALT_TORN_LEN << 56)))
                    % blocks.len() as u64) as usize
            };
            let total = blocks.len();
            self.stats.torn_write.fetch_add(1, Ordering::Relaxed);
            self.emit(FaultKind::TornWrite, id, keep as u64);
            self.write_back_write(id, blocks[..keep].to_vec(), Bytes::new())?;
            return Err(LsmError::Injected(format!(
                "torn write: table {id} persisted {keep}/{total} blocks"
            )));
        }
        self.write_back_write(id, blocks, meta)
    }

    fn read_block(&self, id: FileId, block_no: u32) -> Result<Bytes> {
        if !self.is_active() {
            return self.inner.read_block(id, block_no);
        }
        let plan = self.plan.read().clone();
        if self.address_is_permanent_bad(plan.read_permanent, id, block_no) {
            self.permanent_bad.write().insert((id, block_no));
            self.stats.read_permanent.fetch_add(1, Ordering::Relaxed);
            self.emit(FaultKind::ReadPermanent, id, block_no as u64);
            return Err(LsmError::Injected(format!(
                "permanent read fault: table {id} block {block_no}"
            )));
        }
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        if self.roll(op, SALT_READ_TRANSIENT) < plan.read_transient {
            self.stats.read_transient.fetch_add(1, Ordering::Relaxed);
            self.emit(FaultKind::ReadTransient, id, block_no as u64);
            return Err(LsmError::Injected(format!(
                "transient read fault: table {id} block {block_no}"
            )));
        }
        if self.roll(op, SALT_LATENCY) < plan.latency_spike {
            self.stats.latency_spike.fetch_add(1, Ordering::Relaxed);
            self.emit(FaultKind::LatencySpike, id, block_no as u64);
            self.inner
                .stats()
                .simulated_ns
                .fetch_add(plan.latency_spike_ns, Ordering::Relaxed);
        }
        let data = self.inner.read_block(id, block_no)?;
        if self.roll(op, SALT_BIT_FLIP) < plan.bit_flip && !data.is_empty() {
            let pos = (splitmix64(self.seed ^ splitmix64(op ^ (SALT_FLIP_POS << 56)))
                % data.len() as u64) as usize;
            let mut corrupted = data.to_vec();
            corrupted[pos] ^= 0x40;
            self.stats.bit_flip.fetch_add(1, Ordering::Relaxed);
            self.emit(FaultKind::BitFlip, id, block_no as u64);
            return Ok(Bytes::from(corrupted));
        }
        Ok(data)
    }

    fn read_meta(&self, id: FileId) -> Result<Bytes> {
        self.inner.read_meta(id)
    }

    fn delete_table(&self, id: FileId) -> Result<()> {
        if self.is_active() {
            let plan = self.plan.read().clone();
            let op = self.ops.fetch_add(1, Ordering::Relaxed);
            if self.roll(op, SALT_DELETE_FAIL) < plan.delete_fail {
                self.stats.delete_fail.fetch_add(1, Ordering::Relaxed);
                self.emit(FaultKind::DeleteFail, id, 0);
                return Err(LsmError::Injected(format!(
                    "delete/sync failure: table {id} left behind"
                )));
            }
        }
        let mut guard = self.write_back.lock();
        if let Some(wb) = guard.as_mut() {
            if wb.created.remove(&id).is_some() {
                // Deleting a never-synced table cancels it outright; there
                // is nothing for a crash to resurrect.
                wb.await_dir.remove(&id);
                return self.inner.delete_table(id);
            }
            if wb.pending_delete.contains(&id) {
                return Err(LsmError::NotFound(format!("table {id}")));
            }
            if !self.inner.list_tables().contains(&id) {
                return Err(LsmError::NotFound(format!("table {id}")));
            }
            // The unlink completes from the caller's perspective but only
            // becomes durable at the next directory sync.
            wb.await_dir.remove(&id);
            wb.pending_delete.insert(id);
            return Ok(());
        }
        drop(guard);
        self.inner.delete_table(id)
    }

    fn sync_table(&self, id: FileId) -> Result<()> {
        let mut guard = self.write_back.lock();
        if let Some(wb) = guard.as_mut() {
            if wb.created.remove(&id).is_some() {
                // Contents are now durable; the directory entry still needs
                // a `sync_dir` before the file survives a crash.
                wb.await_dir.insert(id);
            }
        }
        drop(guard);
        self.inner.sync_table(id)
    }

    fn sync_dir(&self) -> Result<()> {
        let mut guard = self.write_back.lock();
        if let Some(wb) = guard.as_mut() {
            wb.await_dir.clear();
            let mut doomed: Vec<FileId> = wb.pending_delete.drain().collect();
            doomed.sort_unstable();
            for id in doomed {
                let _ = self.inner.delete_table(id);
            }
        }
        drop(guard);
        self.inner.sync_dir()
    }

    fn list_tables(&self) -> Vec<FileId> {
        let mut ids = self.inner.list_tables();
        if let Some(wb) = self.write_back.lock().as_ref() {
            ids.retain(|id| !wb.pending_delete.contains(id));
        }
        ids
    }

    fn sync_cost_ns(&self) -> u64 {
        self.inner.sync_cost_ns()
    }

    fn stats(&self) -> &IoStats {
        self.inner.stats()
    }

    fn table_count(&self) -> usize {
        if self.write_back.lock().is_some() {
            return self.list_tables().len();
        }
        self.inner.table_count()
    }
}

/// Crash-consistency seams where the engine volunteers to "die".
///
/// Each point sits between two durability steps whose ordering carries a
/// recovery guarantee; firing there exercises the reopen path with exactly
/// one step persisted and the next one lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// Flush: after the L0 SST is on the device, before the version /
    /// manifest reference it. The SST becomes an orphan; the WAL still
    /// covers every record.
    FlushAfterSst,
    /// Inside any manifest commit, before the new manifest is written. The
    /// previous manifest stays authoritative.
    BeforeManifestCommit,
    /// Flush: after the manifest references the new L0 table, before the
    /// WAL is reset. Replay re-applies records already in the table —
    /// recovery must stay idempotent.
    FlushAfterManifest,
    /// Flush: after the WAL reset — the fully-committed end state.
    FlushAfterWalReset,
    /// Compaction: after outputs are written and the in-memory version
    /// switched, before the manifest commit. The old manifest still
    /// references the (undeleted) inputs.
    CompactionAfterRun,
    /// Compaction: after the manifest commit, before obsolete inputs are
    /// deleted. Inputs become orphans.
    CompactionAfterManifest,
}

impl CrashPoint {
    /// Stable journal/debug label.
    pub fn label(&self) -> &'static str {
        match self {
            CrashPoint::FlushAfterSst => "flush_after_sst",
            CrashPoint::BeforeManifestCommit => "before_manifest_commit",
            CrashPoint::FlushAfterManifest => "flush_after_manifest",
            CrashPoint::FlushAfterWalReset => "flush_after_wal_reset",
            CrashPoint::CompactionAfterRun => "compaction_after_run",
            CrashPoint::CompactionAfterManifest => "compaction_after_manifest",
        }
    }

    /// Every crash point, for harnesses that pick one pseudo-randomly.
    pub fn all() -> &'static [CrashPoint] {
        &[
            CrashPoint::FlushAfterSst,
            CrashPoint::BeforeManifestCommit,
            CrashPoint::FlushAfterManifest,
            CrashPoint::FlushAfterWalReset,
            CrashPoint::CompactionAfterRun,
            CrashPoint::CompactionAfterManifest,
        ]
    }
}

#[derive(Debug, Clone, Copy)]
struct Armed {
    point: CrashPoint,
    countdown: u64,
}

/// Arms one [`CrashPoint`] to fire on its nth hit.
///
/// When the armed point fires, [`CrashController::check`] returns
/// [`LsmError::Injected`] and the controller disarms. The harness must then
/// treat the engine instance as crashed: stop issuing operations, drop it,
/// and reopen from the durable directory. In-memory state after a fired
/// crash is intentionally unspecified — a real `kill -9` would have taken
/// it too.
#[derive(Debug, Default)]
pub struct CrashController {
    armed: Mutex<Option<Armed>>,
    hits: AtomicU64,
    fired: AtomicBool,
}

impl CrashController {
    /// A disarmed controller.
    pub fn new() -> Arc<Self> {
        Arc::new(CrashController::default())
    }

    /// Arms `point` to fire on its `nth` hit (1-based; `nth == 0` is
    /// treated as 1). Re-arming replaces any previous arming and clears the
    /// fired flag.
    pub fn arm(&self, point: CrashPoint, nth: u64) {
        *self.armed.lock() = Some(Armed {
            point,
            countdown: nth.max(1),
        });
        self.fired.store(false, Ordering::SeqCst);
    }

    /// Disarms without firing.
    pub fn disarm(&self) {
        *self.armed.lock() = None;
    }

    /// Whether the armed point has fired since the last [`Self::arm`].
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::SeqCst)
    }

    /// Total crash-point hits observed (any point, armed or not).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Called by the engine at each seam; returns the injected crash error
    /// when the armed point's countdown reaches zero.
    pub fn check(&self, point: CrashPoint) -> Result<()> {
        self.hits.fetch_add(1, Ordering::Relaxed);
        let mut armed = self.armed.lock();
        if let Some(a) = armed.as_mut() {
            if a.point == point {
                a.countdown -= 1;
                if a.countdown == 0 {
                    *armed = None;
                    self.fired.store(true, Ordering::SeqCst);
                    return Err(LsmError::Injected(format!(
                        "crash injected at {}",
                        point.label()
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn blocks(n: usize) -> Vec<Bytes> {
        (0..n)
            .map(|i| Bytes::from(format!("payload-{i}")))
            .collect()
    }

    fn table(storage: &dyn Storage) {
        storage
            .write_table(1, blocks(4), Bytes::from_static(b"meta"))
            .unwrap();
    }

    #[test]
    fn inactive_or_empty_plan_is_transparent() {
        let fs = FaultStorage::new(Arc::new(MemStorage::new()), 7, FaultPlan::none());
        table(&fs);
        for b in 0..4 {
            assert!(fs.read_block(1, b).is_ok());
        }
        let storm = FaultStorage::new(Arc::new(MemStorage::new()), 7, FaultPlan::storm());
        storm.set_active(false);
        table(&storm);
        for _ in 0..100 {
            assert!(storm.read_block(1, 0).is_ok());
        }
        assert_eq!(storm.fault_stats().total(), 0);
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let run = |seed: u64| -> Vec<bool> {
            let fs = FaultStorage::new(
                Arc::new(MemStorage::new()),
                seed,
                FaultPlan {
                    read_transient: 0.5,
                    ..FaultPlan::default()
                },
            );
            table(&fs);
            (0..64).map(|_| fs.read_block(1, 0).is_err()).collect()
        };
        let a = run(42);
        assert_eq!(a, run(42));
        assert_ne!(a, run(43), "different seeds should diverge");
        assert!(a.iter().any(|&e| e) && a.iter().any(|&e| !e));
    }

    #[test]
    fn transient_faults_resolve_on_retry() {
        let fs = FaultStorage::new(
            Arc::new(MemStorage::new()),
            42,
            FaultPlan {
                read_transient: 0.5,
                ..FaultPlan::default()
            },
        );
        table(&fs);
        let mut saw_failure = false;
        for _ in 0..64 {
            let mut attempts = 0;
            loop {
                attempts += 1;
                assert!(attempts < 32, "transient fault never resolved");
                match fs.read_block(1, 0) {
                    Ok(_) => break,
                    Err(LsmError::Injected(_)) => saw_failure = true,
                    Err(e) => panic!("unexpected error {e:?}"),
                }
            }
        }
        assert!(saw_failure);
    }

    #[test]
    fn permanent_faults_are_sticky_per_address() {
        let fs = FaultStorage::new(
            Arc::new(MemStorage::new()),
            9,
            FaultPlan {
                read_permanent: 1.0,
                ..FaultPlan::default()
            },
        );
        table(&fs);
        for _ in 0..4 {
            assert!(matches!(fs.read_block(1, 0), Err(LsmError::Injected(_))));
        }
        assert_eq!(fs.permanent_bad(), vec![(1, 0)]);
        // Pausing injection makes the address readable again — the data was
        // never damaged, only the simulated device path.
        fs.set_active(false);
        assert!(fs.read_block(1, 0).is_ok());
    }

    #[test]
    fn bit_flip_corrupts_copy_not_device() {
        let fs = FaultStorage::new(
            Arc::new(MemStorage::new()),
            5,
            FaultPlan {
                bit_flip: 1.0,
                ..FaultPlan::default()
            },
        );
        table(&fs);
        let corrupted = fs.read_block(1, 0).unwrap();
        fs.set_active(false);
        let clean = fs.read_block(1, 0).unwrap();
        assert_ne!(corrupted, clean);
        assert_eq!(corrupted.len(), clean.len());
        assert_eq!(fs.fault_stats().bit_flip.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn torn_write_persists_strict_prefix() {
        let fs = FaultStorage::new(
            Arc::new(MemStorage::new()),
            11,
            FaultPlan {
                torn_write: 1.0,
                ..FaultPlan::default()
            },
        );
        let err = fs
            .write_table(3, blocks(4), Bytes::from_static(b"meta"))
            .unwrap_err();
        assert!(matches!(err, LsmError::Injected(_)));
        // The partial table exists but has fewer blocks than requested and
        // no metadata.
        assert_eq!(fs.table_count(), 1);
        fs.set_active(false);
        assert!(fs.read_block(3, 3).is_err());
        assert_eq!(fs.read_meta(3).unwrap().len(), 0);
    }

    #[test]
    fn write_fail_persists_nothing() {
        let fs = FaultStorage::new(
            Arc::new(MemStorage::new()),
            13,
            FaultPlan {
                write_fail: 1.0,
                ..FaultPlan::default()
            },
        );
        assert!(fs.write_table(3, blocks(2), Bytes::new()).is_err());
        assert_eq!(fs.table_count(), 0);
    }

    #[test]
    fn latency_spike_charges_simulated_clock() {
        let fs = FaultStorage::new(
            Arc::new(MemStorage::new()),
            3,
            FaultPlan {
                latency_spike: 1.0,
                latency_spike_ns: 1_000_000,
                ..FaultPlan::default()
            },
        );
        table(&fs);
        let before = fs.stats().simulated_ns();
        fs.read_block(1, 0).unwrap();
        assert!(fs.stats().simulated_ns() >= before + 1_000_000);
        assert_eq!(fs.fault_stats().latency_spike.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn delete_fail_leaves_table_behind() {
        let fs = FaultStorage::new(
            Arc::new(MemStorage::new()),
            17,
            FaultPlan {
                delete_fail: 1.0,
                ..FaultPlan::default()
            },
        );
        table(&fs);
        assert!(fs.delete_table(1).is_err());
        assert_eq!(fs.table_count(), 1);
        fs.set_active(false);
        fs.delete_table(1).unwrap();
        assert_eq!(fs.table_count(), 0);
    }

    #[test]
    fn crash_controller_fires_on_nth_hit() {
        let cc = CrashController::new();
        cc.arm(CrashPoint::FlushAfterSst, 2);
        assert!(cc.check(CrashPoint::FlushAfterSst).is_ok());
        assert!(cc.check(CrashPoint::BeforeManifestCommit).is_ok());
        assert!(!cc.fired());
        assert!(matches!(
            cc.check(CrashPoint::FlushAfterSst),
            Err(LsmError::Injected(_))
        ));
        assert!(cc.fired());
        // Disarmed after firing.
        assert!(cc.check(CrashPoint::FlushAfterSst).is_ok());
        assert_eq!(cc.hits(), 4);
    }
}
