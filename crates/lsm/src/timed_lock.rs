//! A timed wrapper around the engine's `RwLock` for contention accounting.
//!
//! The serving benchmarks flatten with rising concurrency, and the working
//! hypothesis blames the single `RwLock<Inner>` in [`crate::db`]. Before
//! paying for lock striping we quantify it: [`TimedRwLock`] counts
//! acquisitions and accumulates wait/hold nanoseconds per *path* —
//! [`LockPath::Read`], [`Write`](LockPath::Write),
//! [`Flush`](LockPath::Flush), [`Compaction`](LockPath::Compaction) —
//! surfaced as `engine.lock.{path}.{acquisitions,wait_ns,hold_ns}`
//! registry counters.
//!
//! Costs: timing is off until [`TimedRwLock::attach_obs`] enables it, and
//! the off path adds exactly one relaxed atomic load per acquisition (no
//! `Instant::now()` calls), keeping the telemetry-disabled server at its
//! old speed. Flush/compaction work that runs *inside* a write guard is
//! attributed to the guard's acquisition path; the `Flush`/`Compaction`
//! rows count explicit `flush()`/`maybe_compact_once()` acquisitions.
//!
//! A thread-local probe ([`reset_lock_probe`]/[`lock_probe`]) accumulates
//! the calling thread's wait and hold nanoseconds, letting the server —
//! which executes each request synchronously on a worker thread — split a
//! request's engine time into lock-wait vs in-lock execution without
//! plumbing timings through every engine return type.

use adcache_obs::{Counter, Obs};
use parking_lot::RwLock;
use std::cell::Cell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
// The vendored parking_lot shim's read()/write() hand back std guards.
use std::sync::OnceLock;
use std::sync::{RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;

/// Which engine path acquired the lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockPath {
    /// Shared acquisitions: gets, scans, stats probes.
    Read = 0,
    /// Exclusive acquisitions by the write path (put/delete/batch).
    Write = 1,
    /// Exclusive acquisitions by explicit flushes.
    Flush = 2,
    /// Exclusive acquisitions by the compaction driver.
    Compaction = 3,
}

/// Number of [`LockPath`] variants.
pub const LOCK_PATHS: usize = 4;

impl LockPath {
    /// All paths, index order.
    pub const ALL: [LockPath; LOCK_PATHS] = [
        LockPath::Read,
        LockPath::Write,
        LockPath::Flush,
        LockPath::Compaction,
    ];

    /// Stable label used in metric names and `LockContention` events.
    pub fn label(self) -> &'static str {
        match self {
            LockPath::Read => "read",
            LockPath::Write => "write",
            LockPath::Flush => "flush",
            LockPath::Compaction => "compaction",
        }
    }
}

#[derive(Default)]
struct PathStats {
    acquisitions: AtomicU64,
    wait_ns: AtomicU64,
    hold_ns: AtomicU64,
    max_wait_ns: AtomicU64,
}

struct PathCounters {
    acquisitions: Counter,
    wait_ns: Counter,
    hold_ns: Counter,
}

thread_local! {
    static PROBE_WAIT_NS: Cell<u64> = const { Cell::new(0) };
    static PROBE_HOLD_NS: Cell<u64> = const { Cell::new(0) };
}

/// Zeroes the calling thread's lock probe. Call before dispatching one
/// request into the engine.
pub fn reset_lock_probe() {
    PROBE_WAIT_NS.with(|c| c.set(0));
    PROBE_HOLD_NS.with(|c| c.set(0));
}

/// `(wait_ns, hold_ns)` accumulated on the calling thread since the last
/// [`reset_lock_probe`]. Both are 0 when timing is disabled.
pub fn lock_probe() -> (u64, u64) {
    (
        PROBE_WAIT_NS.with(|c| c.get()),
        PROBE_HOLD_NS.with(|c| c.get()),
    )
}

/// Point-in-time counters for one acquisition path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockPathSnapshot {
    /// Completed acquisitions.
    pub acquisitions: u64,
    /// Total nanoseconds spent blocked acquiring.
    pub wait_ns: u64,
    /// Total nanoseconds the guard was held.
    pub hold_ns: u64,
    /// Longest single acquisition wait.
    pub max_wait_ns: u64,
}

/// An `RwLock` that accounts wait/hold time per [`LockPath`].
pub struct TimedRwLock<T> {
    lock: RwLock<T>,
    timing: AtomicBool,
    stats: [PathStats; LOCK_PATHS],
    counters: OnceLock<Vec<[PathCounters; LOCK_PATHS]>>,
}

impl<T> TimedRwLock<T> {
    /// Wraps `value`; timing starts disabled.
    pub fn new(value: T) -> Self {
        TimedRwLock {
            lock: RwLock::new(value),
            timing: AtomicBool::new(false),
            stats: Default::default(),
            counters: OnceLock::new(),
        }
    }

    /// Registers `{prefix}.{path}.{acquisitions,wait_ns,hold_ns}` counters
    /// and enables timing when `obs` is live. Safe to call more than once;
    /// the first live registration wins.
    pub fn attach_obs(&self, obs: &Obs, prefix: &str) {
        self.attach_obs_prefixes(obs, &[prefix]);
    }

    /// Like [`attach_obs`](Self::attach_obs) but exports the same per-path
    /// counters under several prefixes at once — e.g. a striped engine
    /// registering both the aggregate `engine.lock` set and its own
    /// `engine.stripe.<i>.lock` set. Registry counters are shared by name,
    /// so the aggregate prefix accumulates across every stripe. One timing
    /// read feeds all sets; the per-acquisition cost stays a handful of
    /// relaxed atomics and is still gated on the cached timing flag.
    pub fn attach_obs_prefixes(&self, obs: &Obs, prefixes: &[&str]) {
        if !obs.is_enabled() {
            return;
        }
        let mk = |prefix: &str, path: &str| PathCounters {
            acquisitions: obs.counter(&format!("{prefix}.{path}.acquisitions")),
            wait_ns: obs.counter(&format!("{prefix}.{path}.wait_ns")),
            hold_ns: obs.counter(&format!("{prefix}.{path}.hold_ns")),
        };
        let sets = prefixes
            .iter()
            .map(|prefix| LockPath::ALL.map(|p| mk(prefix, p.label())))
            .collect();
        let _ = self.counters.set(sets);
        self.timing.store(true, Ordering::Release);
    }

    /// Whether acquisitions are being timed.
    pub fn timing_enabled(&self) -> bool {
        self.timing.load(Ordering::Relaxed)
    }

    /// Force timing on/off (tests; normally [`attach_obs`](Self::attach_obs)
    /// enables it).
    pub fn set_timing(&self, on: bool) {
        self.timing.store(on, Ordering::Release);
    }

    /// Acquires shared, attributing wait/hold to `path`.
    pub fn read(&self, path: LockPath) -> TimedReadGuard<'_, T> {
        if !self.timing.load(Ordering::Relaxed) {
            return TimedReadGuard {
                guard: self.lock.read(),
                timing: None,
            };
        }
        let t0 = Instant::now();
        let guard = self.lock.read();
        let wait_ns = t0.elapsed().as_nanos() as u64;
        self.note_acquire(path, wait_ns);
        TimedReadGuard {
            guard,
            timing: Some(GuardTiming {
                owner: self,
                path,
                acquired: Instant::now(),
                wait_ns,
            }),
        }
    }

    /// Acquires exclusive, attributing wait/hold to `path`.
    pub fn write(&self, path: LockPath) -> TimedWriteGuard<'_, T> {
        if !self.timing.load(Ordering::Relaxed) {
            return TimedWriteGuard {
                guard: self.lock.write(),
                timing: None,
            };
        }
        let t0 = Instant::now();
        let guard = self.lock.write();
        let wait_ns = t0.elapsed().as_nanos() as u64;
        self.note_acquire(path, wait_ns);
        TimedWriteGuard {
            guard,
            timing: Some(GuardTiming {
                owner: self,
                path,
                acquired: Instant::now(),
                wait_ns,
            }),
        }
    }

    /// Per-path counter snapshot, [`LockPath::ALL`] order.
    pub fn stats(&self) -> [LockPathSnapshot; LOCK_PATHS] {
        LockPath::ALL.map(|p| {
            let s = &self.stats[p as usize];
            LockPathSnapshot {
                acquisitions: s.acquisitions.load(Ordering::Relaxed),
                wait_ns: s.wait_ns.load(Ordering::Relaxed),
                hold_ns: s.hold_ns.load(Ordering::Relaxed),
                max_wait_ns: s.max_wait_ns.load(Ordering::Relaxed),
            }
        })
    }

    fn note_acquire(&self, path: LockPath, wait_ns: u64) {
        let s = &self.stats[path as usize];
        s.acquisitions.fetch_add(1, Ordering::Relaxed);
        s.wait_ns.fetch_add(wait_ns, Ordering::Relaxed);
        s.max_wait_ns.fetch_max(wait_ns, Ordering::Relaxed);
        if let Some(sets) = self.counters.get() {
            for counters in sets {
                let c = &counters[path as usize];
                c.acquisitions.inc();
                c.wait_ns.add(wait_ns);
            }
        }
        PROBE_WAIT_NS.with(|c| c.set(c.get().saturating_add(wait_ns)));
    }

    fn note_release(&self, path: LockPath, hold_ns: u64) {
        self.stats[path as usize]
            .hold_ns
            .fetch_add(hold_ns, Ordering::Relaxed);
        if let Some(sets) = self.counters.get() {
            for counters in sets {
                counters[path as usize].hold_ns.add(hold_ns);
            }
        }
        PROBE_HOLD_NS.with(|c| c.set(c.get().saturating_add(hold_ns)));
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for TimedRwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimedRwLock")
            .field("timing", &self.timing_enabled())
            .finish_non_exhaustive()
    }
}

struct GuardTiming<'a, T> {
    owner: &'a TimedRwLock<T>,
    path: LockPath,
    acquired: Instant,
    wait_ns: u64,
}

/// Shared guard; accumulates hold time on drop.
pub struct TimedReadGuard<'a, T> {
    guard: RwLockReadGuard<'a, T>,
    timing: Option<GuardTiming<'a, T>>,
}

/// Exclusive guard; accumulates hold time on drop.
pub struct TimedWriteGuard<'a, T> {
    guard: RwLockWriteGuard<'a, T>,
    timing: Option<GuardTiming<'a, T>>,
}

impl<T> TimedReadGuard<'_, T> {
    /// Nanoseconds this acquisition waited (0 when timing is off).
    pub fn wait_ns(&self) -> u64 {
        self.timing.as_ref().map_or(0, |t| t.wait_ns)
    }
}

impl<T> TimedWriteGuard<'_, T> {
    /// Nanoseconds this acquisition waited (0 when timing is off).
    pub fn wait_ns(&self) -> u64 {
        self.timing.as_ref().map_or(0, |t| t.wait_ns)
    }
}

impl<T> Deref for TimedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> Deref for TimedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for TimedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

// Drop runs before the inner guard field drops, so hold time is measured
// while the lock is still held (excludes the release itself — fine).
impl<T> Drop for TimedReadGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(t) = &self.timing {
            t.owner
                .note_release(t.path, t.acquired.elapsed().as_nanos() as u64);
        }
    }
}

impl<T> Drop for TimedWriteGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(t) = &self.timing {
            t.owner
                .note_release(t.path, t.acquired.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn untimed_lock_records_nothing() {
        let l = TimedRwLock::new(1u32);
        reset_lock_probe();
        {
            let g = l.read(LockPath::Read);
            assert_eq!(*g, 1);
            assert_eq!(g.wait_ns(), 0);
        }
        *l.write(LockPath::Write) = 2;
        assert_eq!(*l.read(LockPath::Read), 2);
        assert_eq!(lock_probe(), (0, 0));
        for s in l.stats() {
            assert_eq!(s, LockPathSnapshot::default());
        }
    }

    #[test]
    fn timed_lock_accumulates_per_path() {
        let l = TimedRwLock::new(0u32);
        l.set_timing(true);
        reset_lock_probe();
        {
            let mut g = l.write(LockPath::Write);
            *g += 1;
            std::thread::sleep(Duration::from_millis(2));
        }
        let _ = *l.read(LockPath::Read);
        let _ = *l.read(LockPath::Read);
        let stats = l.stats();
        assert_eq!(stats[LockPath::Write as usize].acquisitions, 1);
        assert!(stats[LockPath::Write as usize].hold_ns >= 2_000_000);
        assert_eq!(stats[LockPath::Read as usize].acquisitions, 2);
        assert_eq!(stats[LockPath::Flush as usize].acquisitions, 0);
        let (_wait, hold) = lock_probe();
        assert!(hold >= 2_000_000, "probe hold {hold}");
    }

    #[test]
    fn contended_write_measures_wait() {
        let l = Arc::new(TimedRwLock::new(0u32));
        l.set_timing(true);
        let holder = {
            let l = l.clone();
            std::thread::spawn(move || {
                let _g = l.write(LockPath::Flush);
                std::thread::sleep(Duration::from_millis(10));
            })
        };
        std::thread::sleep(Duration::from_millis(2)); // let holder acquire
        let g = l.write(LockPath::Write);
        assert!(
            g.wait_ns() >= 1_000_000,
            "expected measurable wait, got {}ns",
            g.wait_ns()
        );
        drop(g);
        holder.join().unwrap();
        let stats = l.stats();
        assert!(stats[LockPath::Write as usize].max_wait_ns >= 1_000_000);
    }

    #[test]
    fn attach_obs_exports_counters() {
        let obs = Obs::enabled();
        let l = TimedRwLock::new(());
        l.attach_obs(&obs, "engine.lock");
        assert!(l.timing_enabled());
        drop(l.read(LockPath::Read));
        drop(l.write(LockPath::Compaction));
        assert_eq!(obs.counter("engine.lock.read.acquisitions").get(), 1);
        assert_eq!(obs.counter("engine.lock.compaction.acquisitions").get(), 1);
        // Disabled obs leaves timing off.
        let l2 = TimedRwLock::new(());
        l2.attach_obs(&Obs::disabled(), "engine.lock");
        assert!(!l2.timing_enabled());
    }
}
