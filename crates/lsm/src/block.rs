//! Data-block encoding with prefix compression and restart points.
//!
//! Blocks follow the classic LevelDB/RocksDB layout: entries are stored in
//! key order, each key sharing a prefix with its predecessor; every
//! `restart_interval` entries the prefix resets, and the offsets of these
//! restart points are appended as a trailer so lookups can binary-search the
//! restart array and then scan at most one interval.
//!
//! Entry wire format:
//! ```text
//! shared:u16 | unshared:u16 | vlen:u32 | kind:u8 | key[unshared] | value[vlen]
//! ```
//! Trailer: `restart_offset:u32 × n | n:u32 | crc32:u32` — the checksum
//! covers everything before it, so storage bit-rot is detected at decode
//! time rather than surfacing as silently wrong query results.

use crate::error::{LsmError, Result};
use crate::types::{Entry, KeyEntry};
use crate::wal::crc32;
use bytes::Bytes;

const KIND_PUT: u8 = 0;
const KIND_TOMBSTONE: u8 = 1;
const HEADER: usize = 2 + 2 + 4 + 1;

/// Builds one encoded data block from entries added in ascending key order.
pub struct BlockBuilder {
    buf: Vec<u8>,
    restarts: Vec<u32>,
    restart_interval: usize,
    count_since_restart: usize,
    last_key: Vec<u8>,
    num_entries: u32,
}

impl BlockBuilder {
    /// Creates a builder; `restart_interval` keys share each prefix run.
    pub fn new(restart_interval: usize) -> Self {
        BlockBuilder {
            buf: Vec::new(),
            restarts: vec![0],
            restart_interval: restart_interval.max(1),
            count_since_restart: 0,
            last_key: Vec::new(),
            num_entries: 0,
        }
    }

    /// Appends an entry. Keys must arrive in strictly ascending order.
    pub fn add(&mut self, key: &[u8], entry: &Entry) -> Result<()> {
        if self.num_entries > 0 && key <= self.last_key.as_slice() {
            return Err(LsmError::InvalidArgument(format!(
                "keys must be strictly ascending; got {:?} after {:?}",
                String::from_utf8_lossy(key),
                String::from_utf8_lossy(&self.last_key)
            )));
        }
        let shared = if self.count_since_restart == self.restart_interval {
            self.restarts.push(self.buf.len() as u32);
            self.count_since_restart = 0;
            0
        } else {
            common_prefix(&self.last_key, key).min(u16::MAX as usize)
        };
        let unshared = key.len() - shared;
        let (kind, value): (u8, &[u8]) = match entry {
            Entry::Put(v) => (KIND_PUT, v.as_ref()),
            Entry::Tombstone => (KIND_TOMBSTONE, &[]),
        };
        self.buf.extend_from_slice(&(shared as u16).to_le_bytes());
        self.buf.extend_from_slice(&(unshared as u16).to_le_bytes());
        self.buf
            .extend_from_slice(&(value.len() as u32).to_le_bytes());
        self.buf.push(kind);
        self.buf.extend_from_slice(&key[shared..]);
        self.buf.extend_from_slice(value);
        self.last_key.clear();
        self.last_key.extend_from_slice(key);
        self.count_since_restart += 1;
        self.num_entries += 1;
        Ok(())
    }

    /// Encoded size so far, including the trailer that `finish` will append.
    pub fn size_estimate(&self) -> usize {
        self.buf.len() + self.restarts.len() * 4 + 4 + 4
    }

    /// Number of entries added so far.
    pub fn num_entries(&self) -> u32 {
        self.num_entries
    }

    /// Whether nothing has been added yet.
    pub fn is_empty(&self) -> bool {
        self.num_entries == 0
    }

    /// Seals the block and returns its encoded bytes (checksummed).
    pub fn finish(mut self) -> Bytes {
        for r in &self.restarts {
            self.buf.extend_from_slice(&r.to_le_bytes());
        }
        self.buf
            .extend_from_slice(&(self.restarts.len() as u32).to_le_bytes());
        let crc = crc32(&self.buf);
        self.buf.extend_from_slice(&crc.to_le_bytes());
        Bytes::from(self.buf)
    }
}

fn common_prefix(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

/// A decoded, immutable data block.
///
/// The block keeps the raw encoded bytes (shared with the storage layer via
/// [`Bytes`]) plus the parsed restart array; individual entries are
/// materialized lazily during iteration or lookup.
#[derive(Debug, Clone)]
pub struct Block {
    data: Bytes,
    restarts: Vec<u32>,
    entries_end: usize,
}

impl Block {
    /// Parses an encoded block, validating the checksum and trailer.
    pub fn decode(data: Bytes) -> Result<Self> {
        if data.len() < 8 {
            return Err(LsmError::Corruption("block shorter than trailer".into()));
        }
        // Verify and strip the checksum.
        let body_len = data.len() - 4;
        let want = u32::from_le_bytes(data[body_len..].try_into().unwrap());
        if crc32(&data[..body_len]) != want {
            return Err(LsmError::Corruption("block checksum mismatch".into()));
        }
        let data = data.slice(..body_len);
        let n = u32::from_le_bytes(data[data.len() - 4..].try_into().unwrap()) as usize;
        let trailer = n * 4 + 4;
        if n == 0 || data.len() < trailer {
            return Err(LsmError::Corruption("bad restart count".into()));
        }
        let entries_end = data.len() - trailer;
        let mut restarts = Vec::with_capacity(n);
        for i in 0..n {
            let off = entries_end + i * 4;
            let r = u32::from_le_bytes(data[off..off + 4].try_into().unwrap());
            if r as usize > entries_end {
                return Err(LsmError::Corruption("restart offset out of range".into()));
            }
            restarts.push(r);
        }
        Ok(Block {
            data,
            restarts,
            entries_end,
        })
    }

    /// Size of the encoded block; used as the cache charge.
    pub fn encoded_len(&self) -> usize {
        self.data.len()
    }

    /// Decodes the full key stored at a restart point.
    fn restart_key(&self, restart_idx: usize) -> Result<&[u8]> {
        let off = self.restarts[restart_idx] as usize;
        let (shared, unshared, _vlen, _kind, key_off) = self.entry_header(off)?;
        if shared != 0 {
            return Err(LsmError::Corruption(
                "restart entry has shared prefix".into(),
            ));
        }
        Ok(&self.data[key_off..key_off + unshared])
    }

    #[allow(clippy::type_complexity)]
    fn entry_header(&self, off: usize) -> Result<(usize, usize, usize, u8, usize)> {
        if off + HEADER > self.entries_end {
            return Err(LsmError::Corruption("entry header out of range".into()));
        }
        let shared = u16::from_le_bytes(self.data[off..off + 2].try_into().unwrap()) as usize;
        let unshared = u16::from_le_bytes(self.data[off + 2..off + 4].try_into().unwrap()) as usize;
        let vlen = u32::from_le_bytes(self.data[off + 4..off + 8].try_into().unwrap()) as usize;
        let kind = self.data[off + 8];
        let key_off = off + HEADER;
        if key_off + unshared + vlen > self.entries_end {
            return Err(LsmError::Corruption("entry payload out of range".into()));
        }
        Ok((shared, unshared, vlen, kind, key_off))
    }

    /// Looks up `key`, returning its entry if present in this block.
    pub fn get(&self, key: &[u8]) -> Result<Option<Entry>> {
        let mut iter = self.iter_from(key)?;
        match iter.next() {
            Some(Ok(ke)) if ke.key.as_ref() == key => Ok(Some(ke.entry)),
            Some(Err(e)) => Err(e),
            _ => Ok(None),
        }
    }

    /// Iterates all entries in order.
    pub fn iter(&self) -> BlockIter<'_> {
        BlockIter {
            block: self,
            off: self.restarts[0] as usize,
            key: Vec::new(),
            done: false,
        }
    }

    /// Iterates entries with keys `>= from`.
    ///
    /// Binary-searches the restart array for the last restart whose key is
    /// `<= from`, then scans forward within that interval.
    pub fn iter_from(&self, from: &[u8]) -> Result<BlockIter<'_>> {
        // Find rightmost restart with key <= from.
        let (mut lo, mut hi) = (0usize, self.restarts.len());
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.restart_key(mid)? <= from {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let start = lo.saturating_sub(1);
        let mut iter = BlockIter {
            block: self,
            off: self.restarts[start] as usize,
            key: Vec::new(),
            done: false,
        };
        iter.skip_until(from)?;
        Ok(iter)
    }

    /// First key in the block.
    pub fn first_key(&self) -> Result<Bytes> {
        Ok(Bytes::copy_from_slice(self.restart_key(0)?))
    }

    /// Number of entries (by full scan; used in tests and stats).
    pub fn count_entries(&self) -> usize {
        self.iter().count()
    }
}

/// Sequential decoder over a [`Block`].
pub struct BlockIter<'a> {
    block: &'a Block,
    off: usize,
    key: Vec<u8>,
    done: bool,
}

impl<'a> BlockIter<'a> {
    fn decode_next(&mut self) -> Result<Option<KeyEntry>> {
        if self.done || self.off >= self.block.entries_end {
            self.done = true;
            return Ok(None);
        }
        let (shared, unshared, vlen, kind, key_off) = self.block.entry_header(self.off)?;
        if shared > self.key.len() {
            return Err(LsmError::Corruption(
                "shared prefix exceeds previous key".into(),
            ));
        }
        self.key.truncate(shared);
        self.key
            .extend_from_slice(&self.block.data[key_off..key_off + unshared]);
        let vstart = key_off + unshared;
        let entry = match kind {
            KIND_PUT => Entry::Put(self.block.data.slice(vstart..vstart + vlen)),
            KIND_TOMBSTONE => Entry::Tombstone,
            other => return Err(LsmError::Corruption(format!("unknown entry kind {other}"))),
        };
        self.off = vstart + vlen;
        Ok(Some(KeyEntry {
            key: Bytes::copy_from_slice(&self.key),
            entry,
        }))
    }

    /// Advances the iterator until the current position's key is `>= from`.
    fn skip_until(&mut self, from: &[u8]) -> Result<()> {
        loop {
            let checkpoint = (self.off, self.key.clone(), self.done);
            match self.decode_next()? {
                None => return Ok(()),
                Some(ke) if ke.key.as_ref() >= from => {
                    // Rewind one entry so `next` yields it.
                    self.off = checkpoint.0;
                    self.key = checkpoint.1;
                    self.done = checkpoint.2;
                    return Ok(());
                }
                Some(_) => {}
            }
        }
    }
}

impl<'a> Iterator for BlockIter<'a> {
    type Item = Result<KeyEntry>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.decode_next() {
            Ok(Some(ke)) => Some(Ok(ke)),
            Ok(None) => None,
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(entries: &[(&str, Option<&str>)], interval: usize) -> Block {
        let mut b = BlockBuilder::new(interval);
        for (k, v) in entries {
            let e = match v {
                Some(v) => Entry::Put(Bytes::copy_from_slice(v.as_bytes())),
                None => Entry::Tombstone,
            };
            b.add(k.as_bytes(), &e).unwrap();
        }
        Block::decode(b.finish()).unwrap()
    }

    #[test]
    fn roundtrip_with_prefix_compression() {
        let entries: Vec<(String, String)> = (0..100)
            .map(|i| (format!("user{i:06}"), format!("value-{i}")))
            .collect();
        let mut b = BlockBuilder::new(16);
        for (k, v) in &entries {
            b.add(
                k.as_bytes(),
                &Entry::Put(Bytes::copy_from_slice(v.as_bytes())),
            )
            .unwrap();
        }
        assert_eq!(b.num_entries(), 100);
        let block = Block::decode(b.finish()).unwrap();
        let decoded: Vec<_> = block.iter().map(|r| r.unwrap()).collect();
        assert_eq!(decoded.len(), 100);
        for (i, ke) in decoded.iter().enumerate() {
            assert_eq!(ke.key.as_ref(), entries[i].0.as_bytes());
            assert_eq!(ke.entry.value().unwrap().as_ref(), entries[i].1.as_bytes());
        }
        // Prefix compression must actually shrink the encoding.
        let raw: usize = entries
            .iter()
            .map(|(k, v)| k.len() + v.len() + HEADER)
            .sum();
        assert!(block.encoded_len() < raw + 100);
    }

    #[test]
    fn get_finds_present_and_absent() {
        let block = build(&[("a", Some("1")), ("c", Some("3")), ("e", None)], 2);
        assert_eq!(
            block.get(b"a").unwrap(),
            Some(Entry::Put(Bytes::from_static(b"1")))
        );
        assert_eq!(
            block.get(b"c").unwrap(),
            Some(Entry::Put(Bytes::from_static(b"3")))
        );
        assert_eq!(block.get(b"e").unwrap(), Some(Entry::Tombstone));
        assert_eq!(block.get(b"b").unwrap(), None);
        assert_eq!(block.get(b"z").unwrap(), None);
        assert_eq!(block.get(b"").unwrap(), None);
    }

    #[test]
    fn iter_from_seeks_across_restarts() {
        let entries: Vec<(String, String)> = (0..50)
            .map(|i| (format!("k{i:04}"), format!("v{i}")))
            .collect();
        let refs: Vec<(&str, Option<&str>)> = entries
            .iter()
            .map(|(k, v)| (k.as_str(), Some(v.as_str())))
            .collect();
        let block = build(&refs, 4);
        for probe in [0usize, 1, 3, 4, 17, 48, 49] {
            let from = format!("k{probe:04}");
            let got: Vec<_> = block
                .iter_from(from.as_bytes())
                .unwrap()
                .map(|r| r.unwrap())
                .collect();
            assert_eq!(got.len(), 50 - probe, "seek {from}");
            assert_eq!(got[0].key.as_ref(), from.as_bytes());
        }
        // Seek between keys and past the end.
        let got: Vec<_> = block
            .iter_from(b"k0003x")
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(got[0].key.as_ref(), b"k0004");
        assert!(block.iter_from(b"zzz").unwrap().next().is_none());
        // Seek before the first key.
        let got: Vec<_> = block.iter_from(b"a").unwrap().map(|r| r.unwrap()).collect();
        assert_eq!(got.len(), 50);
    }

    #[test]
    fn rejects_out_of_order_keys() {
        let mut b = BlockBuilder::new(16);
        b.add(b"b", &Entry::Put(Bytes::from_static(b"1"))).unwrap();
        assert!(b.add(b"a", &Entry::Put(Bytes::from_static(b"2"))).is_err());
        assert!(b.add(b"b", &Entry::Put(Bytes::from_static(b"2"))).is_err());
    }

    #[test]
    fn decode_rejects_corruption() {
        assert!(Block::decode(Bytes::from_static(b"")).is_err());
        assert!(Block::decode(Bytes::from_static(&[0, 0, 0, 0])).is_err());
        let block = build(&[("a", Some("1"))], 16);
        let mut data = block.data.to_vec();
        // Truncate mid-entry but keep a plausible trailer.
        data[0] = 200; // shared length nonsense
        let tampered = Block::decode(Bytes::from(data));
        // Either decode fails or iteration errors; both are acceptable.
        if let Ok(b) = tampered {
            assert!(b.iter().any(|r| r.is_err()));
        }
    }

    #[test]
    fn bit_rot_is_detected_by_checksum() {
        let block = build(&[("a", Some("1")), ("b", Some("2"))], 16);
        let good = {
            let mut b = BlockBuilder::new(16);
            b.add(b"a", &Entry::Put(Bytes::from_static(b"1"))).unwrap();
            b.add(b"b", &Entry::Put(Bytes::from_static(b"2"))).unwrap();
            b.finish()
        };
        // Flip each byte in turn: every corruption must be caught at decode.
        for i in 0..good.len() {
            let mut bad = good.to_vec();
            bad[i] ^= 0x01;
            assert!(
                Block::decode(Bytes::from(bad)).is_err(),
                "flipped byte {i} went undetected"
            );
        }
        let _ = block;
    }

    #[test]
    fn size_estimate_tracks_finish() {
        let mut b = BlockBuilder::new(8);
        for i in 0..20 {
            let k = format!("key{i:03}");
            b.add(k.as_bytes(), &Entry::Put(Bytes::from_static(b"v")))
                .unwrap();
        }
        let est = b.size_estimate();
        let data = b.finish();
        assert_eq!(est, data.len());
    }

    #[test]
    fn first_key_and_count() {
        let block = build(&[("aa", Some("1")), ("ab", Some("2")), ("b", Some("3"))], 2);
        assert_eq!(block.first_key().unwrap().as_ref(), b"aa");
        assert_eq!(block.count_entries(), 3);
    }

    #[test]
    fn single_entry_block() {
        let block = build(&[("only", Some("x"))], 16);
        assert_eq!(block.count_entries(), 1);
        assert_eq!(
            block
                .get(b"only")
                .unwrap()
                .unwrap()
                .value()
                .unwrap()
                .as_ref(),
            b"x"
        );
    }
}
