//! Dependency-free LZSS block compression.
//!
//! RocksDB compresses data blocks before they reach the device; this module
//! provides the same option with a self-contained LZSS variant (hash-chain
//! match finding, 64 KiB window, lengths 4–264). The format is byte-
//! oriented and decompression-safe against corrupt input (every read is
//! bounds-checked; malformed streams return errors, never panic).
//!
//! Wire format: groups of 8 tokens preceded by a control byte (bit i set =
//! token i is a match). A literal token is one raw byte. A match token is
//! `offset:u16 (LE, 1-based back-distance) | len:u8 (len-4)`.
//!
//! Stored blocks carry a 5-byte header added by the SSTable layer:
//! `flag:u8 (0 raw, 1 lzss) | raw_len:u32`. Incompressible blocks are
//! stored raw, so compression never inflates by more than the header.

use crate::error::{LsmError, Result};

const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = MIN_MATCH + 255;
const WINDOW: usize = 64 * 1024;
const HASH_BITS: u32 = 15;

fn hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// Compresses `input` with LZSS. The output has no framing; callers must
/// remember the raw length for decompression.
pub fn lzss_compress(input: &[u8]) -> Vec<u8> {
    let n = input.len();
    let mut out = Vec::with_capacity(n / 2 + 16);
    if n == 0 {
        return out;
    }
    // Most recent position for each hash bucket.
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut i = 0usize;

    let mut control_pos = out.len();
    out.push(0);
    let mut control_bit = 0u8;
    let flush_bit =
        |out: &mut Vec<u8>, control_pos: &mut usize, control_bit: &mut u8, is_match: bool| {
            if *control_bit == 8 {
                *control_pos = out.len();
                out.push(0);
                *control_bit = 0;
            }
            if is_match {
                out[*control_pos] |= 1 << *control_bit;
            }
            *control_bit += 1;
        };

    while i < n {
        let mut best_len = 0usize;
        let mut best_off = 0usize;
        if i + MIN_MATCH <= n {
            let h = hash4(input, i);
            let candidate = head[h];
            head[h] = i;
            if candidate != usize::MAX && candidate < i && i - candidate <= WINDOW {
                let max_len = (n - i).min(MAX_MATCH);
                let mut l = 0usize;
                while l < max_len && input[candidate + l] == input[i + l] {
                    l += 1;
                }
                if l >= MIN_MATCH {
                    best_len = l;
                    best_off = i - candidate;
                }
            }
        }
        if best_len >= MIN_MATCH {
            flush_bit(&mut out, &mut control_pos, &mut control_bit, true);
            out.extend_from_slice(&(best_off as u16).to_le_bytes());
            out.push((best_len - MIN_MATCH) as u8);
            // Index a few positions inside the match to keep finding chains.
            let end = (i + best_len).min(n.saturating_sub(MIN_MATCH));
            let mut j = i + 1;
            while j < end && j < i + 8 {
                head[hash4(input, j)] = j;
                j += 1;
            }
            i += best_len;
        } else {
            flush_bit(&mut out, &mut control_pos, &mut control_bit, false);
            out.push(input[i]);
            i += 1;
        }
    }
    out
}

/// Decompresses an LZSS stream produced by [`lzss_compress`] into exactly
/// `raw_len` bytes. Malformed input yields a corruption error.
pub fn lzss_decompress(input: &[u8], raw_len: usize) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(raw_len);
    let mut i = 0usize;
    let corrupt = || LsmError::Corruption("lzss stream truncated or malformed".into());
    while out.len() < raw_len {
        if i >= input.len() {
            return Err(corrupt());
        }
        let control = input[i];
        i += 1;
        for bit in 0..8 {
            if out.len() >= raw_len {
                break;
            }
            if control & (1 << bit) != 0 {
                if i + 3 > input.len() {
                    return Err(corrupt());
                }
                let off = u16::from_le_bytes([input[i], input[i + 1]]) as usize;
                let len = input[i + 2] as usize + MIN_MATCH;
                i += 3;
                if off == 0 || off > out.len() || out.len() + len > raw_len {
                    return Err(corrupt());
                }
                let start = out.len() - off;
                // Overlapping copies are the point of LZ; copy byte-wise.
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            } else {
                if i >= input.len() {
                    return Err(corrupt());
                }
                out.push(input[i]);
                i += 1;
            }
        }
    }
    if out.len() != raw_len {
        return Err(corrupt());
    }
    Ok(out)
}

/// Storage framing flag: raw block.
pub const FLAG_RAW: u8 = 0;
/// Storage framing flag: LZSS-compressed block.
pub const FLAG_LZSS: u8 = 1;

/// Wraps an encoded block for storage, compressing when it pays.
pub fn wrap_block(encoded: &[u8], compression: bool) -> Vec<u8> {
    if compression {
        let packed = lzss_compress(encoded);
        if packed.len() + 5 < encoded.len() {
            let mut out = Vec::with_capacity(packed.len() + 5);
            out.push(FLAG_LZSS);
            out.extend_from_slice(&(encoded.len() as u32).to_le_bytes());
            out.extend_from_slice(&packed);
            return out;
        }
    }
    let mut out = Vec::with_capacity(encoded.len() + 5);
    out.push(FLAG_RAW);
    out.extend_from_slice(&(encoded.len() as u32).to_le_bytes());
    out.extend_from_slice(encoded);
    out
}

/// Unwraps a stored block into its raw encoding.
pub fn unwrap_block(stored: &[u8]) -> Result<Vec<u8>> {
    if stored.len() < 5 {
        return Err(LsmError::Corruption(
            "stored block shorter than header".into(),
        ));
    }
    let raw_len = u32::from_le_bytes(stored[1..5].try_into().unwrap()) as usize;
    let body = &stored[5..];
    match stored[0] {
        FLAG_RAW => {
            if body.len() != raw_len {
                return Err(LsmError::Corruption("raw block length mismatch".into()));
            }
            Ok(body.to_vec())
        }
        FLAG_LZSS => lzss_decompress(body, raw_len),
        other => Err(LsmError::Corruption(format!(
            "unknown compression flag {other}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let packed = lzss_compress(data);
        let back = lzss_decompress(&packed, data.len()).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn roundtrips() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abcabcabcabcabcabcabc");
        roundtrip(&vec![0u8; 10_000]);
        roundtrip(
            "the quick brown fox jumps over the lazy dog. "
                .repeat(100)
                .as_bytes(),
        );
        // Pseudo-random (incompressible) data.
        let mut x = 1u64;
        let noise: Vec<u8> = (0..5000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        roundtrip(&noise);
    }

    #[test]
    fn repetitive_data_compresses_well() {
        let data = "user00000000000000000042value-42".repeat(200);
        let packed = lzss_compress(data.as_bytes());
        assert!(
            packed.len() < data.len() / 3,
            "{} -> {} should compress >3x",
            data.len(),
            packed.len()
        );
    }

    #[test]
    fn wrap_raw_when_incompressible() {
        let mut x = 7u64;
        let noise: Vec<u8> = (0..2000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 33) as u8
            })
            .collect();
        let stored = wrap_block(&noise, true);
        assert_eq!(stored[0], FLAG_RAW, "noise must be stored raw");
        assert_eq!(stored.len(), noise.len() + 5);
        assert_eq!(unwrap_block(&stored).unwrap(), noise);
    }

    #[test]
    fn wrap_compressed_when_it_pays() {
        let data = b"abcdefgh".repeat(500);
        let stored = wrap_block(&data, true);
        assert_eq!(stored[0], FLAG_LZSS);
        assert!(stored.len() < data.len() / 2);
        assert_eq!(unwrap_block(&stored).unwrap(), data);
        // Compression disabled -> always raw.
        let stored = wrap_block(&data, false);
        assert_eq!(stored[0], FLAG_RAW);
    }

    #[test]
    fn malformed_streams_error_not_panic() {
        let data = b"hello world hello world hello world".repeat(20);
        let stored = wrap_block(&data, true);
        assert_eq!(stored[0], FLAG_LZSS);
        // Truncations at every length.
        for cut in 0..stored.len() {
            let _ = unwrap_block(&stored[..cut]); // must not panic
        }
        // Bit flips in the body.
        for i in 5..stored.len().min(60) {
            let mut bad = stored.clone();
            bad[i] ^= 0xFF;
            let _ = unwrap_block(&bad); // must not panic (may error or give wrong bytes; CRC above catches those)
        }
        // Bad flag.
        let mut bad = stored.clone();
        bad[0] = 9;
        assert!(unwrap_block(&bad).is_err());
        // Raw length mismatch.
        let mut bad = wrap_block(&data, false);
        bad.pop();
        assert!(unwrap_block(&bad).is_err());
    }

    proptest::proptest! {
        #[test]
        fn proptest_roundtrip(data in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..4096)) {
            let packed = lzss_compress(&data);
            let back = lzss_decompress(&packed, data.len()).unwrap();
            proptest::prop_assert_eq!(back, data.clone());
            let stored = wrap_block(&data, true);
            proptest::prop_assert_eq!(unwrap_block(&stored).unwrap(), data);
        }
    }
}
