//! Merging iterators across runs.
//!
//! A scan merges the memtable with every overlapping sorted run. Sources are
//! ranked by recency: memtable > Level-0 runs (newest flush first) > deeper
//! levels (shallower first). For a duplicated key the highest-ranked entry
//! wins and the rest are discarded; tombstones flow through so that callers
//! (query path vs. compaction) decide their fate.

use crate::error::Result;
use crate::sstable::{BlockProvider, TableIter, TableMeta};
use crate::storage::Storage;
use crate::types::KeyEntry;
use std::collections::VecDeque;
use std::sync::Arc;

/// One input stream of key-ordered entries.
pub enum Source<'a> {
    /// Buffered entries (a test vector or a pre-collected snapshot).
    Buffered(VecDeque<KeyEntry>),
    /// A lazy in-memory iterator (e.g. a memtable cursor borrowing the
    /// engine's read guard); entries must arrive key-sorted.
    Iter {
        /// The underlying iterator.
        inner: Box<dyn Iterator<Item = KeyEntry> + 'a>,
        /// One-entry lookahead.
        peeked: Option<KeyEntry>,
    },
    /// A live SSTable cursor.
    Table(TableIter),
    /// A chain of non-overlapping tables from one deeper level, opened
    /// lazily so unvisited tables cost no I/O.
    LevelChain {
        /// Remaining tables in key order; front is the open one.
        tables: VecDeque<Arc<TableMeta>>,
        /// Cursor into the front table, if opened.
        open: Option<TableIter>,
        /// Seek key for the first table only.
        seek: Vec<u8>,
    },
}

impl<'a> Source<'a> {
    /// A buffered source from any in-memory entries (must be key-sorted).
    pub fn from_entries(entries: Vec<KeyEntry>) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[0].key < w[1].key));
        Source::Buffered(entries.into())
    }

    /// A lazy source over a key-sorted iterator.
    pub fn from_sorted(inner: impl Iterator<Item = KeyEntry> + 'a) -> Self {
        Source::Iter {
            inner: Box::new(inner),
            peeked: None,
        }
    }

    /// A lazily-opened chain over one deeper level.
    pub fn level_chain(tables: Vec<Arc<TableMeta>>, seek: &[u8]) -> Self {
        Source::LevelChain {
            tables: tables.into(),
            open: None,
            seek: seek.to_vec(),
        }
    }

    fn ensure_open(&mut self, provider: &dyn BlockProvider, storage: &dyn Storage) -> Result<()> {
        if let Source::LevelChain { tables, open, seek } = self {
            while open.is_none() {
                let Some(meta) = tables.front().cloned() else {
                    return Ok(());
                };
                let it = TableIter::seek(meta, provider, storage, seek)?;
                if it.peek().is_some() {
                    *open = Some(it);
                } else {
                    tables.pop_front();
                }
            }
        }
        Ok(())
    }

    /// Current head entry, opening lazy chains as needed.
    pub fn peek(
        &mut self,
        provider: &dyn BlockProvider,
        storage: &dyn Storage,
    ) -> Result<Option<&KeyEntry>> {
        self.ensure_open(provider, storage)?;
        Ok(match self {
            Source::Buffered(q) => q.front(),
            Source::Iter { inner, peeked } => {
                if peeked.is_none() {
                    *peeked = inner.next();
                }
                peeked.as_ref()
            }
            Source::Table(it) => it.peek(),
            Source::LevelChain { open, .. } => open.as_ref().and_then(|it| it.peek()),
        })
    }

    /// Consumes the head entry.
    pub fn advance(
        &mut self,
        provider: &dyn BlockProvider,
        storage: &dyn Storage,
    ) -> Result<Option<KeyEntry>> {
        self.ensure_open(provider, storage)?;
        match self {
            Source::Buffered(q) => Ok(q.pop_front()),
            Source::Iter { inner, peeked } => Ok(peeked.take().or_else(|| inner.next())),
            Source::Table(it) => it.advance(provider, storage),
            Source::LevelChain { tables, open, seek } => {
                let Some(it) = open.as_mut() else {
                    return Ok(None);
                };
                let head = it.advance(provider, storage)?;
                if it.peek().is_none() {
                    // Front table exhausted: drop it; later tables start at
                    // their first key, not the original seek key.
                    tables.pop_front();
                    *open = None;
                    seek.clear();
                }
                Ok(head)
            }
        }
    }
}

/// Merges ranked sources, yielding the newest entry per key in key order.
pub struct MergingIter<'a> {
    /// `(rank, source)`; higher rank wins ties (is newer).
    sources: Vec<(u64, Source<'a>)>,
}

impl<'a> MergingIter<'a> {
    /// Builds a merger. Ranks must be distinct across sources that can
    /// contain the same key.
    pub fn new(sources: Vec<(u64, Source<'a>)>) -> Self {
        MergingIter { sources }
    }

    /// Next merged entry (tombstones included), or `None` when exhausted.
    pub fn next_entry(
        &mut self,
        provider: &dyn BlockProvider,
        storage: &dyn Storage,
    ) -> Result<Option<KeyEntry>> {
        // Find the minimal head key; among equals, the highest rank. Keys
        // are `Bytes`, so the clone below is a refcount bump, not a copy.
        let mut best: Option<(usize, bytes::Bytes, u64)> = None;
        for i in 0..self.sources.len() {
            let rank = self.sources[i].0;
            let Some(head) = self.sources[i].1.peek(provider, storage)? else {
                continue;
            };
            let key = head.key.clone();
            best = match best.take() {
                None => Some((i, key, rank)),
                Some((bi, bkey, brank)) => {
                    if key < bkey || (key == bkey && rank > brank) {
                        Some((i, key, rank))
                    } else {
                        Some((bi, bkey, brank))
                    }
                }
            };
        }
        let Some((best_i, best_key, _)) = best else {
            return Ok(None);
        };
        let winner = self.sources[best_i]
            .1
            .advance(provider, storage)?
            .expect("peeked source must yield");
        // Discard shadowed versions of the same key in older sources.
        for i in 0..self.sources.len() {
            if i == best_i {
                continue;
            }
            while self.sources[i]
                .1
                .peek(provider, storage)?
                .is_some_and(|ke| ke.key == best_key)
            {
                self.sources[i].1.advance(provider, storage)?;
            }
        }
        Ok(Some(winner))
    }

    /// Drains the merger into a vector (test helper and compaction input).
    pub fn collect_all(
        &mut self,
        provider: &dyn BlockProvider,
        storage: &dyn Storage,
    ) -> Result<Vec<KeyEntry>> {
        let mut out = Vec::new();
        while let Some(ke) = self.next_entry(provider, storage)? {
            out.push(ke);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::Options;
    use crate::sstable::{DirectProvider, TableBuilder};
    use crate::storage::MemStorage;
    use crate::types::Entry;
    use bytes::Bytes;

    fn ke(k: &str, v: Option<&str>) -> KeyEntry {
        match v {
            Some(v) => KeyEntry::put(k.as_bytes().to_vec(), v.as_bytes().to_vec()),
            None => KeyEntry::tombstone(k.as_bytes().to_vec()),
        }
    }

    #[test]
    fn merge_prefers_higher_rank_on_ties() {
        let storage = MemStorage::new();
        let p = DirectProvider;
        let newer = Source::from_entries(vec![ke("a", Some("new")), ke("c", Some("c-new"))]);
        let older = Source::from_entries(vec![
            ke("a", Some("old")),
            ke("b", Some("b")),
            ke("c", Some("c-old")),
        ]);
        let mut m = MergingIter::new(vec![(2, newer), (1, older)]);
        let all = m.collect_all(&p, &storage).unwrap();
        let flat: Vec<(String, String)> = all
            .iter()
            .map(|ke| {
                (
                    String::from_utf8_lossy(&ke.key).into_owned(),
                    String::from_utf8_lossy(ke.entry.value().unwrap()).into_owned(),
                )
            })
            .collect();
        assert_eq!(
            flat,
            vec![
                ("a".into(), "new".into()),
                ("b".into(), "b".into()),
                ("c".into(), "c-new".into())
            ]
        );
    }

    #[test]
    fn merge_passes_tombstones_through() {
        let storage = MemStorage::new();
        let p = DirectProvider;
        let newer = Source::from_entries(vec![ke("a", None)]);
        let older = Source::from_entries(vec![ke("a", Some("old")), ke("b", Some("b"))]);
        let mut m = MergingIter::new(vec![(2, newer), (1, older)]);
        let all = m.collect_all(&p, &storage).unwrap();
        assert_eq!(all.len(), 2);
        assert!(all[0].entry.is_tombstone());
        assert_eq!(all[1].key.as_ref(), b"b");
    }

    #[test]
    fn merge_over_real_tables_and_level_chain() {
        let opts = Options::small();
        let storage = MemStorage::new();
        let p = DirectProvider;
        // Two non-overlapping L1 tables.
        let mut b = TableBuilder::new(1, &opts);
        for i in 0..50 {
            let k = format!("k{i:04}");
            b.add(k.as_bytes(), &Entry::Put(Bytes::from(format!("t1-{i}"))))
                .unwrap();
        }
        let t1 = b.finish(&storage).unwrap();
        let mut b = TableBuilder::new(2, &opts);
        for i in 50..100 {
            let k = format!("k{i:04}");
            b.add(k.as_bytes(), &Entry::Put(Bytes::from(format!("t2-{i}"))))
                .unwrap();
        }
        let t2 = b.finish(&storage).unwrap();
        // One newer L0 table overwriting a few keys.
        let mut b = TableBuilder::new(3, &opts);
        for i in [10usize, 60] {
            let k = format!("k{i:04}");
            b.add(k.as_bytes(), &Entry::Put(Bytes::from(format!("l0-{i}"))))
                .unwrap();
        }
        let t0 = b.finish(&storage).unwrap();

        let l0 = Source::Table(TableIter::seek(t0, &p, &storage, b"k0000").unwrap());
        let chain = Source::level_chain(vec![t1, t2], b"k0000");
        let mut m = MergingIter::new(vec![(10, l0), (1, chain)]);
        let all = m.collect_all(&p, &storage).unwrap();
        assert_eq!(all.len(), 100);
        assert_eq!(all[10].entry.value().unwrap().as_ref(), b"l0-10");
        assert_eq!(all[60].entry.value().unwrap().as_ref(), b"l0-60");
        assert_eq!(all[11].entry.value().unwrap().as_ref(), b"t1-11");
        for w in all.windows(2) {
            assert!(w[0].key < w[1].key);
        }
    }

    #[test]
    fn level_chain_opens_tables_lazily() {
        let opts = Options::small();
        let storage = MemStorage::new();
        let p = DirectProvider;
        let mut metas = Vec::new();
        for t in 0..3u64 {
            let mut b = TableBuilder::new(t + 1, &opts);
            for i in 0..20 {
                let k = format!("t{t}-k{i:03}");
                b.add(k.as_bytes(), &Entry::Put(Bytes::from_static(b"v")))
                    .unwrap();
            }
            metas.push(b.finish(&storage).unwrap());
        }
        let before = storage.stats().reads();
        let mut src = Source::level_chain(metas, b"t0-k000");
        // Reading three entries only touches the first table's first block.
        for _ in 0..3 {
            src.advance(&p, &storage).unwrap().unwrap();
        }
        assert_eq!(storage.stats().reads(), before + 1);
    }

    #[test]
    fn empty_merge_yields_none() {
        let storage = MemStorage::new();
        let p = DirectProvider;
        let mut m = MergingIter::new(vec![(1, Source::from_entries(vec![]))]);
        assert!(m.next_entry(&p, &storage).unwrap().is_none());
        let mut m = MergingIter::new(vec![]);
        assert!(m.next_entry(&p, &storage).unwrap().is_none());
    }
}
