//! # adcache-lsm — a native Rust LSM-tree storage engine
//!
//! This crate is the storage substrate of the AdCache reproduction (EDBT
//! 2026). The paper implements its cache on top of RocksDB; since the Rust
//! `rocksdb` crate merely wraps the C++ cache layer, this crate rebuilds the
//! relevant engine natively:
//!
//! - a [`memtable::MemTable`] over an arena [`skiplist::SkipList`];
//! - prefix-compressed [`block`]s with restart points, grouped into
//!   [`sstable`]s with pinned sparse indexes and [`bloom`] filters;
//! - RocksDB-style 1-leveling: a tiered Level 0 plus leveled deeper levels,
//!   managed by [`version`] and [`compaction`];
//! - pluggable [`storage`] backends (in-memory and file-backed) that count
//!   every data-block I/O — the paper's core metric;
//! - a [`db::LsmTree`] facade whose block fetches flow through a
//!   [`sstable::BlockProvider`], the seam where the cache layer plugs in.
//!
//! ```
//! use adcache_lsm::{LsmTree, Options, MemStorage, DirectProvider};
//! use bytes::Bytes;
//! use std::sync::Arc;
//!
//! let db = LsmTree::new(Options::small(), Arc::new(MemStorage::new())).unwrap();
//! db.put(Bytes::from("hello"), Bytes::from("world")).unwrap();
//! let got = db.get(b"hello", &DirectProvider).unwrap();
//! assert_eq!(got.unwrap().as_ref(), b"world");
//! ```

#![warn(missing_docs)]

pub mod block;
pub mod bloom;
pub mod compaction;
pub mod compress;
pub mod db;
pub mod error;
pub mod fault;
pub mod fs;
pub mod iterator;
pub mod manifest;
pub mod memtable;
pub mod options;
pub mod skiplist;
pub mod sstable;
pub mod storage;
pub mod striped;
pub mod timed_lock;
pub mod types;
pub mod version;
pub mod wal;

pub use block::{Block, BlockBuilder};
pub use bloom::BloomFilter;
pub use compaction::{CompactionEvent, CompactionListener};
pub use compress::{lzss_compress, lzss_decompress};
pub use db::{DbStats, LsmTree};
pub use error::{LsmError, Result};
pub use fault::{CrashController, CrashPoint, FaultPlan, FaultStats, FaultStorage};
pub use fs::{MetaFs, RealFs, SimFs, UnsyncedLoss};
pub use manifest::ManifestSync;
pub use options::{FsyncSite, Options, SyncPolicy};
pub use skiplist::SkipList;
pub use sstable::{
    decode_stored_block, decode_stored_block_at, BlockProvider, DirectProvider, TableMeta,
};
pub use storage::{CostModel, FileStorage, IoStats, MemStorage, Storage};
pub use striped::StripedDb;
pub use timed_lock::{
    lock_probe, reset_lock_probe, LockPath, LockPathSnapshot, TimedRwLock, LOCK_PATHS,
};
pub use types::{BlockRef, Entry, FileId, Key, KeyEntry, Value};
pub use wal::{crc32, ReplayOutcome, WalWriter};
