//! An arena-based skiplist keyed by byte strings.
//!
//! This is the ordered-map substrate used by the memtable and by the range
//! cache (the Range Cache paper stores cached results in a skiplist; we use
//! the same structure). The list is deterministic: tower heights come from a
//! seeded xorshift generator, so test failures reproduce exactly.
//!
//! Nodes live in a `Vec` arena and link to each other by index, which keeps
//! the implementation free of `unsafe` while retaining O(log n) expected
//! search. Removed nodes are recycled through a free list. The list is not
//! internally synchronized; callers wrap it in a lock (the engine shards the
//! range cache and guards each shard, mirroring the paper's Section 4.4).

use bytes::Bytes;

const MAX_HEIGHT: usize = 12;
const NIL: u32 = u32::MAX;
/// Probability (as a divisor) of growing a tower by one level: 1/4.
const BRANCHING: u64 = 4;

struct Node<V> {
    key: Bytes,
    value: V,
    /// `next[h]` is the arena index of the successor at height `h`.
    next: Vec<u32>,
}

/// A deterministic ordered map from [`Bytes`] keys to `V`.
pub struct SkipList<V> {
    arena: Vec<Node<V>>,
    /// Indices of recycled arena slots.
    free: Vec<u32>,
    /// Head tower: `head[h]` is the first node at height `h`.
    head: Vec<u32>,
    len: usize,
    rng_state: u64,
}

impl<V> SkipList<V> {
    /// Creates an empty list with the default RNG seed.
    pub fn new() -> Self {
        Self::with_seed(0x9E37_79B9_7F4A_7C15)
    }

    /// Creates an empty list whose tower heights derive from `seed`.
    pub fn with_seed(seed: u64) -> Self {
        SkipList {
            arena: Vec::new(),
            free: Vec::new(),
            head: vec![NIL; MAX_HEIGHT],
            len: 0,
            rng_state: seed.max(1),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the list holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn random_height(&mut self) -> usize {
        // xorshift64*
        let mut h = 1;
        loop {
            self.rng_state ^= self.rng_state << 13;
            self.rng_state ^= self.rng_state >> 7;
            self.rng_state ^= self.rng_state << 17;
            if h >= MAX_HEIGHT || !self.rng_state.is_multiple_of(BRANCHING) {
                break;
            }
            h += 1;
        }
        h
    }

    /// For each height, the index of the last node whose key is `< key`
    /// (or `NIL` if the head itself precedes `key` at that height).
    fn find_predecessors(&self, key: &[u8]) -> [u32; MAX_HEIGHT] {
        let mut preds = [NIL; MAX_HEIGHT];
        let mut level = MAX_HEIGHT;
        // `cur == NIL` means we are conceptually at the head.
        let mut cur = NIL;
        while level > 0 {
            level -= 1;
            loop {
                let next = if cur == NIL {
                    self.head[level]
                } else {
                    self.arena[cur as usize].next[level]
                };
                if next != NIL && self.arena[next as usize].key.as_ref() < key {
                    cur = next;
                } else {
                    break;
                }
            }
            preds[level] = cur;
        }
        preds
    }

    fn next_of(&self, pred: u32, level: usize) -> u32 {
        if pred == NIL {
            self.head[level]
        } else {
            self.arena[pred as usize].next[level]
        }
    }

    fn set_next(&mut self, pred: u32, level: usize, target: u32) {
        if pred == NIL {
            self.head[level] = target;
        } else {
            self.arena[pred as usize].next[level] = target;
        }
    }

    /// Inserts `key -> value`, returning the previous value if the key was
    /// already present.
    pub fn insert(&mut self, key: Bytes, value: V) -> Option<V> {
        let preds = self.find_predecessors(key.as_ref());
        let candidate = self.next_of(preds[0], 0);
        if candidate != NIL && self.arena[candidate as usize].key == key {
            let old = std::mem::replace(&mut self.arena[candidate as usize].value, value);
            return Some(old);
        }

        let height = self.random_height();
        let node = Node {
            key,
            value,
            next: vec![NIL; height],
        };
        let idx = if let Some(slot) = self.free.pop() {
            self.arena[slot as usize] = node;
            slot
        } else {
            self.arena.push(node);
            (self.arena.len() - 1) as u32
        };
        for (level, slot) in (0..height).map(|l| (l, idx)) {
            let succ = self.next_of(preds[level], level);
            self.arena[slot as usize].next[level] = succ;
            self.set_next(preds[level], level, slot);
        }
        self.len += 1;
        None
    }

    /// Looks up `key`.
    pub fn get(&self, key: &[u8]) -> Option<&V> {
        let preds = self.find_predecessors(key);
        let candidate = self.next_of(preds[0], 0);
        if candidate != NIL && self.arena[candidate as usize].key.as_ref() == key {
            Some(&self.arena[candidate as usize].value)
        } else {
            None
        }
    }

    /// Looks up `key` mutably.
    pub fn get_mut(&mut self, key: &[u8]) -> Option<&mut V> {
        let preds = self.find_predecessors(key);
        let candidate = self.next_of(preds[0], 0);
        if candidate != NIL && self.arena[candidate as usize].key.as_ref() == key {
            Some(&mut self.arena[candidate as usize].value)
        } else {
            None
        }
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&mut self, key: &[u8]) -> Option<V>
    where
        V: Default,
    {
        let preds = self.find_predecessors(key);
        let target = self.next_of(preds[0], 0);
        if target == NIL || self.arena[target as usize].key.as_ref() != key {
            return None;
        }
        let height = self.arena[target as usize].next.len();
        for (level, &pred) in preds.iter().enumerate().take(height) {
            debug_assert_eq!(self.next_of(pred, level), target);
            let succ = self.arena[target as usize].next[level];
            self.set_next(pred, level, succ);
        }
        self.len -= 1;
        self.free.push(target);
        let node = &mut self.arena[target as usize];
        node.key = Bytes::new();
        Some(std::mem::take(&mut node.value))
    }

    /// Iterates over all entries in ascending key order.
    pub fn iter(&self) -> SkipIter<'_, V> {
        SkipIter {
            list: self,
            cur: self.head[0],
        }
    }

    /// Iterates over entries with keys `>= from`, ascending.
    pub fn iter_from(&self, from: &[u8]) -> SkipIter<'_, V> {
        let preds = self.find_predecessors(from);
        SkipIter {
            list: self,
            cur: self.next_of(preds[0], 0),
        }
    }

    /// First key `>= from`, with its value.
    pub fn lower_bound(&self, from: &[u8]) -> Option<(&Bytes, &V)> {
        self.iter_from(from).next()
    }

    /// Removes every entry and recycles the arena.
    pub fn clear(&mut self) {
        self.arena.clear();
        self.free.clear();
        self.head = vec![NIL; MAX_HEIGHT];
        self.len = 0;
    }
}

impl<V> Default for SkipList<V> {
    fn default() -> Self {
        Self::new()
    }
}

/// Ascending iterator over a [`SkipList`].
pub struct SkipIter<'a, V> {
    list: &'a SkipList<V>,
    cur: u32,
}

impl<'a, V> Iterator for SkipIter<'a, V> {
    type Item = (&'a Bytes, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cur == NIL {
            return None;
        }
        let node = &self.list.arena[self.cur as usize];
        self.cur = node.next[0];
        Some((&node.key, &node.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut l = SkipList::new();
        assert!(l.is_empty());
        assert!(l.insert(b("b"), 2).is_none());
        assert!(l.insert(b("a"), 1).is_none());
        assert!(l.insert(b("c"), 3).is_none());
        assert_eq!(l.len(), 3);
        assert_eq!(l.get(b"a"), Some(&1));
        assert_eq!(l.get(b"b"), Some(&2));
        assert_eq!(l.get(b"c"), Some(&3));
        assert_eq!(l.get(b"d"), None);
    }

    #[test]
    fn insert_replaces_and_returns_old() {
        let mut l = SkipList::new();
        assert_eq!(l.insert(b("k"), 1), None);
        assert_eq!(l.insert(b("k"), 2), Some(1));
        assert_eq!(l.len(), 1);
        assert_eq!(l.get(b"k"), Some(&2));
    }

    #[test]
    fn iteration_is_sorted() {
        let mut l = SkipList::new();
        for k in ["d", "b", "e", "a", "c"] {
            l.insert(b(k), ());
        }
        let keys: Vec<_> = l.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(keys, vec![b("a"), b("b"), b("c"), b("d"), b("e")]);
    }

    #[test]
    fn iter_from_seeks_to_lower_bound() {
        let mut l = SkipList::new();
        for k in ["a", "c", "e"] {
            l.insert(b(k), ());
        }
        let keys: Vec<_> = l.iter_from(b"b").map(|(k, _)| k.clone()).collect();
        assert_eq!(keys, vec![b("c"), b("e")]);
        let keys: Vec<_> = l.iter_from(b"c").map(|(k, _)| k.clone()).collect();
        assert_eq!(keys, vec![b("c"), b("e")]);
        assert!(l.iter_from(b"f").next().is_none());
        assert_eq!(l.lower_bound(b"d").unwrap().0, &b("e"));
    }

    #[test]
    fn remove_unlinks_and_recycles() {
        let mut l: SkipList<i32> = SkipList::new();
        for (i, k) in ["a", "b", "c", "d"].iter().enumerate() {
            l.insert(b(k), i as i32);
        }
        assert_eq!(l.remove(b"b"), Some(1));
        assert_eq!(l.remove(b"b"), None);
        assert_eq!(l.len(), 3);
        let keys: Vec<_> = l.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(keys, vec![b("a"), b("c"), b("d")]);
        // Reinsertion reuses the freed slot and stays ordered.
        l.insert(b("bb"), 9);
        let keys: Vec<_> = l.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(keys, vec![b("a"), b("bb"), b("c"), b("d")]);
        assert_eq!(l.get(b"bb"), Some(&9));
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut l = SkipList::new();
        l.insert(b("k"), 10);
        *l.get_mut(b"k").unwrap() += 5;
        assert_eq!(l.get(b"k"), Some(&15));
        assert!(l.get_mut(b"missing").is_none());
    }

    #[test]
    fn clear_resets() {
        let mut l = SkipList::new();
        for i in 0..100u32 {
            l.insert(Bytes::copy_from_slice(&i.to_be_bytes()), i);
        }
        l.clear();
        assert!(l.is_empty());
        assert!(l.iter().next().is_none());
        l.insert(b("x"), 1);
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn large_insert_remove_matches_btreemap() {
        use std::collections::BTreeMap;
        let mut l = SkipList::new();
        let mut m = BTreeMap::new();
        let mut state = 42u64;
        let mut rand = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..5000 {
            let k = rand() % 500;
            let key = Bytes::copy_from_slice(format!("{k:05}").as_bytes());
            match rand() % 3 {
                0 => {
                    let v = rand();
                    assert_eq!(l.insert(key.clone(), v), m.insert(key, v));
                }
                1 => {
                    assert_eq!(l.remove(&key), m.remove(&key));
                }
                _ => {
                    assert_eq!(l.get(&key), m.get(&key));
                }
            }
        }
        assert_eq!(l.len(), m.len());
        let lk: Vec<_> = l.iter().map(|(k, v)| (k.clone(), *v)).collect();
        let mk: Vec<_> = m.iter().map(|(k, v)| (k.clone(), *v)).collect();
        assert_eq!(lk, mk);
    }
}
