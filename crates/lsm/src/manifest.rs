//! Manifest: durable version state.
//!
//! Records which SSTable files are live at which level, plus the file-id
//! allocator, so a restarted engine can rebuild its [`crate::version::Version`]
//! (table metadata itself is re-read from each table's meta blob in
//! storage). The manifest is rewritten atomically (temp file + rename) on
//! every version change — it is tiny, so rewrite beats journaling here.
//!
//! Format (text, line-oriented, CRC-protected as a whole):
//! ```text
//! adcache-manifest v1
//! next_file <id>
//! table <level> <file_id>
//! ...
//! crc <crc32-of-all-previous-lines>
//! ```

use crate::error::{LsmError, Result};
use crate::types::FileId;
use crate::wal::crc32;
use std::path::{Path, PathBuf};

/// The durable version snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ManifestState {
    /// Next file id to allocate.
    pub next_file: FileId,
    /// `(level, file_id)` for every live table, in recovery order (level
    /// 0 entries newest-first, as they are searched).
    pub tables: Vec<(usize, FileId)>,
}

/// Serializes `state` and writes it atomically to `path`.
pub fn write_manifest(path: &Path, state: &ManifestState) -> Result<()> {
    let mut body = String::from("adcache-manifest v1\n");
    body.push_str(&format!("next_file {}\n", state.next_file));
    for (level, id) in &state.tables {
        body.push_str(&format!("table {level} {id}\n"));
    }
    let crc = crc32(body.as_bytes());
    body.push_str(&format!("crc {crc:08x}\n"));

    let tmp: PathBuf = path.with_extension("tmp");
    std::fs::write(&tmp, body.as_bytes())?;
    // Rename is atomic on POSIX filesystems.
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Loads and validates a manifest. `Ok(None)` when no manifest exists yet.
pub fn read_manifest(path: &Path) -> Result<Option<ManifestState>> {
    let content = match std::fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let Some(crc_line_start) = content.rfind("crc ") else {
        return Err(LsmError::Corruption("manifest missing crc line".into()));
    };
    let body = &content[..crc_line_start];
    let crc_line = content[crc_line_start..].trim();
    let want = u32::from_str_radix(crc_line.trim_start_matches("crc ").trim(), 16)
        .map_err(|_| LsmError::Corruption("manifest bad crc line".into()))?;
    if crc32(body.as_bytes()) != want {
        return Err(LsmError::Corruption("manifest crc mismatch".into()));
    }

    let mut lines = body.lines();
    match lines.next() {
        Some("adcache-manifest v1") => {}
        other => {
            return Err(LsmError::Corruption(format!(
                "manifest bad header: {other:?}"
            )));
        }
    }
    let mut state = ManifestState::default();
    for line in lines {
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("next_file") => {
                state.next_file = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| LsmError::Corruption("manifest bad next_file".into()))?;
            }
            Some("table") => {
                let level: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| LsmError::Corruption("manifest bad table level".into()))?;
                let id: FileId = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| LsmError::Corruption("manifest bad table id".into()))?;
                state.tables.push((level, id));
            }
            Some(other) => {
                return Err(LsmError::Corruption(format!(
                    "manifest unknown directive {other}"
                )));
            }
            None => {}
        }
    }
    Ok(Some(state))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("adcache-manifest-{}-{name}", std::process::id()))
    }

    #[test]
    fn roundtrip() {
        let path = tmp("roundtrip");
        let state = ManifestState {
            next_file: 42,
            tables: vec![(0, 7), (0, 5), (1, 3), (2, 1)],
        };
        write_manifest(&path, &state).unwrap();
        let back = read_manifest(&path).unwrap().unwrap();
        assert_eq!(back, state);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_is_none() {
        let path = tmp("missing");
        let _ = std::fs::remove_file(&path);
        assert!(read_manifest(&path).unwrap().is_none());
    }

    #[test]
    fn corruption_is_detected() {
        let path = tmp("corrupt");
        write_manifest(
            &path,
            &ManifestState {
                next_file: 9,
                tables: vec![(1, 2)],
            },
        )
        .unwrap();
        let mut content = std::fs::read_to_string(&path).unwrap();
        content = content.replace("table 1 2", "table 1 3");
        std::fs::write(&path, content).unwrap();
        assert!(read_manifest(&path).is_err());
    }

    #[test]
    fn rewrite_replaces_atomically() {
        let path = tmp("rewrite");
        write_manifest(
            &path,
            &ManifestState {
                next_file: 1,
                tables: vec![],
            },
        )
        .unwrap();
        write_manifest(
            &path,
            &ManifestState {
                next_file: 2,
                tables: vec![(0, 1)],
            },
        )
        .unwrap();
        let back = read_manifest(&path).unwrap().unwrap();
        assert_eq!(back.next_file, 2);
        assert_eq!(back.tables, vec![(0, 1)]);
        assert!(!path.with_extension("tmp").exists(), "temp file cleaned up");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_manifest_is_rejected() {
        let path = tmp("truncated");
        write_manifest(
            &path,
            &ManifestState {
                next_file: 5,
                tables: vec![(0, 4)],
            },
        )
        .unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &content[..content.len() / 2]).unwrap();
        assert!(read_manifest(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
