//! Manifest: durable version state.
//!
//! Records which SSTable files are live at which level, plus the file-id
//! allocator, so a restarted engine can rebuild its [`crate::version::Version`]
//! (table metadata itself is re-read from each table's meta blob in
//! storage). The manifest is rewritten atomically (temp file + rename) on
//! every version change — it is tiny, so rewrite beats journaling here.
//!
//! Format (text, line-oriented, CRC-protected as a whole):
//! ```text
//! adcache-manifest v1
//! next_file <id>
//! table <level> <file_id>
//! ...
//! crc <crc32-of-all-previous-lines>
//! ```

use crate::error::{LsmError, Result};
use crate::fs::MetaFs;
use crate::types::FileId;
use crate::wal::crc32;
use std::path::{Path, PathBuf};

/// Which durability steps [`write_manifest`] takes after writing the new
/// manifest, derived from the engine's sync policy (and its misplacement
/// test hook).
#[derive(Debug, Clone, Copy)]
pub struct ManifestSync {
    /// fsync the temp file before the renames (content durability).
    pub file: bool,
    /// fsync the parent directory after the renames (entry durability) —
    /// without it the commit itself can be lost to a crash.
    pub dir: bool,
}

impl ManifestSync {
    /// Sync everything — full commit durability.
    pub fn full() -> Self {
        ManifestSync {
            file: true,
            dir: true,
        }
    }

    /// Sync nothing (`SyncPolicy::Never`).
    pub fn none() -> Self {
        ManifestSync {
            file: false,
            dir: false,
        }
    }
}

/// The durable version snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ManifestState {
    /// Next file id to allocate.
    pub next_file: FileId,
    /// `(level, file_id)` for every live table, in recovery order (level
    /// 0 entries newest-first, as they are searched).
    pub tables: Vec<(usize, FileId)>,
}

/// The sibling path holding the previous good manifest during a commit.
pub fn backup_path(path: &Path) -> PathBuf {
    path.with_extension("bak")
}

/// Serializes `state` and commits it atomically to `path`.
///
/// Commit sequence: write the new manifest to a temp file and fsync it
/// (when `sync.file`), preserve the current manifest (if any) as
/// `<path>.bak`, rename the temp file into place, then fsync the parent
/// directory (when `sync.dir`) so the renames themselves survive a crash.
/// Any single crash point leaves either the new manifest at `path` or the
/// previous one at the backup path — [`recover_manifest`] checks both.
pub fn write_manifest(
    fs: &dyn MetaFs,
    path: &Path,
    state: &ManifestState,
    sync: ManifestSync,
) -> Result<()> {
    let mut body = String::from("adcache-manifest v1\n");
    body.push_str(&format!("next_file {}\n", state.next_file));
    for (level, id) in &state.tables {
        body.push_str(&format!("table {level} {id}\n"));
    }
    let crc = crc32(body.as_bytes());
    body.push_str(&format!("crc {crc:08x}\n"));

    let tmp: PathBuf = path.with_extension("tmp");
    fs.write_file(&tmp, body.as_bytes())?;
    if sync.file {
        fs.sync_file(&tmp)?;
    }
    if fs.exists(path) {
        fs.rename(path, &backup_path(path))?;
    }
    // Rename is atomic on POSIX filesystems — but only durable once the
    // parent directory is synced.
    fs.rename(&tmp, path)?;
    if sync.dir {
        if let Some(parent) = path.parent() {
            fs.sync_dir(parent)?;
        }
    }
    Ok(())
}

/// Loads the manifest, falling back to the previous good version when the
/// current one is missing mid-commit or fails validation.
///
/// Returns `Ok(None)` for a genuinely fresh directory (neither file
/// exists). The `bool` is true when recovery had to roll back to the
/// backup; the caller should surface that (journal + stats) because it
/// means the newest version was lost.
///
/// Also tidies commit litter: a stale `<path>.tmp` left by a crash before
/// the final rename is always removed, and after a clean read of the
/// primary the superseded `<path>.bak` is removed too (it is only kept
/// while it is the fallback).
pub fn recover_manifest(fs: &dyn MetaFs, path: &Path) -> Result<(Option<ManifestState>, bool)> {
    let tmp = path.with_extension("tmp");
    let mut cleaned = false;
    if fs.exists(&tmp) {
        // A crash between writing the temp file and renaming it into
        // place leaves it behind; it was never committed, so drop it.
        let _ = fs.remove(&tmp);
        cleaned = true;
    }
    let primary = read_manifest(fs, path);
    let out = match primary {
        Ok(Some(state)) => {
            let bak = backup_path(path);
            if fs.exists(&bak) {
                // The primary is valid, so the backup is superseded.
                let _ = fs.remove(&bak);
                cleaned = true;
            }
            Ok((Some(state), false))
        }
        Ok(None) | Err(LsmError::Corruption(_)) => {
            // Primary corrupt, or missing because a crash hit between the
            // two commit renames — either way the backup is the last good
            // version.
            let primary_err = primary.err();
            match read_manifest(fs, &backup_path(path)) {
                Ok(Some(state)) => Ok((Some(state), true)),
                Ok(None) => match primary_err {
                    // Corrupt primary and no backup to fall back to.
                    Some(e) => Err(e),
                    None => Ok((None, false)),
                },
                // Both damaged: report the primary's error.
                Err(backup_err) => Err(primary_err.unwrap_or(backup_err)),
            }
        }
        Err(e) => Err(e),
    };
    if cleaned {
        // Make the tidy-up durable best-effort; recovery proceeds even on
        // a device that refuses directory syncs.
        if let Some(parent) = path.parent() {
            let _ = fs.sync_dir(parent);
        }
    }
    out
}

/// Loads and validates a manifest. `Ok(None)` when no manifest exists yet.
pub fn read_manifest(fs: &dyn MetaFs, path: &Path) -> Result<Option<ManifestState>> {
    let Some(raw) = fs.read(path)? else {
        return Ok(None);
    };
    let content =
        String::from_utf8(raw).map_err(|_| LsmError::Corruption("manifest is not utf-8".into()))?;
    let Some(crc_line_start) = content.rfind("crc ") else {
        return Err(LsmError::Corruption("manifest missing crc line".into()));
    };
    let body = &content[..crc_line_start];
    let crc_line = content[crc_line_start..].trim();
    let want = u32::from_str_radix(crc_line.trim_start_matches("crc ").trim(), 16)
        .map_err(|_| LsmError::Corruption("manifest bad crc line".into()))?;
    if crc32(body.as_bytes()) != want {
        return Err(LsmError::Corruption("manifest crc mismatch".into()));
    }

    let mut lines = body.lines();
    match lines.next() {
        Some("adcache-manifest v1") => {}
        other => {
            return Err(LsmError::Corruption(format!(
                "manifest bad header: {other:?}"
            )));
        }
    }
    let mut state = ManifestState::default();
    for line in lines {
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("next_file") => {
                state.next_file = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| LsmError::Corruption("manifest bad next_file".into()))?;
            }
            Some("table") => {
                let level: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| LsmError::Corruption("manifest bad table level".into()))?;
                let id: FileId = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| LsmError::Corruption("manifest bad table id".into()))?;
                state.tables.push((level, id));
            }
            Some(other) => {
                return Err(LsmError::Corruption(format!(
                    "manifest unknown directive {other}"
                )));
            }
            None => {}
        }
    }
    Ok(Some(state))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::RealFs;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("adcache-manifest-{}-{name}", std::process::id()))
    }

    fn write(path: &Path, state: &ManifestState) {
        write_manifest(&RealFs::new(), path, state, ManifestSync::full()).unwrap();
    }

    fn read(path: &Path) -> Result<Option<ManifestState>> {
        read_manifest(&RealFs::new(), path)
    }

    fn recover(path: &Path) -> Result<(Option<ManifestState>, bool)> {
        recover_manifest(&RealFs::new(), path)
    }

    #[test]
    fn roundtrip() {
        let path = tmp("roundtrip");
        let state = ManifestState {
            next_file: 42,
            tables: vec![(0, 7), (0, 5), (1, 3), (2, 1)],
        };
        write(&path, &state);
        let back = read(&path).unwrap().unwrap();
        assert_eq!(back, state);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_is_none() {
        let path = tmp("missing");
        let _ = std::fs::remove_file(&path);
        assert!(read(&path).unwrap().is_none());
    }

    #[test]
    fn corruption_is_detected() {
        let path = tmp("corrupt");
        write(
            &path,
            &ManifestState {
                next_file: 9,
                tables: vec![(1, 2)],
            },
        );
        let mut content = std::fs::read_to_string(&path).unwrap();
        content = content.replace("table 1 2", "table 1 3");
        std::fs::write(&path, content).unwrap();
        assert!(read(&path).is_err());
    }

    #[test]
    fn rewrite_replaces_atomically() {
        let path = tmp("rewrite");
        write(
            &path,
            &ManifestState {
                next_file: 1,
                tables: vec![],
            },
        );
        write(
            &path,
            &ManifestState {
                next_file: 2,
                tables: vec![(0, 1)],
            },
        );
        let back = read(&path).unwrap().unwrap();
        assert_eq!(back.next_file, 2);
        assert_eq!(back.tables, vec![(0, 1)]);
        assert!(!path.with_extension("tmp").exists(), "temp file cleaned up");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn recover_rolls_back_to_backup_on_corruption() {
        let path = tmp("rollback");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(backup_path(&path));
        let v1 = ManifestState {
            next_file: 3,
            tables: vec![(0, 2)],
        };
        let v2 = ManifestState {
            next_file: 5,
            tables: vec![(0, 4), (1, 2)],
        };
        write(&path, &v1);
        write(&path, &v2);
        // Corrupt the primary: recovery falls back to the preserved v1 and
        // keeps the backup (it is still the only good copy).
        std::fs::write(&path, b"garbage").unwrap();
        let (state, rolled_back) = recover(&path).unwrap();
        assert_eq!(state.unwrap(), v1);
        assert!(rolled_back);
        assert!(backup_path(&path).exists(), "fallback must not be deleted");
        // Re-commit: the primary is valid again, so a clean recovery wins
        // without rollback and tidies the superseded backup away.
        write(&path, &v2);
        let (state, rolled_back) = recover(&path).unwrap();
        assert_eq!(state.unwrap(), v2);
        assert!(!rolled_back);
        assert!(
            !backup_path(&path).exists(),
            "superseded backup must be removed after a clean recovery"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn recover_removes_stale_tmp_left_by_a_crashed_commit() {
        let path = tmp("stale-tmp");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(backup_path(&path));
        let v1 = ManifestState {
            next_file: 3,
            tables: vec![(0, 2)],
        };
        write(&path, &v1);
        // A crash after writing the temp file but before the rename leaves
        // it behind; it was never committed and must not survive recovery.
        let stale = path.with_extension("tmp");
        std::fs::write(&stale, b"uncommitted next version").unwrap();
        let (state, rolled_back) = recover(&path).unwrap();
        assert_eq!(state.unwrap(), v1);
        assert!(!rolled_back);
        assert!(!stale.exists(), "stale manifest.tmp must be swept");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn recover_survives_crash_between_commit_renames() {
        let path = tmp("mid-commit");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(backup_path(&path));
        let v1 = ManifestState {
            next_file: 3,
            tables: vec![(0, 2)],
        };
        write(&path, &v1);
        // Simulate a crash after `rename(path, bak)` but before
        // `rename(tmp, path)`: primary gone, backup holds the last good
        // version.
        std::fs::rename(&path, backup_path(&path)).unwrap();
        let (state, rolled_back) = recover(&path).unwrap();
        assert_eq!(state.unwrap(), v1);
        assert!(rolled_back);
        std::fs::remove_file(backup_path(&path)).unwrap();
    }

    #[test]
    fn recover_fresh_directory_is_none() {
        let path = tmp("fresh");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(backup_path(&path));
        let (state, rolled_back) = recover(&path).unwrap();
        assert!(state.is_none());
        assert!(!rolled_back);
    }

    #[test]
    fn recover_fails_when_both_copies_are_damaged() {
        let path = tmp("both-bad");
        std::fs::write(&path, b"garbage").unwrap();
        std::fs::write(backup_path(&path), b"also garbage").unwrap();
        assert!(recover(&path).is_err());
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(backup_path(&path)).unwrap();
    }

    #[test]
    fn truncated_manifest_is_rejected() {
        let path = tmp("truncated");
        write(
            &path,
            &ManifestState {
                next_file: 5,
                tables: vec![(0, 4)],
            },
        );
        let content = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &content[..content.len() / 2]).unwrap();
        assert!(read(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
