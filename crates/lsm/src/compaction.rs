//! Compaction: merging runs down the tree.
//!
//! Level 0 compacts as a whole (every run overlaps), pulling in the
//! overlapping slice of Level 1; deeper levels move one table at a time into
//! the overlap below, RocksDB-style. Output tables are cut at the configured
//! SSTable size. Tombstones are dropped only when the output lands at the
//! deepest populated level, where nothing older can hide beneath them.
//!
//! Compactions read through a private [`DirectProvider`] so they neither
//! consult nor pollute the query-path block cache; their device reads are
//! reported in the returned event so the engine can separate query I/O from
//! compaction I/O (the paper's SST-read metric counts only the former).

use crate::error::Result;
use crate::iterator::{MergingIter, Source};
use crate::options::Options;
use crate::sstable::{DirectProvider, TableBuilder, TableIter, TableMeta};
use crate::storage::Storage;
use crate::types::FileId;
use crate::version::{CompactionTask, Version};
use std::sync::Arc;

/// What a finished compaction changed; consumed by cache-invalidation
/// listeners and by the stats collector.
#[derive(Debug, Clone)]
pub struct CompactionEvent {
    /// Level the inputs came from.
    pub from_level: usize,
    /// Level the outputs landed in.
    pub to_level: usize,
    /// File ids deleted by this compaction (cache entries for these blocks
    /// are now stale).
    pub obsolete_files: Vec<FileId>,
    /// File ids created by this compaction.
    pub new_files: Vec<FileId>,
    /// Device block reads performed by the merge.
    pub blocks_read: u64,
    /// Device block writes performed by the merge.
    pub blocks_written: u64,
    /// Whether this was a trivial move (metadata-only: the file slid down a
    /// level untouched, so no blocks were rewritten and — crucially for the
    /// cache layer — no cached blocks became stale).
    pub trivial_move: bool,
}

/// Observer notified after each compaction, while the engine's write lock is
/// held. Implementations must not call back into the engine.
pub trait CompactionListener: Send + Sync {
    /// Called once per finished compaction.
    fn on_compaction(&self, event: &CompactionEvent);
}

/// Executes `task` against `version`, writing outputs through `storage`.
///
/// `next_file` allocates output file ids. Returns the event describing the
/// change. The caller owns locking and listener notification.
pub fn run_compaction(
    version: &mut Version,
    task: CompactionTask,
    opts: &Options,
    storage: &dyn Storage,
    next_file: &mut dyn FnMut() -> FileId,
) -> Result<Option<CompactionEvent>> {
    let (from_level, to_level, inputs_from, inputs_to) = match task {
        CompactionTask::L0ToL1 => {
            let l0: Vec<Arc<TableMeta>> = version.level(0).to_vec();
            if l0.is_empty() {
                return Ok(None);
            }
            let start = l0
                .iter()
                .map(|t| t.smallest.clone())
                .min()
                .expect("non-empty");
            let end = l0
                .iter()
                .map(|t| t.largest.clone())
                .max()
                .expect("non-empty");
            let l1 = version.overlapping(1, &start, Some(&end));
            (0usize, 1usize, l0, l1)
        }
        CompactionTask::LevelDown { level } => {
            let Some(table) = version.pick_table(level) else {
                return Ok(None);
            };
            let below = version.overlapping(level + 1, &table.smallest, Some(&table.largest));
            if below.is_empty() && level + 1 < version.max_levels() {
                // Trivial move (RocksDB optimization): nothing overlaps in
                // the level below, so the table slides down by a metadata
                // edit — zero I/O, zero cache invalidation.
                let id = table.id;
                version.apply_compaction(level, level + 1, &[id], vec![table])?;
                return Ok(Some(CompactionEvent {
                    from_level: level,
                    to_level: level + 1,
                    obsolete_files: Vec::new(),
                    new_files: vec![id],
                    blocks_read: 0,
                    blocks_written: 0,
                    trivial_move: true,
                }));
            }
            (level, level + 1, vec![table], below)
        }
    };

    let provider = DirectProvider;
    let reads_before = storage.stats().reads();
    let writes_before = storage.stats().writes();

    // Rank: source-level tables are newer than target-level tables; within
    // Level 0, higher file ids are newer flushes.
    let mut sources: Vec<(u64, Source<'static>)> = Vec::new();
    for t in &inputs_from {
        let it = TableIter::seek(t.clone(), &provider, storage, &t.smallest)?;
        sources.push((1 + t.id, Source::Table(it)));
    }
    if !inputs_to.is_empty() {
        sources.push((0, Source::level_chain(inputs_to.clone(), b"")));
    }

    // Tombstones can be dropped iff nothing lives below the output level.
    let drop_tombstones =
        ((to_level + 1)..version.max_levels()).all(|l| version.level_files(l) == 0);

    let mut merger = MergingIter::new(sources);
    let mut outputs: Vec<Arc<TableMeta>> = Vec::new();
    let mut builder: Option<TableBuilder> = None;
    while let Some(ke) = merger.next_entry(&provider, storage)? {
        if drop_tombstones && ke.entry.is_tombstone() {
            continue;
        }
        let b = builder.get_or_insert_with(|| TableBuilder::new(next_file(), opts));
        b.add(&ke.key, &ke.entry)?;
        if b.estimated_size() >= opts.sstable_size {
            let finished = builder.take().expect("just inserted");
            outputs.push(finished.finish(storage)?);
        }
    }
    if let Some(b) = builder {
        if !b.is_empty() {
            outputs.push(b.finish(storage)?);
        }
    }

    let obsolete: Vec<FileId> = inputs_from
        .iter()
        .chain(inputs_to.iter())
        .map(|t| t.id)
        .collect();
    let new_files: Vec<FileId> = outputs.iter().map(|t| t.id).collect();
    version.apply_compaction(from_level, to_level, &obsolete, outputs)?;
    // Deleting the obsolete inputs is the CALLER's job, and only after the
    // new version is durably committed (manifest first, delete second): a
    // crash in between must leave orphan files, never a manifest that
    // references deleted tables. See `LsmTree::finish_compaction`.

    Ok(Some(CompactionEvent {
        from_level,
        to_level,
        obsolete_files: obsolete,
        new_files,
        blocks_read: storage.stats().reads() - reads_before,
        blocks_written: storage.stats().writes() - writes_before,
        trivial_move: false,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sstable::table_get;
    use crate::storage::MemStorage;
    use crate::types::Entry;
    use bytes::Bytes;

    fn build(
        id: FileId,
        opts: &Options,
        storage: &dyn Storage,
        entries: &[(&str, Option<&str>)],
    ) -> Arc<TableMeta> {
        let mut b = TableBuilder::new(id, opts);
        for (k, v) in entries {
            let e = match v {
                Some(v) => Entry::Put(Bytes::copy_from_slice(v.as_bytes())),
                None => Entry::Tombstone,
            };
            b.add(k.as_bytes(), &e).unwrap();
        }
        b.finish(storage).unwrap()
    }

    /// Mirrors the engine's post-commit step: obsolete inputs are deleted
    /// only after `run_compaction` returns (see `LsmTree::finish_compaction`).
    fn apply_deletes(storage: &dyn Storage, ev: &CompactionEvent) {
        for id in &ev.obsolete_files {
            storage.delete_table(*id).unwrap();
        }
    }

    #[test]
    fn l0_to_l1_merges_newest_wins() {
        let opts = Options::small();
        let storage = MemStorage::new();
        let mut v = Version::new(4);
        // Older flush (id 1), newer flush (id 2) overwriting "b".
        v.add_l0(build(
            1,
            &opts,
            &storage,
            &[("a", Some("1")), ("b", Some("old"))],
        ));
        v.add_l0(build(
            2,
            &opts,
            &storage,
            &[("b", Some("new")), ("c", Some("3"))],
        ));
        let mut next = 10u64;
        let ev = run_compaction(&mut v, CompactionTask::L0ToL1, &opts, &storage, &mut || {
            next += 1;
            next
        })
        .unwrap()
        .unwrap();
        assert_eq!(ev.from_level, 0);
        assert_eq!(ev.to_level, 1);
        assert_eq!(ev.obsolete_files, vec![2, 1]);
        assert_eq!(v.level_files(0), 0);
        assert_eq!(v.level_files(1), 1);
        assert!(ev.blocks_read >= 2);
        assert!(ev.blocks_written >= 1);
        // Inputs survive until the caller commits and deletes them; after
        // that only the output remains, and it is readable.
        assert_eq!(storage.table_count(), 3);
        apply_deletes(&storage, &ev);
        assert_eq!(storage.table_count(), 1);
        let out = v.level(1)[0].clone();
        let p = DirectProvider;
        assert_eq!(
            table_get(&out, &p, &storage, b"b")
                .unwrap()
                .unwrap()
                .value()
                .unwrap()
                .as_ref(),
            b"new"
        );
        assert_eq!(out.num_entries, 3);
    }

    #[test]
    fn tombstones_dropped_only_at_bottom() {
        let opts = Options::small();
        let storage = MemStorage::new();
        let mut v = Version::new(4);
        // L2 holds the old value, so an L0->L1 compaction must keep the
        // tombstone; a later L1->L2 compaction may drop it (L3 empty).
        v.apply_compaction(
            1,
            2,
            &[],
            vec![build(1, &opts, &storage, &[("k", Some("old"))])],
        )
        .unwrap();
        v.add_l0(build(2, &opts, &storage, &[("k", None)]));
        let mut next = 10u64;
        let mut alloc = || {
            next += 1;
            next
        };
        let ev = run_compaction(&mut v, CompactionTask::L0ToL1, &opts, &storage, &mut alloc)
            .unwrap()
            .unwrap();
        apply_deletes(&storage, &ev);
        assert_eq!(v.level_files(1), 1, "tombstone must survive to L1");
        let p = DirectProvider;
        assert_eq!(
            table_get(&v.level(1)[0], &p, &storage, b"k").unwrap(),
            Some(Entry::Tombstone)
        );
        // Now push it down into L2 where the old value lives.
        let ev = run_compaction(
            &mut v,
            CompactionTask::LevelDown { level: 1 },
            &opts,
            &storage,
            &mut alloc,
        )
        .unwrap()
        .unwrap();
        apply_deletes(&storage, &ev);
        assert_eq!(v.level_files(1), 0);
        // L3 empty => tombstone and the value it shadowed both vanish.
        assert_eq!(
            v.level_files(2),
            0,
            "tombstone plus shadowed value annihilate"
        );
        assert_eq!(storage.table_count(), 0);
    }

    #[test]
    fn level_down_merges_overlap_only() {
        let opts = Options::small();
        let storage = MemStorage::new();
        let mut v = Version::new(4);
        v.apply_compaction(
            0,
            1,
            &[],
            vec![build(1, &opts, &storage, &[("c", Some("c1"))])],
        )
        .unwrap();
        v.apply_compaction(
            1,
            2,
            &[],
            vec![
                build(2, &opts, &storage, &[("a", Some("a2")), ("c", Some("c2"))]),
                build(3, &opts, &storage, &[("x", Some("x2"))]),
            ],
        )
        .unwrap();
        let mut next = 10u64;
        let ev = run_compaction(
            &mut v,
            CompactionTask::LevelDown { level: 1 },
            &opts,
            &storage,
            &mut || {
                next += 1;
                next
            },
        )
        .unwrap()
        .unwrap();
        // Table 3 ("x") does not overlap table 1 ("c"), so it survives.
        assert!(ev.obsolete_files.contains(&1));
        assert!(ev.obsolete_files.contains(&2));
        assert!(!ev.obsolete_files.contains(&3));
        assert_eq!(v.level_files(1), 0);
        assert_eq!(v.level_files(2), 2);
        let p = DirectProvider;
        let merged = v.table_for_key(2, b"c").unwrap();
        assert_eq!(
            table_get(&merged, &p, &storage, b"c")
                .unwrap()
                .unwrap()
                .value()
                .unwrap()
                .as_ref(),
            b"c1",
            "L1 version wins over L2"
        );
        v.check_level_invariants().unwrap();
    }

    #[test]
    fn compaction_splits_large_outputs() {
        let mut opts = Options::small();
        opts.sstable_size = 2048;
        let storage = MemStorage::new();
        let mut v = Version::new(4);
        let entries: Vec<(String, String)> = (0..200)
            .map(|i| (format!("k{i:05}"), format!("v{i:05}{}", "x".repeat(50))))
            .collect();
        let refs: Vec<(&str, Option<&str>)> = entries
            .iter()
            .map(|(k, v)| (k.as_str(), Some(v.as_str())))
            .collect();
        v.add_l0(build(1, &opts, &storage, &refs));
        let mut next = 10u64;
        run_compaction(&mut v, CompactionTask::L0ToL1, &opts, &storage, &mut || {
            next += 1;
            next
        })
        .unwrap()
        .unwrap();
        assert!(v.level_files(1) > 1, "output should split at sstable_size");
        let total: u64 = v.level(1).iter().map(|t| t.num_entries).sum();
        assert_eq!(total, 200);
        v.check_level_invariants().unwrap();
    }

    #[test]
    fn non_overlapping_table_moves_trivially() {
        let opts = Options::small();
        let storage = MemStorage::new();
        let mut v = Version::new(4);
        // L1 table "a..f"; L2 table "p..z": no overlap -> trivial move.
        v.apply_compaction(
            0,
            1,
            &[],
            vec![build(
                1,
                &opts,
                &storage,
                &[("a", Some("1")), ("f", Some("2"))],
            )],
        )
        .unwrap();
        v.apply_compaction(
            1,
            2,
            &[],
            vec![build(
                2,
                &opts,
                &storage,
                &[("p", Some("3")), ("z", Some("4"))],
            )],
        )
        .unwrap();
        let reads_before = storage.stats().reads();
        let ev = run_compaction(
            &mut v,
            CompactionTask::LevelDown { level: 1 },
            &opts,
            &storage,
            &mut || panic!("trivial move must not allocate files"),
        )
        .unwrap()
        .unwrap();
        assert!(ev.trivial_move);
        assert!(
            ev.obsolete_files.is_empty(),
            "no invalidation on trivial move"
        );
        assert_eq!(ev.new_files, vec![1]);
        assert_eq!(ev.blocks_read, 0);
        assert_eq!(storage.stats().reads(), reads_before, "zero I/O");
        assert_eq!(v.level_files(1), 0);
        assert_eq!(v.level_files(2), 2);
        // File 1 still readable in its new level.
        let p = DirectProvider;
        let t = v.table_for_key(2, b"a").unwrap();
        assert_eq!(
            table_get(&t, &p, &storage, b"a")
                .unwrap()
                .unwrap()
                .value()
                .unwrap()
                .as_ref(),
            b"1"
        );
        v.check_level_invariants().unwrap();
    }

    #[test]
    fn empty_tasks_are_noops() {
        let opts = Options::small();
        let storage = MemStorage::new();
        let mut v = Version::new(4);
        assert!(
            run_compaction(&mut v, CompactionTask::L0ToL1, &opts, &storage, &mut || 1)
                .unwrap()
                .is_none()
        );
        assert!(run_compaction(
            &mut v,
            CompactionTask::LevelDown { level: 2 },
            &opts,
            &storage,
            &mut || 1
        )
        .unwrap()
        .is_none());
    }
}
